//! Exit-code contract of the `spg-analyze` binary: 0 on a clean tree, 1
//! when any fixture violation survives, 2 on usage errors. CI gates on
//! exactly these codes, so they are pinned here.

use std::path::Path;
use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spg-analyze"))
        .args(args)
        .output()
        .expect("spawn spg-analyze")
}

#[test]
fn each_violation_fixture_exits_nonzero_with_diagnostics_on_stdout() {
    for case in [
        "lock_order",
        "hot_loop",
        "wire_drift",
        "failpoints",
        "hygiene",
    ] {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(case);
        let out = run(&["lint", "--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {case}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.lines().any(|l| l.contains(": [")),
            "fixture {case} printed no `file:line: [rule]` diagnostics:\n{stdout}"
        );
    }
}

#[test]
fn clean_tree_exits_zero_and_prints_nothing_to_stdout() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run(&["lint", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "diagnostics:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(out.stdout.is_empty(), "stdout must stay diagnostics-only");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("files clean"),
        "summary goes to stderr"
    );
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(run(&[]).status.code(), Some(2), "no subcommand");
    assert_eq!(
        run(&["frobnicate"]).status.code(),
        Some(2),
        "unknown subcommand"
    );
    assert_eq!(
        run(&["lint", "--root"]).status.code(),
        Some(2),
        "missing value"
    );
}
