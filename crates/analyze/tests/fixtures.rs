//! Fixture-tree tests for every lint rule: each fixture under
//! `tests/fixtures/<case>/` mirrors the real workspace layout
//! (`crates/*/src/**`, `docs/`) and seeds one violation per diagnostic
//! shape, next to a waived twin proving suppression works. Assertions pin
//! exact `(file, line, rule)` triples so a rule that drifts by a line — or
//! starts double-reporting — fails here, not in a confusing CI run later.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints a fixture tree and returns `(file, line, rule, message)` rows.
fn lint(name: &str) -> Vec<(String, usize, String, String)> {
    let (_, diags) = spg_analyze::lint(&fixture(name)).expect("fixture tree loads");
    diags
        .into_iter()
        .map(|d| (d.file, d.line, d.rule.to_string(), d.message))
        .collect()
}

fn rows(diags: &[(String, usize, String, String)]) -> Vec<(&str, usize, &str)> {
    diags
        .iter()
        .map(|(f, l, r, _)| (f.as_str(), *l, r.as_str()))
        .collect()
}

#[test]
fn lock_order_fixture_reports_cycle_violation_and_unannotated_site() {
    let diags = lint("lock_order");
    let flight = "crates/core/src/flight.rs";
    assert_eq!(
        rows(&diags),
        vec![
            (flight, 6, "lock-order"),  // cycle, anchored at its first edge
            (flight, 13, "lock-order"), // acquisition against the declared order
            (flight, 19, "lock-order"), // unannotated site
        ],
        "diagnostics: {diags:?}"
    );
    assert!(diags[0]
        .3
        .contains("lock-order cycle: alpha -> beta -> alpha"));
    assert!(diags[1].3.contains("acquires `alpha` while holding `beta`"));
    assert!(diags[2]
        .3
        .contains("without a `// lock: <class>` annotation"));
    // Line 24 seeds the same unannotated shape under a waiver: absent above.
}

#[test]
fn hot_loop_fixture_flags_clock_and_rmw_but_not_waiver_or_allowlist() {
    let diags = lint("hot_loop");
    let eve = "crates/core/src/eve.rs";
    assert_eq!(
        rows(&diags),
        vec![
            (eve, 4, "hot-loop"), // Instant::now in library code
            (eve, 6, "hot-loop"), // fetch_add in library code
        ],
        "diagnostics: {diags:?}"
    );
    assert!(diags[0].3.contains("clock read `Instant::now`"));
    assert!(diags[1].3.contains("atomic read-modify-write `fetch_add`"));
    // Line 5 (waived clock) and the allowlisted server.rs produce nothing.
}

#[test]
fn wire_drift_fixture_flags_both_directions() {
    let diags = lint("wire_drift");
    assert_eq!(
        rows(&diags),
        vec![
            ("crates/core/src/query.rs", 9, "wire-drift"), // undocumented template
            ("docs/robustness.md", 5, "wire-drift"),       // unproduced doc row
        ],
        "diagnostics: {diags:?}"
    );
    assert!(diags[0]
        .3
        .contains("`an undocumented wire string` is not documented"));
    assert!(diags[1]
        .3
        .contains("`a documented ghost string` is not produced"));
}

#[test]
fn failpoints_fixture_flags_registry_chaos_and_callsite_drift() {
    let diags = lint("failpoints");
    let registry = "crates/core/src/failpoints.rs";
    assert_eq!(
        rows(&diags),
        vec![
            (registry, 3, "failpoint-registry"), // ORPHAN missing from ALL
            (registry, 4, "failpoint-registry"), // UNPROVEN not in chaos_e2e
            ("crates/core/src/user.rs", 2, "failpoint-registry"), // undeclared GHOST
        ],
        "diagnostics: {diags:?}"
    );
    assert!(diags[0]
        .3
        .contains("`ORPHAN` (\"orphan\") is missing from sites::ALL"));
    assert!(diags[1]
        .3
        .contains("`UNPROVEN` (\"unproven\") is never exercised"));
    assert!(diags[2].3.contains("`sites::GHOST` is not declared"));
}

#[test]
fn hygiene_fixture_flags_panics_and_missing_forbid_not_waiver_or_binaries() {
    let diags = lint("hygiene");
    let util = "crates/core/src/util.rs";
    assert_eq!(
        rows(&diags),
        vec![
            ("crates/core/src/lib.rs", 1, "forbid-unsafe"),
            (util, 2, "no-panic"), // println! in library code
            (util, 3, "no-panic"), // .unwrap() in library code
        ],
        "diagnostics: {diags:?}"
    );
    // Line 7 (waived unwrap), line 11 (poison-policy `.lock().expect`) and
    // the whole of main.rs produce nothing.
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance bar for the whole PR: zero unwaived diagnostics on the
    // actual tree this crate lives in.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (count, diags) = spg_analyze::lint(&root).expect("workspace loads");
    assert!(
        count > 50,
        "expected the real workspace, scanned {count} files"
    );
    assert!(diags.is_empty(), "real tree has diagnostics: {diags:#?}");
}
