//! Hot-loop fixture: one clock read, one waived clock read, one atomic RMW.

pub fn tick(counter: &AtomicU64) {
    let t = Instant::now();
    let w = Instant::now(); // spg-analyze: allow(hot-loop) — fixture boundary
    counter.fetch_add(1, Ordering::Relaxed);
    let _ = (t, w);
}
