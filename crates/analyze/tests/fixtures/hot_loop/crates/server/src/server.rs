//! The server layer is allowlisted: clock reads here are by design.

pub fn allowed() -> Instant {
    Instant::now()
}
