pub fn bad(v: Option<u32>) -> u32 {
    println!("library stdout");
    v.unwrap()
}

pub fn waived(v: Option<u32>) -> u32 {
    v.unwrap() // spg-analyze: allow(no-panic) — fixture waiver
}

pub fn poison_policy(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned")
}
