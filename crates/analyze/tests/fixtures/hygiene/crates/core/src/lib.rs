//! Hygiene fixture library root, deliberately missing the forbid attribute.

pub mod util;
