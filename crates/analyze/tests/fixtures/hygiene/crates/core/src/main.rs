fn main() {
    println!("binary roots may print");
    Some(1).unwrap();
}
