//! Lock-order fixture: one well-ordered pair, one reversed pair (order
//! violation + cycle), one unannotated site, one waived unannotated site.

pub fn ordered(a: &Holder, b: &Holder) {
    let g = a.mu.lock().expect("a"); // lock: alpha
    let h = b.mu.lock().expect("b"); // lock: beta
    drop(h);
    drop(g);
}

pub fn reversed(a: &Holder, b: &Holder) {
    let h = b.mu.lock().expect("b"); // lock: beta
    let g = a.mu.lock().expect("a"); // lock: alpha
    drop(g);
    drop(h);
}

pub fn unannotated(a: &Holder) {
    let g = a.mu.lock().expect("a");
    drop(g);
}

pub fn waived(a: &Holder) {
    let g = a.mu.lock().expect("a"); // spg-analyze: allow(lock-order)
    drop(g);
}
