pub mod sites {
    pub const GOOD: &str = "good";
    pub const ORPHAN: &str = "orphan";
    pub const UNPROVEN: &str = "unproven";
    pub const ALL: [&str; 2] = [GOOD, UNPROVEN];
}
