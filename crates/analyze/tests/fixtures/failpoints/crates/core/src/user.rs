pub fn hit() {
    let _ = failpoints::check(sites::GHOST);
}
