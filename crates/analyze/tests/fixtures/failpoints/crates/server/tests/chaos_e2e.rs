//! Chaos fixture: arms "good" and "orphan", never mentions the third site.
