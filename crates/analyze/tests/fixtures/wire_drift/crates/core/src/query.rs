//! Wire-drift fixture: a Display template the doc does not carry.

pub enum QueryError {
    Boom,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "an undocumented wire string")
    }
}
