//! Workspace discovery and per-file annotation extraction.
//!
//! The scanner walks the workspace's library/binary sources (`src/` of the
//! umbrella crate and of every `crates/*` member — `tests/`, `benches/`,
//! `examples/` and `vendor/` are out of scope) and attaches to each file:
//!
//! * **waivers** — `// spg-analyze: allow(rule-a, rule-b)` comments. A
//!   trailing waiver applies to its own line; a waiver on a line of its own
//!   applies to the next line that carries code. Diagnostics of the named
//!   rules on the covered line are suppressed.
//! * **lock annotations** — `// lock: <class>` comments with the same
//!   placement rules, naming the lock class acquired on the covered line
//!   (comma-separated when one line acquires several classes in order).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed};

/// One lint diagnostic, anchored to a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier (see `docs/static_analysis.md` for the catalog).
    pub rule: &'static str,
    /// Human-readable finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One lexed source file plus its extracted waivers/annotations.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub lexed: Lexed,
    /// rule name -> set of (1-indexed) lines waived for that rule.
    pub waivers: HashMap<String, Vec<usize>>,
    /// line -> ordered lock classes annotated for that line.
    pub lock_classes: HashMap<usize, Vec<String>>,
}

impl SourceFile {
    /// Whether a diagnostic of `rule` on `line` is waived in this file.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waivers
            .get(rule)
            .map(|lines| lines.contains(&line))
            .unwrap_or(false)
    }
}

/// The loaded workspace the rules run over.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every in-scope source file under `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rust_files = Vec::new();
        let umbrella = root.join("src");
        if umbrella.is_dir() {
            collect_rs(&umbrella, &mut rust_files)?;
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                let src = member.join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut rust_files)?;
                }
            }
        }
        rust_files.sort();
        let mut files = Vec::with_capacity(rust_files.len());
        for path in rust_files {
            let text = fs::read_to_string(&path)?;
            files.push(load_file(root, &path, &text));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The loaded file at workspace-relative path `rel`, if in scope.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Reads a non-Rust reference file (docs, test harnesses) under the
    /// root. Returns `None` when absent — rules treat a missing reference
    /// as "this rule's subject does not exist here" and stay quiet, which
    /// is what lets small fixture trees target a single rule.
    pub fn read_reference(&self, rel: &str) -> Option<String> {
        fs::read_to_string(self.root.join(rel)).ok()
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_file(root: &Path, path: &Path, text: &str) -> SourceFile {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    let lexed = lex(text);
    let (waivers, lock_classes) = extract_annotations(&lexed);
    SourceFile {
        rel,
        lexed,
        waivers,
        lock_classes,
    }
}

/// Computes the line each comment governs: its own line when code precedes
/// it (a trailing comment), otherwise the next line that carries code.
fn governed_line(lexed: &Lexed, comment_offset: usize, comment_line: usize) -> usize {
    let line_start = lexed.line_starts[comment_line - 1];
    let before = &lexed.masked[line_start..comment_offset];
    let has_code = before.trim_start().chars().any(|c| c != ' ');
    if has_code {
        return comment_line;
    }
    // Standalone comment: governs the next line with any code on it.
    let mut line = comment_line + 1;
    while line <= lexed.line_starts.len() {
        let start = lexed.line_starts[line - 1];
        let end = lexed
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(lexed.masked.len());
        let body = &lexed.masked[start..end];
        let code = body
            .trim()
            .trim_start_matches(['/', '*'])
            .chars()
            .any(|c| !c.is_whitespace());
        if code {
            return line;
        }
        line += 1;
    }
    comment_line
}

type Annotations = (HashMap<String, Vec<usize>>, HashMap<usize, Vec<String>>);

fn extract_annotations(lexed: &Lexed) -> Annotations {
    let mut waivers: HashMap<String, Vec<usize>> = HashMap::new();
    let mut lock_classes: HashMap<usize, Vec<String>> = HashMap::new();
    for comment in &lexed.comments {
        let governed = governed_line(lexed, comment.offset, comment.line);
        if let Some(rules) = parse_waiver(&comment.text) {
            for rule in rules {
                waivers.entry(rule).or_default().push(governed);
            }
        }
        if let Some(classes) = parse_lock_annotation(&comment.text) {
            lock_classes.entry(governed).or_default().extend(classes);
        }
    }
    (waivers, lock_classes)
}

/// Parses `spg-analyze: allow(rule-a, rule-b)` out of a comment body.
fn parse_waiver(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("spg-analyze: allow(")?;
    let rest = &comment[idx + "spg-analyze: allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

/// Parses `lock: class.a, class.b` out of a comment body. The class grammar
/// is `[a-z0-9_.-]+`; anything after the class list (an em-dash rationale,
/// say) is ignored.
fn parse_lock_annotation(comment: &str) -> Option<Vec<String>> {
    let trimmed = comment.trim_start();
    let rest = trimmed.strip_prefix("lock:")?;
    let mut classes = Vec::new();
    for part in rest.split(',') {
        let class: String = part
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(*c))
            .collect();
        if class.is_empty() {
            break;
        }
        classes.push(class);
        // A rationale after the last class ends the list.
        if part.trim_start().len() > classes.last().map(String::len).unwrap_or(0) {
            break;
        }
    }
    (!classes.is_empty()).then_some(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> SourceFile {
        let lexed = lex(src);
        let (waivers, lock_classes) = extract_annotations(&lexed);
        SourceFile {
            rel: "test.rs".into(),
            lexed,
            waivers,
            lock_classes,
        }
    }

    #[test]
    fn trailing_waiver_governs_its_own_line() {
        let f = file("fn a() {}\nlet x = now(); // spg-analyze: allow(hot-loop)\n");
        assert!(f.is_waived("hot-loop", 2));
        assert!(!f.is_waived("hot-loop", 1));
        assert!(!f.is_waived("no-panic", 2));
    }

    #[test]
    fn standalone_waiver_governs_next_code_line() {
        let f = file("// spg-analyze: allow(no-panic) — invariant\n\nlet x = v.unwrap();\n");
        assert!(f.is_waived("no-panic", 3));
    }

    #[test]
    fn multi_rule_waiver() {
        let f = file("do_it(); // spg-analyze: allow(hot-loop, no-panic)\n");
        assert!(f.is_waived("hot-loop", 1));
        assert!(f.is_waived("no-panic", 1));
    }

    #[test]
    fn lock_annotations_attach_to_lines() {
        let f = file("let g = m.lock(); // lock: cache.shard\n// lock: flight.state — rationale\nlet h = s.lock();\n");
        assert_eq!(
            f.lock_classes.get(&1).map(Vec::as_slice),
            Some(&["cache.shard".to_string()][..])
        );
        assert_eq!(
            f.lock_classes.get(&3).map(Vec::as_slice),
            Some(&["flight.state".to_string()][..])
        );
    }

    #[test]
    fn comma_list_of_classes() {
        let f = file("acquire_both(); // lock: a.x, b.y\n");
        assert_eq!(
            f.lock_classes.get(&1).map(Vec::as_slice),
            Some(&["a.x".to_string(), "b.y".to_string()][..])
        );
    }
}
