//! `spg-analyze` — the workspace-invariant lint engine.
//!
//! The serving stack's guarantees rest on conventions no compiler checks:
//! lock acquisition order across the sharded cache / singleflight /
//! admission / connection layers, "no clocks or atomics in inner loops",
//! exact wire-string agreement with `docs/robustness.md`, a closed
//! failpoint registry, and panic-free library code. This crate turns each
//! convention into a machine-checked rule over a masked lexical view of
//! every source file (see [`lexer`]), with per-site waivers
//! (`// spg-analyze: allow(<rule>)`) as the reviewable escape hatch.
//!
//! Run it as `cargo run -p spg-analyze -- lint`; CI gates on it. The rule
//! catalog and annotation grammar live in `docs/static_analysis.md`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

pub use workspace::{Diagnostic, SourceFile, Workspace};

/// Runs every rule over an already-loaded workspace, applies waivers, and
/// returns the surviving diagnostics sorted by file, line and rule.
pub fn lint_workspace(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = rules::run_all(ws);
    diags.retain(|d| {
        ws.file(&d.file)
            .map(|f| !f.is_waived(d.rule, d.line))
            .unwrap_or(true)
    });
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    diags.dedup();
    diags
}

/// Loads the workspace at `root` and lints it.
pub fn lint(root: &Path) -> io::Result<(usize, Vec<Diagnostic>)> {
    let ws = Workspace::load(root)?;
    let count = ws.files.len();
    Ok((count, lint_workspace(&ws)))
}
