//! Rule `lock-order`: lock-class annotations, may-hold-while-acquiring
//! edges, and the declared partial order.
//!
//! The four files that own every sync primitive in the serving stack are
//! inventoried for `Mutex`/`RwLock`/`Condvar` acquisition sites
//! (`.lock()`, `.read()`, `.write()`, `.wait(guard)`, `.wait_timeout(…)`).
//! Each site must name its lock class with a `// lock: <class>` annotation;
//! guard scopes are then inferred (a `let`-bound guard lives to the end of
//! its enclosing block or an explicit `drop(name)`, a temporary to the end
//! of its statement) and every acquisition made while another guard is live
//! becomes a directed `held-class -> acquired-class` edge. The rule fails
//! on edges that contradict the ranked order declared in
//! `docs/lock_order.md`, on classes missing from that order, on same-class
//! re-acquisition under a live guard, and on any cycle in the edge graph.
//!
//! `Condvar::wait`/`wait_timeout` atomically release and re-acquire the
//! guard they are handed, so a wait never forms a same-class self-edge —
//! but it is still an acquisition site (the thread blocks there holding
//! nothing, then re-acquires) and must be annotated.

use std::collections::{BTreeMap, BTreeSet};

use super::{matching, occurrences};
use crate::workspace::{Diagnostic, SourceFile, Workspace};

pub const NAME: &str = "lock-order";

/// The files whose sync primitives the rule inventories. Anything that adds
/// a lock elsewhere should move the lock here or extend this list.
const TARGETS: [&str; 4] = [
    "crates/core/src/cache.rs",
    "crates/core/src/flight.rs",
    "crates/server/src/admission.rs",
    "crates/server/src/server.rs",
];

const ORDER_DOC: &str = "docs/lock_order.md";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Plain, // .lock() / .read() / .write()
    Wait,  // Condvar wait: releases and re-acquires its own guard
}

#[derive(Debug)]
struct Site {
    offset: usize,
    line: usize,
    kind: Kind,
    method: &'static str,
    class: Option<String>,
    /// Guard liveness interval end (byte offset, exclusive-ish).
    guard_end: usize,
    let_bound: bool,
}

/// One observed `held -> acquired` relation.
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: usize,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = TARGETS.iter().filter_map(|t| ws.file(t)).collect();
    if files.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut used_classes: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for file in &files {
        scan_file(file, &mut diags, &mut edges);
        for (&line, classes) in &file.lock_classes {
            for class in classes {
                used_classes
                    .entry(class.clone())
                    .or_insert_with(|| (file.rel.clone(), line));
            }
        }
    }

    match parse_declared_order(ws) {
        None => {
            if !used_classes.is_empty() {
                diags.push(Diagnostic {
                    file: ORDER_DOC.to_string(),
                    line: 1,
                    rule: NAME,
                    message: format!(
                        "lock classes are annotated in source but {ORDER_DOC} declares no \
                         order (expected a numbered list of `class` names)"
                    ),
                });
            }
        }
        Some(ranks) => {
            for (class, (file, line)) in &used_classes {
                if !ranks.contains_key(class) {
                    diags.push(Diagnostic {
                        file: file.clone(),
                        line: *line,
                        rule: NAME,
                        message: format!("lock class `{class}` is not declared in {ORDER_DOC}"),
                    });
                }
            }
            for edge in &edges {
                let (Some(&held), Some(&acq)) = (ranks.get(&edge.held), ranks.get(&edge.acquired))
                else {
                    continue; // undeclared classes already reported above
                };
                if held >= acq {
                    diags.push(Diagnostic {
                        file: edge.file.clone(),
                        line: edge.line,
                        rule: NAME,
                        message: format!(
                            "acquires `{}` while holding `{}`, against the declared order \
                             in {ORDER_DOC} (`{}` ranks before `{}`)",
                            edge.acquired, edge.held, edge.acquired, edge.held
                        ),
                    });
                }
            }
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        let anchor = edges
            .iter()
            .find(|e| cycle.contains(&e.held) && cycle.contains(&e.acquired));
        let (file, line) = anchor
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| (TARGETS[0].to_string(), 1));
        let mut path = cycle.clone();
        path.push(cycle[0].clone());
        diags.push(Diagnostic {
            file,
            line,
            rule: NAME,
            message: format!("lock-order cycle: {}", path.join(" -> ")),
        });
    }
    diags
}

fn scan_file(file: &SourceFile, diags: &mut Vec<Diagnostic>, edges: &mut Vec<Edge>) {
    let masked = &file.lexed.masked;
    let mut sites = collect_sites(file);

    // Hand each line's annotated classes to its sites in textual order.
    let mut consumed: BTreeMap<usize, usize> = BTreeMap::new();
    for site in &mut sites {
        let idx = consumed.entry(site.line).or_insert(0);
        site.class = file
            .lock_classes
            .get(&site.line)
            .and_then(|classes| classes.get(*idx))
            .cloned();
        *idx += 1;
        if site.class.is_none() {
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: site.line,
                rule: NAME,
                message: format!(
                    "`{}` acquisition without a `// lock: <class>` annotation",
                    site.method
                ),
            });
        }
    }

    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            if sites[j].offset > sites[i].guard_end {
                continue;
            }
            let (Some(held), Some(acquired)) = (&sites[i].class, &sites[j].class) else {
                continue;
            };
            if held == acquired {
                // A wait hands its own guard back; temporaries are gone by
                // the next acquisition of the same stripe. Only a let-bound
                // guard makes same-class re-acquisition a self-deadlock.
                if sites[i].let_bound && sites[j].kind != Kind::Wait {
                    diags.push(Diagnostic {
                        file: file.rel.clone(),
                        line: sites[j].line,
                        rule: NAME,
                        message: format!(
                            "re-acquires lock class `{held}` while a guard of the same \
                             class is live (self-deadlock)"
                        ),
                    });
                }
                continue;
            }
            edges.push(Edge {
                held: held.clone(),
                acquired: acquired.clone(),
                file: file.rel.clone(),
                line: sites[j].line,
            });
        }
    }
    let _ = masked;
}

/// Finds every acquisition site and computes its guard interval.
fn collect_sites(file: &SourceFile) -> Vec<Site> {
    let masked = &file.lexed.masked;
    let mut sites = Vec::new();
    let patterns: [(&str, Kind); 5] = [
        (".lock(", Kind::Plain),
        (".read(", Kind::Plain),
        (".write(", Kind::Plain),
        (".wait(", Kind::Wait),
        (".wait_timeout(", Kind::Wait),
    ];
    for (pat, kind) in patterns {
        for offset in occurrences(masked, pat) {
            let open = offset + pat.len() - 1;
            let Some(close) = matching(masked, open) else {
                continue;
            };
            let args_empty = masked[open + 1..close].trim().is_empty();
            // Mutex::lock / RwLock::read / RwLock::write take no arguments
            // (`file.read(&mut buf)` is io, not a lock); Condvar waits take
            // the guard they re-acquire (`joiner.wait()` is not a Condvar).
            let is_acquisition = match kind {
                Kind::Plain => args_empty,
                Kind::Wait => !args_empty,
            };
            if !is_acquisition {
                continue;
            }
            let method: &'static str = &pat[1..pat.len() - 1];
            let (let_bound, guard_end) = guard_scope(masked, offset, close);
            sites.push(Site {
                offset,
                line: file.lexed.line_of(offset),
                kind,
                method,
                class: None,
                guard_end,
                let_bound,
            });
        }
    }
    sites.sort_by_key(|s| s.offset);
    sites
}

/// Infers whether the acquisition at `offset` produces a `let`-bound guard
/// and where that guard's liveness ends.
fn guard_scope(masked: &str, offset: usize, call_close: usize) -> (bool, usize) {
    let stmt_start = masked[..offset]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let stmt_head = masked[stmt_start..offset].trim_start();
    let let_bound = stmt_head.starts_with("let ") && !is_value_chain(masked, call_close);
    if !let_bound {
        return (false, statement_end(masked, call_close));
    }
    let end = enclosing_block_end(masked, stmt_start).unwrap_or(masked.len());
    // An explicit `drop(name)` releases the guard early.
    let end = binding_name(stmt_head)
        .and_then(|name| find_drop(masked, offset, end, &name))
        .unwrap_or(end);
    (true, end)
}

/// Whether the call chain continues past its `.expect(…)`/`.unwrap()`
/// poison handling — `shard.lock().expect("…").get(&key)` binds the looked
/// up *value*, so the guard is a temporary despite the `let`.
fn is_value_chain(masked: &str, call_close: usize) -> bool {
    let bytes = masked.as_bytes();
    let mut i = call_close + 1;
    loop {
        // Skip whitespace and the `//`/`/*` markers masked comments keep —
        // a trailing `// lock:` annotation must not break the chain walk.
        while i < bytes.len()
            && ((bytes[i] as char).is_whitespace() || bytes[i] == b'/' || bytes[i] == b'*')
        {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'.' {
            return false; // `;`, `)` or `=` — the chain result is the guard
        }
        let ident_start = i + 1;
        let mut j = ident_start;
        while j < bytes.len() && super::is_ident(bytes[j]) {
            j += 1;
        }
        if !matches!(&masked[ident_start..j], "expect" | "unwrap") {
            return true;
        }
        match matching(masked, j) {
            Some(close) => i = close + 1,
            None => return false,
        }
    }
}

/// End of the statement containing `from` — the first `;` outside any
/// nesting opened after `from`, or the close of the surrounding delimiter.
fn statement_end(masked: &str, from: usize) -> usize {
    let bytes = masked.as_bytes();
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    for (i, &b) in bytes.iter().enumerate().skip(from) {
        match b {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' => brace += 1,
            b'}' => brace -= 1,
            b';' if paren <= 0 && bracket <= 0 && brace <= 0 => return i,
            _ => {}
        }
        if paren < 0 || bracket < 0 || brace < 0 {
            return i;
        }
    }
    masked.len()
}

/// Offset of the `}` closing the block that contains `pos`.
fn enclosing_block_end(masked: &str, pos: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let mut depth = 0i32;
    let mut open = None;
    for i in (0..pos).rev() {
        match bytes[i] {
            b'}' => depth += 1,
            b'{' => {
                if depth == 0 {
                    open = Some(i);
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    matching(masked, open?)
}

/// First bound identifier of a `let` statement head (`let mut x`, `let (a,
/// b)` → `a`).
fn binding_name(stmt_head: &str) -> Option<String> {
    let mut rest = stmt_head.strip_prefix("let ")?.trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    rest = rest.strip_prefix('(').unwrap_or(rest).trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .bytes()
        .take_while(|&b| super::is_ident(b))
        .map(char::from)
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Offset of an explicit `drop(name)` between `from` and `until`, if any.
fn find_drop(masked: &str, from: usize, until: usize, name: &str) -> Option<usize> {
    let window = &masked[from..until.min(masked.len())];
    for at in occurrences(window, "drop") {
        let after = window[at + 4..].trim_start();
        if let Some(args) = after.strip_prefix('(') {
            if args
                .split(')')
                .next()
                .map(|a| a.trim() == name)
                .unwrap_or(false)
            {
                return Some(from + at);
            }
        }
    }
    None
}

/// Parses `docs/lock_order.md` for its numbered ``1. `class` `` list; the
/// returned map carries each class's rank (outermost first).
fn parse_declared_order(ws: &Workspace) -> Option<BTreeMap<String, usize>> {
    let doc = ws.read_reference(ORDER_DOC)?;
    let mut ranks = BTreeMap::new();
    for line in doc.lines() {
        let trimmed = line.trim_start();
        let digits: String = trimmed.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            continue;
        }
        let Some(rest) = trimmed[digits.len()..].strip_prefix('.') else {
            continue;
        };
        let Some(tick) = rest.trim_start().strip_prefix('`') else {
            continue;
        };
        let Some(close) = tick.find('`') else {
            continue;
        };
        let class = tick[..close].to_string();
        let next_rank = ranks.len();
        ranks.entry(class).or_insert(next_rank);
    }
    (!ranks.is_empty()).then_some(ranks)
}

/// Finds one cycle in the edge graph, as the list of classes along it.
fn find_cycle(edges: &[Edge]) -> Option<Vec<String>> {
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for edge in edges {
        adjacency
            .entry(edge.held.as_str())
            .or_default()
            .insert(edge.acquired.as_str());
    }
    // Three-colour DFS: `path` is the grey stack, `black` is fully
    // explored. A back edge into the grey stack is a cycle.
    fn visit<'a>(
        node: &'a str,
        adjacency: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        path: &mut Vec<&'a str>,
        black: &mut BTreeSet<&'a str>,
    ) -> Option<Vec<String>> {
        if let Some(at) = path.iter().position(|&n| n == node) {
            return Some(path[at..].iter().map(|s| s.to_string()).collect());
        }
        if black.contains(node) {
            return None;
        }
        path.push(node);
        for &succ in adjacency.get(node).into_iter().flatten() {
            if let Some(cycle) = visit(succ, adjacency, path, black) {
                return Some(cycle);
            }
        }
        path.pop();
        black.insert(node);
        None
    }
    let mut black = BTreeSet::new();
    for &start in adjacency.keys() {
        if let Some(cycle) = visit(start, &adjacency, &mut Vec::new(), &mut black) {
            return Some(cycle);
        }
    }
    None
}
