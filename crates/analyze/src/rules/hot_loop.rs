//! Rule `hot-loop`: no clock reads or atomic RMW outside the allowlist.
//!
//! The PR-7 budget contract is "polls at phase boundaries only — no atomics
//! and no syscalls in inner loops"; `BENCH_*.json` numbers depend on it.
//! This rule turns the contract into a default-deny: `Instant::now`,
//! `SystemTime` and atomic read-modify-write calls are flagged everywhere
//! except the clock's own home (`budget.rs`) and the serving/bench layers,
//! which are allowed to read time by design (deadlines, admission windows,
//! latency capture). A library-crate site that genuinely sits at a phase
//! boundary carries a `// spg-analyze: allow(hot-loop)` waiver naming it as
//! such — the waiver is the reviewable record that someone decided the
//! call is boundary-grade, not loop-grade.

use super::occurrences;
use crate::workspace::{Diagnostic, Workspace};

pub const NAME: &str = "hot-loop";

/// The clock's home module: budget deadlines are made of `Instant`s.
const ALLOW_EXACT: [&str; 1] = ["crates/graph/src/budget.rs"];
/// Layers allowed to touch clocks/atomics freely: the server (deadlines,
/// supervision) and the bench harness (it measures time for a living).
const ALLOW_PREFIX: [&str; 2] = ["crates/server/", "crates/bench/"];

const CLOCKS: [&str; 2] = ["Instant::now", "SystemTime"];
// `.swap(` is deliberately absent: `slice::swap`/`mem::swap` make it all
// noise, and `AtomicUsize::swap` without a `fetch_` twin is not in use.
const RMW: [&str; 9] = [
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    ".compare_exchange",
];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if ALLOW_EXACT.contains(&file.rel.as_str())
            || ALLOW_PREFIX.iter().any(|p| file.rel.starts_with(p))
        {
            continue;
        }
        let masked = &file.lexed.masked;
        for pat in CLOCKS {
            for offset in occurrences(masked, pat) {
                diags.push(Diagnostic {
                    file: file.rel.clone(),
                    line: file.lexed.line_of(offset),
                    rule: NAME,
                    message: format!(
                        "clock read `{pat}` outside the hot-loop allowlist (poll at \
                         phase boundaries only; waive if this *is* a phase boundary)"
                    ),
                });
            }
        }
        for pat in RMW {
            for offset in occurrences(masked, pat) {
                let name = pat.trim_matches(['.', '(']);
                diags.push(Diagnostic {
                    file: file.rel.clone(),
                    line: file.lexed.line_of(offset),
                    rule: NAME,
                    message: format!(
                        "atomic read-modify-write `{name}` outside the hot-loop \
                         allowlist (contended atomics do not belong in inner loops)"
                    ),
                });
            }
        }
    }
    diags
}
