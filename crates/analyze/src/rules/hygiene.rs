//! Rules `no-panic` and `forbid-unsafe`: library-crate hygiene.
//!
//! `no-panic` keeps `println!`, `.unwrap()` and `.expect(…)` out of
//! library code: a library talks to callers through `Result`, stdout
//! belongs to the binaries, and ad-hoc panics defeat the per-slot
//! isolation the executor builds (`catch_unwind` turns them into
//! `ExecutionPanicked`, but each one is a query lost for nothing). Binary
//! roots (`main.rs`, `src/bin/**`) are exempt, `eprintln!` is allowed
//! everywhere (stderr is the operator channel), and poison-handling on
//! lock acquisition (`.lock().expect("…")` and friends) is carved out —
//! a poisoned lock *should* take the process down, that is the policy.
//! Anything else legitimate carries a `// spg-analyze: allow(no-panic)`
//! waiver stating its invariant.
//!
//! `forbid-unsafe` asserts every library crate root carries
//! `#![forbid(unsafe_code)]` — `forbid` (not the workspace `deny`) so no
//! inner `#[allow]` can sneak unsafe back in.

use super::{is_ident, occurrences};
use crate::workspace::{Diagnostic, SourceFile, Workspace};

pub const NO_PANIC: &str = "no-panic";
pub const FORBID_UNSAFE: &str = "forbid-unsafe";

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        forbid_unsafe(&file.rel, &file.lexed.masked, &mut diags);
        if file.rel.ends_with("/main.rs") || file.rel.contains("/src/bin/") {
            continue;
        }
        no_panic(&file.rel, file, &mut diags);
    }
    diags
}

fn forbid_unsafe(rel: &str, masked: &str, diags: &mut Vec<Diagnostic>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let is_lib_root = rel == "src/lib.rs"
        || (parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs");
    if !is_lib_root {
        return;
    }
    if !masked.contains("#![forbid(unsafe_code)]") {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line: 1,
            rule: FORBID_UNSAFE,
            message: "library crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

fn no_panic(rel: &str, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let masked = &file.lexed.masked;
    for at in occurrences(masked, "println!") {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line: file.lexed.line_of(at),
            rule: NO_PANIC,
            message: "`println!` in library code (stdout belongs to the binaries; \
                      use `eprintln!` for operator messages or return the data)"
                .to_string(),
        });
    }
    for (pat, what) in [(".unwrap()", "unwrap"), (".expect(", "expect")] {
        for at in occurrences(masked, pat) {
            if follows_lock_acquisition(masked, at) {
                continue;
            }
            // `Option/Result::expect` takes exactly one argument; a
            // multi-argument `.expect(…)` is some type's own fallible
            // method (e.g. a parser's `expect(token, msg)`), not a panic.
            if what == "expect" && !single_argument(masked, at + pat.len() - 1) {
                continue;
            }
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: file.lexed.line_of(at),
                rule: NO_PANIC,
                message: format!(
                    "`.{what}` in library code (return the error, or waive with the \
                     invariant that makes this unreachable)"
                ),
            });
        }
    }
}

/// Whether the call whose `(` sits at `open` has at most one top-level
/// argument (commas inside nested delimiters don't count).
fn single_argument(masked: &str, open: usize) -> bool {
    let Some(close) = super::matching(masked, open) else {
        return true;
    };
    let bytes = masked.as_bytes();
    let (mut paren, mut bracket, mut brace) = (0u32, 0u32, 0u32);
    for &b in &bytes[open + 1..close] {
        match b {
            b'(' => paren += 1,
            b')' => paren = paren.saturating_sub(1),
            b'[' => bracket += 1,
            b']' => bracket = bracket.saturating_sub(1),
            b'{' => brace += 1,
            b'}' => brace = brace.saturating_sub(1),
            b',' if paren == 0 && bracket == 0 && brace == 0 => return false,
            _ => {}
        }
    }
    true
}

/// Whether the `.unwrap`/`.expect` at `dot` directly follows a sync
/// acquisition call — `.lock()`, `.read()`, `.write()` (argless, so io
/// reads/writes do not qualify), `.wait(guard)` or `.wait_timeout(…)`.
/// Panicking on lock poisoning is the workspace-wide policy.
fn follows_lock_acquisition(masked: &str, dot: usize) -> bool {
    // Masked comments keep their `//`/`/*` markers; a trailing annotation
    // between the acquisition and its `.expect` must not break the chain.
    let mut head = masked[..dot].trim_end();
    while let Some(stripped) = head.strip_suffix("//").or_else(|| head.strip_suffix("/*")) {
        head = stripped.trim_end();
    }
    if !head.ends_with(')') {
        return false;
    }
    let bytes = head.as_bytes();
    let mut depth = 0i32;
    let mut open = None;
    for i in (0..head.len()).rev() {
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    open = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return false;
    };
    let args_empty = head[open + 1..head.len() - 1].trim().is_empty();
    let mut start = open;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    match &head[start..open] {
        "lock" | "read" | "write" => args_empty,
        "wait" | "wait_timeout" => true,
        _ => false,
    }
}
