//! Rule `failpoint-registry`: every failpoint site is declared, listed in
//! `sites::ALL`, referenced only by its declared constant, and exercised by
//! the chaos e2e harness.
//!
//! A failpoint that is not in `ALL` silently drops out of "fire at every
//! site" chaos sweeps; a site the harness never names is armed in
//! production builds but proven by nothing. The registry file
//! (`crates/core/src/failpoints.rs`) is the single source of truth: its
//! `pub mod sites` constants, the `ALL` array, each `failpoints::check(…)`
//! call site across the workspace, and `chaos_e2e.rs` must all agree.

use std::collections::BTreeMap;

use super::{matching, occurrences};
use crate::workspace::{Diagnostic, SourceFile, Workspace};

pub const NAME: &str = "failpoint-registry";

const REGISTRY: &str = "crates/core/src/failpoints.rs";
const CHAOS: &str = "crates/server/tests/chaos_e2e.rs";

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(registry) = ws.file(REGISTRY) else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    let Some((consts, all, all_line)) = parse_sites(registry) else {
        diags.push(Diagnostic {
            file: REGISTRY.to_string(),
            line: 1,
            rule: NAME,
            message: "no `pub mod sites` with site constants and an `ALL` array found".to_string(),
        });
        return diags;
    };

    // Internal consistency: ALL <-> constants, no duplicate wire names.
    for (name, (value, line)) in &consts {
        if !all.contains(name) {
            diags.push(Diagnostic {
                file: REGISTRY.to_string(),
                line: *line,
                rule: NAME,
                message: format!(
                    "failpoint site `{name}` (\"{value}\") is missing from sites::ALL"
                ),
            });
        }
    }
    for name in &all {
        if !consts.contains_key(name) {
            diags.push(Diagnostic {
                file: REGISTRY.to_string(),
                line: all_line,
                rule: NAME,
                message: format!("sites::ALL names `{name}`, which is not a declared site"),
            });
        }
    }
    let mut by_value: BTreeMap<&str, &str> = BTreeMap::new();
    for (name, (value, line)) in &consts {
        if let Some(first) = by_value.insert(value.as_str(), name.as_str()) {
            diags.push(Diagnostic {
                file: REGISTRY.to_string(),
                line: *line,
                rule: NAME,
                message: format!(
                    "failpoint sites `{first}` and `{name}` share the wire name \"{value}\""
                ),
            });
        }
    }

    // Every check() call across the workspace names a declared site.
    for file in &ws.files {
        let masked = &file.lexed.masked;
        for at in occurrences(masked, "failpoints::check(") {
            let open = at + "failpoints::check(".len() - 1;
            let Some(close) = matching(masked, open) else {
                continue;
            };
            let arg = masked[open + 1..close].trim();
            let site_name = arg.rsplit("::").next().unwrap_or(arg);
            let known = consts.contains_key(site_name)
                // String-literal args are masked; resolve via the span list.
                || file
                    .lexed
                    .strings
                    .iter()
                    .find(|s| s.offset > open && s.offset < close)
                    .map(|s| by_value.contains_key(s.text.as_str()))
                    .unwrap_or(false);
            if !known {
                diags.push(Diagnostic {
                    file: file.rel.clone(),
                    line: file.lexed.line_of(at),
                    rule: NAME,
                    message: format!("failpoint check site `{arg}` is not declared in sites::"),
                });
            }
        }
    }

    // Every declared site must be exercised by the chaos harness.
    match ws.read_reference(CHAOS) {
        None => diags.push(Diagnostic {
            file: REGISTRY.to_string(),
            line: all_line,
            rule: NAME,
            message: format!("chaos harness {CHAOS} not found; sites are unproven"),
        }),
        Some(chaos) => {
            for (name, (value, line)) in &consts {
                if !chaos.contains(value.as_str()) {
                    diags.push(Diagnostic {
                        file: REGISTRY.to_string(),
                        line: *line,
                        rule: NAME,
                        message: format!(
                            "failpoint site `{name}` (\"{value}\") is never exercised \
                             by {CHAOS}"
                        ),
                    });
                }
            }
        }
    }
    diags
}

type Sites = (BTreeMap<String, (String, usize)>, Vec<String>, usize);

/// Parses `pub mod sites { pub const NAME: &str = "value"; … pub const ALL:
/// [&str; N] = [NAME, …]; }` out of the registry file. Returns the
/// name → (wire value, line) map, the `ALL` identifier list and its line.
fn parse_sites(file: &SourceFile) -> Option<Sites> {
    let masked = &file.lexed.masked;
    let mod_at = occurrences(masked, "pub mod sites").into_iter().next()?;
    let open = masked[mod_at..].find('{').map(|p| mod_at + p)?;
    let end = matching(masked, open)?;

    let mut consts = BTreeMap::new();
    let mut all = Vec::new();
    let mut all_line = 0;
    for const_at in occurrences(&masked[open..end], "const ") {
        let at = open + const_at;
        let name_start = at + "const ".len();
        let name: String = masked[name_start..]
            .bytes()
            .take_while(|&b| super::is_ident(b))
            .map(char::from)
            .collect();
        if name.is_empty() {
            continue;
        }
        let line = file.lexed.line_of(at);
        if name == "ALL" {
            let bracket = masked[at..end].find('[').map(|p| at + p)?;
            // Skip the `[&str; N]` type to the initializer array.
            let type_close = matching(masked, bracket)?;
            let init = masked[type_close..end].find('[').map(|p| type_close + p)?;
            let init_close = matching(masked, init)?;
            all = masked[init + 1..init_close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| s.rsplit("::").next().unwrap_or(s).to_string())
                .collect();
            all_line = line;
        } else {
            // The wire name is the first string literal of the declaration;
            // constants of other types (no string before their `;`) are not
            // sites and are skipped.
            let stmt_end = masked[at..end].find(';').map(|p| at + p).unwrap_or(end);
            if let Some(value) = file
                .lexed
                .strings
                .iter()
                .find(|s| s.offset > at && s.offset < stmt_end)
            {
                consts.insert(name, (value.text.clone(), line));
            }
        }
    }
    if consts.is_empty() || all.is_empty() {
        return None;
    }
    Some((consts, all, all_line))
}
