//! Rule `wire-drift`: wire strings and `docs/robustness.md` must agree.
//!
//! Clients hold the server to exact-string bit-identity, so the error/
//! status vocabulary is an API. The canonical producers are the `Display`
//! impls of `QueryError` (`query.rs`) and `BudgetExhausted` (`budget.rs`)
//! and the `status`/literal-`error` fields built in `protocol.rs`; the
//! canonical documentation is `docs/robustness.md`. This rule checks both
//! directions: every produced literal must appear verbatim in the doc
//! (statuses as `status: <value>`), and every wire string the doc's
//! `QueryError` taxonomy table promises (plus every `status: <value>` it
//! mentions) must actually be produced by source.

use std::collections::BTreeSet;

use super::{matching, occurrences};
use crate::lexer::Span;
use crate::workspace::{Diagnostic, SourceFile, Workspace};

pub const NAME: &str = "wire-drift";

const DOC: &str = "docs/robustness.md";
const QUERY_RS: &str = "crates/core/src/query.rs";
const BUDGET_RS: &str = "crates/graph/src/budget.rs";
const PROTOCOL_RS: &str = "crates/server/src/protocol.rs";

/// A wire literal and where source produces it.
struct Produced {
    text: String,
    file: String,
    line: usize,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(doc) = ws.read_reference(DOC) else {
        return Vec::new();
    };
    let mut wire: Vec<Produced> = Vec::new();
    let mut statuses: Vec<Produced> = Vec::new();
    if let Some(file) = ws.file(QUERY_RS) {
        wire.extend(display_templates(file, "QueryError"));
    }
    if let Some(file) = ws.file(BUDGET_RS) {
        wire.extend(display_templates(file, "BudgetExhausted"));
    }
    if let Some(file) = ws.file(PROTOCOL_RS) {
        let (status_lits, error_lits) = protocol_literals(file);
        statuses.extend(status_lits);
        wire.extend(error_lits);
    }
    if wire.is_empty() && statuses.is_empty() {
        return Vec::new();
    }

    let mut diags = Vec::new();
    for produced in &wire {
        if !doc.contains(&produced.text) {
            diags.push(Diagnostic {
                file: produced.file.clone(),
                line: produced.line,
                rule: NAME,
                message: format!("wire string `{}` is not documented in {DOC}", produced.text),
            });
        }
    }
    for produced in &statuses {
        let needle = format!("status: {}", produced.text);
        if !doc.contains(&needle) {
            diags.push(Diagnostic {
                file: produced.file.clone(),
                line: produced.line,
                rule: NAME,
                message: format!(
                    "wire status `{}` is not documented as `{needle}` in {DOC}",
                    produced.text
                ),
            });
        }
    }

    let wire_set: BTreeSet<&str> = wire.iter().map(|p| p.text.as_str()).collect();
    for (line, cell) in taxonomy_cells(&doc) {
        if !wire_set.contains(cell.as_str()) {
            diags.push(Diagnostic {
                file: DOC.to_string(),
                line,
                rule: NAME,
                message: format!(
                    "documented wire string `{cell}` is not produced by any \
                     Display impl in source"
                ),
            });
        }
    }
    let status_set: BTreeSet<&str> = statuses.iter().map(|p| p.text.as_str()).collect();
    for (line, status) in doc_statuses(&doc) {
        if !status_set.is_empty() && !status_set.contains(status.as_str()) {
            diags.push(Diagnostic {
                file: DOC.to_string(),
                line,
                rule: NAME,
                message: format!("documented `status: {status}` is not produced by protocol.rs"),
            });
        }
    }
    diags
}

/// Format templates of `impl … Display for <type_name>`: the first string
/// literal of each `write!` in the impl body, skipping pure-delegation
/// templates (`"{}"` and friends, which carry no words of their own).
fn display_templates(file: &SourceFile, type_name: &str) -> Vec<Produced> {
    let masked = &file.lexed.masked;
    let header = format!("Display for {type_name}");
    let Some(at) = occurrences(masked, &header).into_iter().next() else {
        return Vec::new();
    };
    let Some(open) = masked[at..].find('{').map(|p| at + p) else {
        return Vec::new();
    };
    let end = matching(masked, open).unwrap_or(masked.len());
    let mut out = Vec::new();
    for write_at in occurrences(&masked[open..end], "write!(") {
        let call = open + write_at;
        if let Some(span) = first_string_after(file, call, end) {
            if span.text.chars().any(char::is_alphabetic) {
                out.push(Produced {
                    text: span.text.clone(),
                    file: file.rel.clone(),
                    line: span.line,
                });
            }
        }
    }
    out
}

/// Status values and literal `error` strings from `protocol.rs` response
/// builders. Both come from the idiom
/// `("status".into(), Json::Str("ok".into()))` — a key literal immediately
/// followed (modulo whitespace) by `Json::Str(` and a value literal; a
/// variable message (`Json::Str(message.into())`) has different
/// between-text and is skipped.
fn protocol_literals(file: &SourceFile) -> (Vec<Produced>, Vec<Produced>) {
    let mut statuses = Vec::new();
    let mut errors = Vec::new();
    let spans = &file.lexed.strings;
    for pair in spans.windows(2) {
        let key = &pair[0];
        let value = &pair[1];
        if key.text != "status" && key.text != "error" {
            continue;
        }
        let between_start = key.offset + key.text.len() + 2; // both quotes
        let between: String = file.lexed.masked[between_start..value.offset]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if between != ".into(),Json::Str(" {
            continue;
        }
        let produced = Produced {
            text: value.text.clone(),
            file: file.rel.clone(),
            line: value.line,
        };
        if key.text == "status" {
            statuses.push(produced);
        } else {
            errors.push(produced);
        }
    }
    (statuses, errors)
}

/// First string literal starting after `from` and before `until`.
fn first_string_after(file: &SourceFile, from: usize, until: usize) -> Option<&Span> {
    file.lexed
        .strings
        .iter()
        .find(|s| s.offset > from && s.offset < until)
}

/// Wire-string cells of the doc's `QueryError` taxonomy table: rows whose
/// first two cells are both backticked (`| \`Variant\` | \`wire string\` |`).
/// The failpoint-site table has a prose second cell and is skipped.
fn taxonomy_cells(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // split yields an empty first/last around the outer pipes
        if cells.len() < 4 {
            continue;
        }
        let (variant, wire) = (cells[1], cells[2]);
        let ticked = |c: &str| c.len() > 2 && c.starts_with('`') && c.ends_with('`');
        if ticked(variant) && ticked(wire) {
            out.push((idx + 1, wire[1..wire.len() - 1].to_string()));
        }
    }
    out
}

/// Every `status: <value>` mention in the doc.
fn doc_statuses(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        for at in occurrences(line, "status: ") {
            let value: String = line[at + "status: ".len()..]
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '_')
                .collect();
            if !value.is_empty() {
                out.push((idx + 1, value));
            }
        }
    }
    out
}
