//! The rule registry and the text-matching helpers the rules share.
//!
//! Every rule is a function from a loaded [`Workspace`] to diagnostics. A
//! rule whose subject files are absent stays quiet — that is what lets the
//! fixture trees under `tests/fixtures/` exercise one rule at a time — and
//! every diagnostic can be suppressed at its site with
//! `// spg-analyze: allow(<rule>)` (filtered centrally in [`crate::lint`]).

pub mod failpoints;
pub mod hot_loop;
pub mod hygiene;
pub mod lock_order;
pub mod wire;

use crate::workspace::{Diagnostic, Workspace};

/// Runs every rule over the workspace. Waivers are not yet applied.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(lock_order::run(ws));
    diags.extend(hot_loop::run(ws));
    diags.extend(wire::run(ws));
    diags.extend(failpoints::run(ws));
    diags.extend(hygiene::run(ws));
    diags
}

/// The names of every registered rule, for waiver validation and docs.
pub const ALL_RULES: [&str; 6] = [
    lock_order::NAME,
    hot_loop::NAME,
    wire::NAME,
    failpoints::NAME,
    hygiene::NO_PANIC,
    hygiene::FORBID_UNSAFE,
];

pub(crate) fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every occurrence of `pat` in `masked` that sits on
/// identifier boundaries (so `println!` does not match inside `eprintln!`
/// and `SystemTime` does not match `SystemTimeError`). Patterns whose first
/// or last character is not an identifier character skip that side's check.
pub(crate) fn occurrences(masked: &str, pat: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let pat_bytes = pat.as_bytes();
    let mut out = Vec::new();
    if pat_bytes.is_empty() {
        return out;
    }
    let mut from = 0;
    while let Some(found) = masked[from..].find(pat) {
        let at = from + found;
        let before_ok = !is_ident(pat_bytes[0]) || at == 0 || !is_ident(bytes[at - 1]);
        let end = at + pat_bytes.len();
        let after_ok = !is_ident(pat_bytes[pat_bytes.len() - 1])
            || end >= bytes.len()
            || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

/// Index of the delimiter closing the one at `open` (`(`, `[` or `{`),
/// counting nesting of that same delimiter kind only — fine on masked text,
/// where no delimiter can hide in a string or comment.
pub(crate) fn matching(masked: &str, open: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let (open_ch, close_ch) = match bytes.get(open)? {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == open_ch {
            depth += 1;
        } else if b == close_ch {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_respect_ident_boundaries() {
        assert_eq!(
            occurrences("eprintln!(x); println!(y)", "println!"),
            vec![14]
        );
        assert_eq!(
            occurrences("SystemTimeError SystemTime", "SystemTime"),
            vec![16]
        );
        assert_eq!(occurrences("a.lock() b.relock()", ".lock("), vec![1]);
    }

    #[test]
    fn matching_counts_nesting() {
        let s = "f(a(b), c) d";
        assert_eq!(matching(s, 1), Some(9));
        assert_eq!(matching(s, 3), Some(5));
        assert_eq!(matching("unterminated(", 12), None);
    }
}
