//! CLI for the lint engine: `spg-analyze lint [--root PATH]`.
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error — CI
//! treats anything nonzero as a failed gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut command = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "lint" if command.is_none() => command = Some("lint"),
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if command != Some("lint") {
        return usage("expected the `lint` subcommand");
    }

    match spg_analyze::lint(&root) {
        Ok((scanned, diags)) if diags.is_empty() => {
            eprintln!("spg-analyze: {scanned} files clean");
            ExitCode::SUCCESS
        }
        Ok((scanned, diags)) => {
            for diag in &diags {
                println!("{diag}");
            }
            eprintln!(
                "spg-analyze: {} diagnostic(s) across {scanned} files",
                diags.len()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("spg-analyze: error: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("spg-analyze: {problem}");
    }
    eprintln!("usage: spg-analyze lint [--root PATH]");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
