//! A hand-rolled Rust surface lexer.
//!
//! The environment has no crates.io access, so there is no `syn` here; the
//! rules instead run over a **masked** view of each source file in which
//! comment bodies and string-literal contents are replaced by spaces
//! (newlines preserved, so byte offsets and line numbers survive) and
//! `#[cfg(test)]` / `#[test]` items are blanked entirely. Everything a rule
//! matches against the masked text is therefore *code*, never prose, and
//! everything it needs from prose (waivers, `// lock:` annotations, wire
//! string literals) is carried out-of-band in [`Lexed::comments`] and
//! [`Lexed::strings`].
//!
//! The lexer understands: line comments (`//`, `///`, `//!`), nested block
//! comments, plain/byte strings with escapes, raw strings (`r"…"`,
//! `r#"…"#`, `br"…"`), char and byte-char literals, and the
//! lifetime-vs-char-literal ambiguity (`'g` vs `'g'`).

/// One comment or string literal recovered from the source, anchored to the
/// 1-indexed line where it starts.
#[derive(Debug, Clone)]
pub struct Span {
    /// Byte offset of the first character (the `/` or the opening quote).
    pub offset: usize,
    /// 1-indexed line of the first character.
    pub line: usize,
    /// Comment text without its delimiters, or string contents without the
    /// surrounding quotes (raw, escapes untouched).
    pub text: String,
}

/// The masked view of one file (see the module docs).
#[derive(Debug)]
pub struct Lexed {
    /// Same byte length as the input: comments/string bodies/test items are
    /// spaces, all newlines are preserved.
    pub masked: String,
    /// Byte offset where each line starts; `line_starts[0] == 0`.
    pub line_starts: Vec<usize>,
    /// Every comment outside blanked test items, in source order.
    pub comments: Vec<Span>,
    /// Every string literal outside blanked test items, in source order.
    pub strings: Vec<Span>,
}

impl Lexed {
    /// 1-indexed line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

/// Lexes `source`, masking comments, string bodies and test-gated items.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Span {
                    offset: start,
                    line: line_of(start),
                    text: source[start + 2..i].to_string(),
                });
                // Keep the `//` marker so test-region filtering (below) can
                // still tell this span apart from blanked test code.
                let mark = masked.len();
                blank(&mut masked, &bytes[start..i]);
                masked[mark] = b'/';
                masked[mark + 1] = b'/';
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let inner_end = i.saturating_sub(2).max(start + 2);
                comments.push(Span {
                    offset: start,
                    line: line_of(start),
                    text: source[start + 2..inner_end].to_string(),
                });
                let mark = masked.len();
                blank(&mut masked, &bytes[start..i]);
                masked[mark] = b'/';
                masked[mark + 1] = b'*';
            }
            b'"' => {
                i = lex_plain_string(source, bytes, i, &mut masked, &mut strings, &line_of);
            }
            b'r' | b'b' if is_literal_prefix(bytes, i) => {
                i = lex_prefixed_literal(source, bytes, i, &mut masked, &mut strings, &line_of);
            }
            b'\'' => {
                // Char literal vs lifetime. `'\x'` and `'c'` are literals;
                // `'ident` (no closing quote right after one char) is a
                // lifetime and passes through unmasked.
                if bytes.get(i + 1) == Some(&b'\\') {
                    masked.push(b'\'');
                    i += 1;
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += if bytes[i] == b'\\' { 2 } else { 1 };
                    }
                    blank(&mut masked, &bytes[start..i.min(bytes.len())]);
                    if i < bytes.len() {
                        masked.push(b'\'');
                        i += 1;
                    }
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                    masked.extend_from_slice(b"' '");
                    i += 3;
                } else {
                    masked.push(b);
                    i += 1;
                }
            }
            _ => {
                masked.push(b);
                i += 1;
            }
        }
    }
    debug_assert_eq!(masked.len(), bytes.len());
    let mut masked = String::from_utf8(masked).unwrap_or_default();
    blank_test_items(&mut masked);
    // A span that now sits inside a blanked region belonged to test code.
    let in_code = |s: &Span| {
        masked[s.offset..]
            .bytes()
            .next()
            .map(|c| c == b'/' || c == b'"' || c == b'r' || c == b'b' || c == b'\'')
            .unwrap_or(false)
    };
    comments.retain(&in_code);
    strings.retain(&in_code);
    Lexed {
        masked,
        line_starts,
        comments,
        strings,
    }
}

/// `true` when `bytes[i]` starts a raw/byte literal prefix (`r"`, `r#"`,
/// `b"`, `br"`, `b'`) rather than a plain identifier.
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false; // part of a longer identifier, e.g. `for` / `attr`
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return true; // byte char b'x'
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    bytes.get(j) == Some(&b'"')
}

/// Lexes a `"…"` string starting at `i`; returns the index just past it.
fn lex_plain_string(
    source: &str,
    bytes: &[u8],
    i: usize,
    masked: &mut Vec<u8>,
    strings: &mut Vec<Span>,
    line_of: &dyn Fn(usize) -> usize,
) -> usize {
    let start = i;
    masked.push(b'"');
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                masked.push(b' ');
                if j + 1 < bytes.len() {
                    masked.push(if bytes[j + 1] == b'\n' { b'\n' } else { b' ' });
                }
                j += 2;
            }
            b'"' => break,
            b'\n' => {
                masked.push(b'\n');
                j += 1;
            }
            _ => {
                masked.push(b' ');
                j += 1;
            }
        }
    }
    strings.push(Span {
        offset: start,
        line: line_of(start),
        text: source[start + 1..j.min(bytes.len())].to_string(),
    });
    if j < bytes.len() {
        masked.push(b'"');
        j += 1;
    }
    j
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'x'` starting at `i`.
fn lex_prefixed_literal(
    source: &str,
    bytes: &[u8],
    i: usize,
    masked: &mut Vec<u8>,
    strings: &mut Vec<Span>,
    line_of: &dyn Fn(usize) -> usize,
) -> usize {
    let start = i;
    let mut j = i;
    if bytes[j] == b'b' {
        masked.push(b'b');
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            // Byte char literal.
            masked.push(b'\'');
            j += 1;
            let body = j;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += if bytes[j] == b'\\' { 2 } else { 1 };
            }
            blank(masked, &bytes[body..j.min(bytes.len())]);
            if j < bytes.len() {
                masked.push(b'\'');
                j += 1;
            }
            return j;
        }
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        masked.push(b'r');
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        masked.push(b'#');
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return j; // not actually a literal; prefix already copied verbatim
    }
    if !raw {
        // Plain byte string: same escape rules as a plain string.
        return lex_plain_string(source, bytes, j, masked, strings, line_of);
    }
    masked.push(b'"');
    j += 1;
    let body = j;
    let terminator: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    while j < bytes.len() && !bytes[j..].starts_with(&terminator) {
        masked.push(if bytes[j] == b'\n' { b'\n' } else { b' ' });
        j += 1;
    }
    strings.push(Span {
        offset: start,
        line: line_of(start),
        text: source[body..j.min(bytes.len())].to_string(),
    });
    if j < bytes.len() {
        masked.extend_from_slice(&terminator);
        j += terminator.len();
    }
    j
}

fn blank(masked: &mut Vec<u8>, region: &[u8]) {
    for &b in region {
        masked.push(if b == b'\n' { b'\n' } else { b' ' });
    }
}

/// Blanks every item gated behind `#[test]` or a `#[cfg(…)]` whose predicate
/// enables it only for tests (`test`, `all(test, …)`, `any(test, …)` —
/// `not(test)` is deliberately kept). Runs on the already comment/string
/// masked text, so attribute detection cannot be fooled by prose.
fn blank_test_items(masked: &mut String) {
    // SAFETY-free in-place byte editing: the buffer is ASCII-masked already.
    let mut bytes = std::mem::take(masked).into_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'#' || bytes.get(i + 1) != Some(&b'[') {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the matching `]` (attributes can nest brackets in cfg exprs).
        let mut j = i + 2;
        let mut depth = 1usize;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let content: String = bytes[i + 2..j.saturating_sub(1)]
            .iter()
            .map(|&b| b as char)
            .collect();
        if !attr_gates_tests(&content) {
            i = j;
            continue;
        }
        // Skip any further attributes and whitespace, then blank through the
        // end of the gated item (`;` for semicolon items, matching `}` for
        // braced ones).
        let mut k = j;
        loop {
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if bytes.get(k) == Some(&b'#') && bytes.get(k + 1) == Some(&b'[') {
                let mut depth = 1usize;
                k += 2;
                while k < bytes.len() && depth > 0 {
                    match bytes[k] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => {
                    brace_depth += 1;
                    entered = true;
                }
                b'}' => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        k += 1;
                        break;
                    }
                }
                b';' if !entered => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for b in &mut bytes[attr_start..k] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        i = k;
    }
    *masked = String::from_utf8(bytes).unwrap_or_default();
}

/// Whether attribute `content` (text between `#[` and `]`) gates its item to
/// test builds.
fn attr_gates_tests(content: &str) -> bool {
    let trimmed = content.trim();
    if trimmed == "test" {
        return true; // #[test]
    }
    let Some(pred) = trimmed.strip_prefix("cfg") else {
        return false;
    };
    let pred = pred.trim_start();
    if !pred.starts_with('(') {
        return false;
    }
    // Bare-word scan: strip if `test` appears as a token and the predicate
    // is not a negation. `cfg(not(test))` and `cfg(not(feature = …))` keep
    // their items; `cfg(test)` / `cfg(all(test, …))` blank them.
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in pred.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens.iter().any(|t| t == "test") && !tokens.iter().any(|t| t == "not")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked_but_recovered() {
        let src = "let a = \"lock it\"; // lock: cache.shard\nlet b = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        assert!(!lexed.masked.contains("lock it"));
        assert!(!lexed.masked.contains("lock:"));
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].text, "lock it");
        assert_eq!(lexed.strings[0].line, 1);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("lock: cache.shard"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let r = r#\"a \"quoted\" b\"#; let c = 'x'; let l: &'static str = \"s\";\n";
        let lexed = lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        assert_eq!(lexed.strings[0].text, "a \"quoted\" b");
        assert_eq!(lexed.strings[1].text, "s");
        assert!(lexed.masked.contains("&'static str"), "lifetime survives");
        assert!(!lexed.masked.contains('x'), "char literal masked");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"b"; let t = "c";"#;
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 2);
        assert_eq!(lexed.strings[0].text, r#"a\"b"#);
        assert_eq!(lexed.strings[1].text, "c");
    }

    #[test]
    fn cfg_test_items_are_blanked() {
        let src = "fn live() { x.lock(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.lock(); }\n}\nfn tail() {}\n";
        let lexed = lex(src);
        assert!(lexed.masked.contains("x.lock()"));
        assert!(!lexed.masked.contains("y.lock()"));
        assert!(lexed.masked.contains("fn tail"));
    }

    #[test]
    fn cfg_not_test_is_kept_and_all_test_is_blanked() {
        let src = "#[cfg(not(test))]\nfn keep() { a(); }\n#[cfg(all(test, feature = \"fp\"))]\nmod gone { fn x() { b(); } }\n";
        let lexed = lex(src);
        assert!(lexed.masked.contains("fn keep"));
        assert!(!lexed.masked.contains("fn x"));
    }

    #[test]
    fn test_spans_are_dropped_from_comment_and_string_lists() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    // waiver here\n    const S: &str = \"secret\";\n}\n";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty());
        assert!(lexed.strings.is_empty());
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ fn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.masked.contains("fn f"));
        assert!(!lexed.masked.contains("outer"));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn line_of_maps_offsets() {
        let lexed = lex("a\nbb\nccc\n");
        assert_eq!(lexed.line_of(0), 1);
        assert_eq!(lexed.line_of(2), 2);
        assert_eq!(lexed.line_of(5), 3);
    }
}
