//! Minimal JSON value, parser and writer for the wire protocol.
//!
//! The workspace vendors no serde, so the protocol layer carries its own
//! ~300-line JSON implementation. It is deliberately strict where the
//! protocol needs strictness and small everywhere else:
//!
//! * integers are kept exact — [`Json::Uint`] / [`Json::Int`] preserve the
//!   full 64-bit range so request-id and `k` overflow are *detectable*
//!   instead of silently rounding through `f64` (a `k` of `u32::MAX` and an
//!   id of `u64::MAX` survive a round trip bit for bit; `1e30` does not
//!   masquerade as an integer);
//! * parsing is a recursive-descent pass over the byte slice with a hard
//!   **depth limit**, so a frame of 10 000 `[` characters errors instead of
//!   overflowing the stack — malformed input must never take the server
//!   down (see `tests/protocol_fuzz.rs`);
//! * objects preserve insertion order in a `Vec` (no hash map): protocol
//!   messages are small and emitted deterministically, which keeps the CI
//!   smoke's byte-level greps stable.

use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol messages are at most
/// three levels deep; anything deeper is hostile or broken input.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value (see the module docs for the number model).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer that fits `u64` (ids, vertices, hop bounds).
    Uint(u64),
    /// Negative integer that fits `i64`.
    Int(i64),
    /// Any other number: fractional, exponent form, or out of 64-bit range.
    Float(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object as an ordered key–value list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why a parse failed. The offset is a byte position into the
/// frame payload — precise enough for protocol debugging, cheap to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document from `input`, requiring it to consume the whole
/// slice (trailing whitespace excepted).
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(message))
        }
    }

    fn literal(&mut self, rest: &[u8], message: &'static str) -> Result<(), JsonError> {
        if self.input[self.pos..].starts_with(rest) {
            self.pos += rest.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting depth limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", "expected null").map(|_| Json::Null),
            Some(b't') => self
                .literal(b"true", "expected true")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal(b"false", "expected false")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate; lone surrogates are
                        // rejected (never panic on hostile input).
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            self.literal(b"\\u", "expected low surrogate")?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences: back up and take
                    // the longest valid prefix starting here.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                        let end = start + len;
                        let bytes = self
                            .input
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                        let s = std::str::from_utf8(bytes)
                            .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: "0" or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction.
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("number chars are ASCII"); // spg-analyze: allow(no-panic) — the scanner only accepts ASCII number chars
        if integral {
            if neg {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Uint(v));
            }
        }
        // Fractional, exponent form, or beyond 64-bit range: lossy float.
        // Protocol fields that require exact integers reject this variant,
        // which is precisely how id / k overflow is detected.
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("unrepresentable number"))
    }
}

/// Total byte length of a UTF-8 sequence starting with `first`, or `None`
/// for bytes that cannot start a sequence.
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

/// Serialises `value` to compact JSON (no whitespace), escaping strings per
/// RFC 8259. Deterministic: objects emit in insertion order.
pub fn write(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Uint(v) => out.push_str(&v.to_string()),
        Json::Int(v) => out.push_str(&v.to_string()),
        Json::Float(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                // JSON has no Inf/NaN; null is the conventional fallback.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Json::Object(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write(val, out);
            }
            out.push('}');
        }
    }
}

/// [`write`] into a fresh string.
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write(value, &mut out);
    out
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let doc = br#"{"id": 7, "op": "query", "s": 0, "t": 5, "k": 4294967295}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(u32::MAX as u64));
        let emitted = to_string(&v);
        assert_eq!(parse(emitted.as_bytes()).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact_and_overflow_is_visible() {
        assert_eq!(
            parse(b"18446744073709551615").unwrap(),
            Json::Uint(u64::MAX)
        );
        assert_eq!(parse(b"-42").unwrap(), Json::Int(-42));
        // One past u64::MAX degrades to Float — which protocol fields
        // requiring exact integers reject.
        assert!(matches!(
            parse(b"18446744073709551616").unwrap(),
            Json::Float(_)
        ));
        assert!(matches!(parse(b"1.5").unwrap(), Json::Float(_)));
        assert_eq!(parse(b"1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let mut hostile = Vec::new();
        hostile.extend(std::iter::repeat_n(b'[', 10_000));
        let err = parse(&hostile).unwrap_err();
        assert_eq!(err.message, "nesting depth limit exceeded");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            &b"{"[..],
            b"{\"a\"}",
            b"[1,]",
            b"\"unterminated",
            b"nul",
            b"01",
            b"1e",
            b"-",
            b"\"\\u12\"",
            b"\"\\ud800\"",
            b"{\"a\":1}x",
            b"\x80",
            b"",
        ] {
            assert!(parse(bad).is_err(), "{:?} must not parse", bad);
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = parse(br#""a\"b\\c\nd\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{e9} \u{1F600}"));
        let emitted = to_string(&v);
        assert_eq!(parse(emitted.as_bytes()).unwrap(), v);
        // Raw UTF-8 multibyte content survives.
        let raw = parse("\"héllo → wörld\"".as_bytes()).unwrap();
        assert_eq!(raw.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(br#"{"a": [1, 2], "b": null, "a": 3}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
        assert_eq!(Json::Bool(true).as_u64(), None);
        assert_eq!(Json::Uint(1).as_array(), None);
    }
}
