//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by exactly that many bytes of JSON.
//! Explicit framing (rather than a line protocol) makes truncation,
//! oversized payloads and mid-frame disconnects first-class protocol states
//! the server handles deliberately instead of edge cases inside a text
//! splitter.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "op": "query", "s": 0, "t": 5, "k": 4}
//! {"id": 2, "op": "query", "s": 0, "t": 5, "k": 4, "tenant": "fraud-team"}
//! {"id": 5, "op": "query", "s": 0, "t": 5, "k": 4, "deadline_ms": 250}
//! {"id": 3, "op": "ping"}
//! {"id": 4, "op": "stats"}
//! {"id": 6, "op": "update", "add": [[0, 7]], "remove": [[3, 5]]}
//! ```
//!
//! `id` is an arbitrary `u64` chosen by the client and echoed verbatim in
//! the response; `s`/`t` are vertex ids, `k` the hop bound (the full `u32`
//! range is accepted — clamping happens in the engine exactly as in the
//! library API). `tenant` selects the token bucket charged for admission
//! (default: the anonymous tenant). `deadline_ms` is an optional per-request
//! wall-clock budget, measured from the moment the server parses the
//! request: a request whose deadline passes while it waits in the admission
//! queue is **shed** with a `status: expired` response instead of being
//! computed, and one that expires mid-computation reports the engine's
//! [`spg_core::QueryError::DeadlineExceeded`].
//!
//! `update` applies a streaming edge-delta batch to the served graph
//! (`add`/`remove` are arrays of `[u, v]` pairs; either may be absent, not
//! both) and scopes cache invalidation to the entries the batch could have
//! affected — see `docs/dynamic_graphs.md` for the semantics and
//! guarantees.
//!
//! ## Responses
//!
//! ```json
//! {"id": 1, "status": "ok", "source": "miss", "k": 4, "edges": [[0,3],[3,5]]}
//! {"id": 1, "status": "error", "error": "source and target must be distinct (both are 5)"}
//! {"id": 2, "status": "overloaded", "error": "admission queue is full"}
//! {"id": 5, "status": "expired", "error": "deadline expired before execution"}
//! {"id": 3, "status": "ok", "pong": true}
//! {"id": 6, "status": "ok", "applied": 2, "purged": 1, "seq": 3}
//! ```
//!
//! `source` is `"hit"`, `"miss"` or `"coalesced"` — how the cache/
//! singleflight layer served the slot. `edges` is the answer's edge list in
//! the engine's deterministic order, so a client can compare responses
//! bit-for-bit against [`spg_core::Eve::query`]. `error` strings on
//! `status: error` responses are the exact [`spg_core::QueryError`] display
//! strings for the same reason: [`query_error_response`] is the **only**
//! path from an engine error to the wire, and it formats the variant via
//! that one canonical `Display` implementation — the server never writes a
//! free-form copy of an engine error string. Frames that cannot be
//! attributed to a request (unparseable id) are answered with `"id": null`.

use std::io::{self, Read, Write};

use spg_core::{CacheOutcome, Query, QueryError};

use crate::json::{self, Json};

/// Default cap on a frame's payload size. Requests are tiny; responses
/// carry edge lists, and the server sizes its own cap to the graph.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Reading one frame: the payload, a clean end-of-stream, or a violation.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection between frames — a normal goodbye.
    Closed,
    /// The declared payload length exceeds the cap. The stream can no
    /// longer be trusted to be frame-aligned, so the connection must close
    /// after the error response.
    Oversized {
        /// Length the prefix declared.
        declared: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// The peer disconnected mid-frame or another I/O error occurred.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads one length-prefixed frame. Returns [`FrameError::Closed`] only for
/// EOF *between* frames; EOF inside the prefix or payload is an I/O error
/// (truncated frame).
pub fn read_frame<R: Read>(reader: &mut R, max_bytes: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // First byte decides Closed vs truncated.
    match reader.read(&mut prefix[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    reader
        .read_exact(&mut prefix[1..])
        .map_err(FrameError::Io)?;
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max_bytes {
        return Err(FrameError::Oversized {
            declared,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; declared];
    reader.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Writes one length-prefixed frame (flushing is the caller's business;
/// the server's connection writer flushes per response).
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Answer `⟨s, t, k⟩` on the served graph.
    Query {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The hop-constrained s-t query.
        query: Query,
        /// Token bucket to charge (`None` = the anonymous tenant).
        tenant: Option<String>,
        /// Wall-clock budget in milliseconds, measured from parse time
        /// (`None` = unbounded).
        deadline_ms: Option<u64>,
    },
    /// Liveness probe; answered inline by the connection thread.
    Ping {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Counter snapshot (cache, singleflight, server); answered inline.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Streaming edge-delta batch: apply to the served graph, purge only
    /// the affected cache entries. Applied on the connection thread under
    /// the server's graph write lock.
    Update {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Edges to insert (present edges are no-ops).
        add: Vec<(u32, u32)>,
        /// Edges to delete (absent edges are no-ops).
        remove: Vec<(u32, u32)>,
    },
}

/// Why a request frame was rejected before reaching the engine. Carries the
/// request id when one could be recovered, so the error response still
/// correlates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// Recovered correlation id, if the frame got that far.
    pub id: Option<u64>,
    /// Human-readable reason, echoed to the client.
    pub message: String,
}

impl BadRequest {
    fn new(id: Option<u64>, message: impl Into<String>) -> Self {
        BadRequest {
            id,
            message: message.into(),
        }
    }
}

/// Extracts a required exact-`u64` field. [`Json::Float`] is how the parser
/// surfaces out-of-range integers, so overflow reports precisely.
fn u64_field(doc: &Json, id: Option<u64>, key: &str) -> Result<u64, BadRequest> {
    match doc.get(key) {
        Some(Json::Uint(v)) => Ok(*v),
        Some(Json::Int(_) | Json::Float(_)) => Err(BadRequest::new(
            id,
            format!("field '{key}' must be an integer in [0, 2^64)"),
        )),
        Some(_) => Err(BadRequest::new(
            id,
            format!("field '{key}' must be a number"),
        )),
        None => Err(BadRequest::new(id, format!("missing field '{key}'"))),
    }
}

/// Like [`u64_field`] but bounded to `u32` (vertex ids and hop bounds).
fn u32_field(doc: &Json, id: Option<u64>, key: &str) -> Result<u32, BadRequest> {
    let v = u64_field(doc, id, key)?;
    u32::try_from(v)
        .map_err(|_| BadRequest::new(id, format!("field '{key}' exceeds the u32 range")))
}

/// Optional edge-list field of an `update` request: an array of `[u, v]`
/// pairs (absent or `null` reads as empty).
fn edge_list_field(doc: &Json, id: u64, key: &str) -> Result<Vec<(u32, u32)>, BadRequest> {
    let items = match doc.get(key) {
        None | Some(Json::Null) => return Ok(Vec::new()),
        Some(Json::Array(items)) => items,
        Some(_) => {
            return Err(BadRequest::new(
                Some(id),
                format!("field '{key}' must be an array of [u, v] pairs"),
            ))
        }
    };
    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let pair = match item {
            Json::Array(pair) if pair.len() == 2 => pair,
            _ => {
                return Err(BadRequest::new(
                    Some(id),
                    format!("field '{key}' entries must be [u, v] pairs"),
                ))
            }
        };
        let mut ends = [0u32; 2];
        for (slot, value) in ends.iter_mut().zip(pair) {
            *slot = match value {
                Json::Uint(v) => u32::try_from(*v).map_err(|_| {
                    BadRequest::new(
                        Some(id),
                        format!("field '{key}' vertex exceeds the u32 range"),
                    )
                })?,
                _ => {
                    return Err(BadRequest::new(
                        Some(id),
                        format!("field '{key}' vertices must be integers in [0, 2^32)"),
                    ))
                }
            };
        }
        edges.push((ends[0], ends[1]));
    }
    Ok(edges)
}

/// Parses one request frame. Never panics on hostile input: every malformed
/// shape maps to a [`BadRequest`] the server answers and survives.
pub fn parse_request(payload: &[u8]) -> Result<Request, BadRequest> {
    let doc =
        json::parse(payload).map_err(|e| BadRequest::new(None, format!("malformed JSON: {e}")))?;
    if !matches!(doc, Json::Object(_)) {
        return Err(BadRequest::new(None, "request must be a JSON object"));
    }
    // Recover the id first so later errors still correlate.
    let id = match doc.get("id") {
        Some(Json::Uint(v)) => *v,
        Some(_) => {
            return Err(BadRequest::new(
                None,
                "field 'id' must be an integer in [0, 2^64)",
            ))
        }
        None => return Err(BadRequest::new(None, "missing field 'id'")),
    };
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| BadRequest::new(Some(id), "missing or non-string field 'op'"))?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "query" => {
            let s = u32_field(&doc, Some(id), "s")?;
            let t = u32_field(&doc, Some(id), "t")?;
            let k = u32_field(&doc, Some(id), "k")?;
            let tenant = match doc.get("tenant") {
                None | Some(Json::Null) => None,
                Some(Json::Str(name)) => Some(name.clone()),
                Some(_) => {
                    return Err(BadRequest::new(Some(id), "field 'tenant' must be a string"))
                }
            };
            let deadline_ms = match doc.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(_) => Some(u64_field(&doc, Some(id), "deadline_ms")?),
            };
            Ok(Request::Query {
                id,
                query: Query::new(s, t, k),
                tenant,
                deadline_ms,
            })
        }
        "update" => {
            let add = edge_list_field(&doc, id, "add")?;
            let remove = edge_list_field(&doc, id, "remove")?;
            if add.is_empty() && remove.is_empty() {
                return Err(BadRequest::new(
                    Some(id),
                    "update needs a non-empty 'add' or 'remove' edge list",
                ));
            }
            Ok(Request::Update { id, add, remove })
        }
        other => Err(BadRequest::new(
            Some(id),
            format!("unknown op '{other}' (expected query, update, ping or stats)"),
        )),
    }
}

/// The wire spelling of a [`CacheOutcome`].
pub fn source_str(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Coalesced => "coalesced",
    }
}

fn id_json(id: Option<u64>) -> Json {
    match id {
        Some(v) => Json::Uint(v),
        None => Json::Null,
    }
}

/// Builds the `status: ok` response for an answered query: the clamped `k`
/// the engine recorded plus the full edge list in deterministic order.
pub fn ok_response(id: u64, source: CacheOutcome, clamped_k: u32, edges: &[(u32, u32)]) -> String {
    let edge_json: Vec<Json> = edges
        .iter()
        .map(|&(u, v)| Json::Array(vec![Json::Uint(u as u64), Json::Uint(v as u64)]))
        .collect();
    json::to_string(&Json::Object(vec![
        ("id".into(), Json::Uint(id)),
        ("status".into(), Json::Str("ok".into())),
        ("source".into(), Json::Str(source_str(source).into())),
        ("k".into(), Json::Uint(clamped_k as u64)),
        ("edges".into(), Json::Array(edge_json)),
    ]))
}

/// Builds a `status: error` response (malformed frame, protocol violation,
/// …). Engine errors must go through [`query_error_response`] instead so
/// their wire strings stay bit-identical to the library's.
pub fn error_response(id: Option<u64>, message: &str) -> String {
    json::to_string(&Json::Object(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::Str("error".into())),
        ("error".into(), Json::Str(message.into())),
    ]))
}

/// Builds the `status: error` response for an engine [`QueryError`]. This
/// is the single path from an engine error to the wire: the `error` string
/// is exactly `err`'s canonical `Display` rendering — the same string a
/// local [`spg_core::Eve::query`] caller would format — so clients can
/// compare failures bit-for-bit too.
pub fn query_error_response(id: u64, err: &QueryError) -> String {
    error_response(Some(id), &err.to_string())
}

/// Builds the `status: expired` response for a request shed because its
/// deadline passed while it waited in the admission queue (it never reached
/// the engine; retrying with a larger `deadline_ms` may succeed).
pub fn expired_response(id: u64) -> String {
    json::to_string(&Json::Object(vec![
        ("id".into(), Json::Uint(id)),
        ("status".into(), Json::Str("expired".into())),
        (
            "error".into(),
            Json::Str("deadline expired before execution".into()),
        ),
    ]))
}

/// Builds a `status: overloaded` back-pressure response.
pub fn overloaded_response(id: u64, message: &str) -> String {
    json::to_string(&Json::Object(vec![
        ("id".into(), Json::Uint(id)),
        ("status".into(), Json::Str("overloaded".into())),
        ("error".into(), Json::Str(message.into())),
    ]))
}

/// Builds the `status: ok` response for an applied `update` batch:
/// `applied` counts the deltas that changed the graph (no-ops excluded),
/// `purged` the cache entries dropped by the scoped invalidation, `seq` the
/// graph's delta sequence number after the batch.
pub fn update_response(id: u64, applied: usize, purged: usize, seq: u64) -> String {
    json::to_string(&Json::Object(vec![
        ("id".into(), Json::Uint(id)),
        ("status".into(), Json::Str("ok".into())),
        ("applied".into(), Json::Uint(applied as u64)),
        ("purged".into(), Json::Uint(purged as u64)),
        ("seq".into(), Json::Uint(seq)),
    ]))
}

/// Builds the `ping` response.
pub fn pong_response(id: u64) -> String {
    json::to_string(&Json::Object(vec![
        ("id".into(), Json::Uint(id)),
        ("status".into(), Json::Str("ok".into())),
        ("pong".into(), Json::Bool(true)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"id\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), b"{\"id\":1}");
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn truncated_prefix_and_payload_are_io_errors_not_closed() {
        // Only 2 of 4 prefix bytes.
        let mut cursor = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Io(_))
        ));
        // Prefix declares 10 bytes, 3 arrive.
        let mut partial = 10u32.to_be_bytes().to_vec();
        partial.extend_from_slice(b"abc");
        let mut cursor = Cursor::new(partial);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn oversized_declaration_is_rejected_without_reading() {
        let mut framed = u32::MAX.to_be_bytes().to_vec();
        framed.extend_from_slice(b"x");
        let mut cursor = Cursor::new(framed);
        match read_frame(&mut cursor, 64) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_documented_requests() {
        let q = parse_request(br#"{"id": 1, "op": "query", "s": 0, "t": 5, "k": 4}"#).unwrap();
        assert_eq!(
            q,
            Request::Query {
                id: 1,
                query: Query::new(0, 5, 4),
                tenant: None,
                deadline_ms: None
            }
        );
        let q = parse_request(
            br#"{"id": 2, "op": "query", "s": 1, "t": 2, "k": 4294967295, "tenant": "team"}"#,
        )
        .unwrap();
        assert_eq!(
            q,
            Request::Query {
                id: 2,
                query: Query::new(1, 2, u32::MAX),
                tenant: Some("team".into()),
                deadline_ms: None
            }
        );
        let q = parse_request(
            br#"{"id": 5, "op": "query", "s": 0, "t": 5, "k": 4, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(
            q,
            Request::Query {
                id: 5,
                query: Query::new(0, 5, 4),
                tenant: None,
                deadline_ms: Some(250)
            }
        );
        assert_eq!(
            parse_request(br#"{"id": 3, "op": "ping"}"#).unwrap(),
            Request::Ping { id: 3 }
        );
        assert_eq!(
            parse_request(br#"{"id": 4, "op": "stats"}"#).unwrap(),
            Request::Stats { id: 4 }
        );
        assert_eq!(
            parse_request(br#"{"id": 6, "op": "update", "add": [[0, 7]], "remove": [[3, 5]]}"#)
                .unwrap(),
            Request::Update {
                id: 6,
                add: vec![(0, 7)],
                remove: vec![(3, 5)],
            }
        );
        assert_eq!(
            parse_request(br#"{"id": 7, "op": "update", "remove": [[1, 2], [2, 1]]}"#).unwrap(),
            Request::Update {
                id: 7,
                add: vec![],
                remove: vec![(1, 2), (2, 1)],
            }
        );
    }

    #[test]
    fn malformed_updates_error_cleanly() {
        for bad in [
            &br#"{"id": 1, "op": "update"}"#[..],
            br#"{"id": 1, "op": "update", "add": [], "remove": []}"#,
            br#"{"id": 1, "op": "update", "add": 7}"#,
            br#"{"id": 1, "op": "update", "add": [[0]]}"#,
            br#"{"id": 1, "op": "update", "add": [[0, 1, 2]]}"#,
            br#"{"id": 1, "op": "update", "add": [[0, "x"]]}"#,
            br#"{"id": 1, "op": "update", "add": [[0, 4294967296]]}"#,
            br#"{"id": 1, "op": "update", "add": [[0, -1]]}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.id, Some(1), "{:?}", bad);
        }
    }

    #[test]
    fn id_and_k_overflow_are_rejected_with_correlation() {
        // id beyond u64: unattributable.
        let err = parse_request(br#"{"id": 18446744073709551616, "op": "ping"}"#).unwrap_err();
        assert_eq!(err.id, None);
        assert!(err.message.contains("'id'"), "{}", err.message);
        // k beyond u32: attributable to id 9.
        let err = parse_request(br#"{"id": 9, "op": "query", "s": 0, "t": 1, "k": 4294967296}"#)
            .unwrap_err();
        assert_eq!(err.id, Some(9));
        assert!(err.message.contains("'k'"), "{}", err.message);
        // Negative and fractional ids.
        for bad in [
            &br#"{"id": -1, "op": "ping"}"#[..],
            br#"{"id": 1.5, "op": "ping"}"#,
            br#"{"id": "x", "op": "ping"}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().id, None);
        }
    }

    #[test]
    fn malformed_shapes_error_cleanly() {
        for bad in [
            &b"not json"[..],
            b"[]",
            b"{}",
            br#"{"id": 1}"#,
            br#"{"id": 1, "op": "evaporate"}"#,
            br#"{"id": 1, "op": "query"}"#,
            br#"{"id": 1, "op": "query", "s": "a", "t": 1, "k": 1}"#,
            br#"{"id": 1, "op": "query", "s": 0, "t": 1, "k": 1, "tenant": 7}"#,
            br#"{"id": 1, "op": "query", "s": 0, "t": 1, "k": 1, "deadline_ms": -5}"#,
            br#"{"id": 1, "op": "query", "s": 0, "t": 1, "k": 1, "deadline_ms": "soon"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{:?} must not parse", bad);
        }
    }

    #[test]
    fn responses_are_parseable_and_stable() {
        let ok = ok_response(7, CacheOutcome::Coalesced, 4, &[(0, 3), (3, 5)]);
        assert_eq!(
            ok,
            r#"{"id":7,"status":"ok","source":"coalesced","k":4,"edges":[[0,3],[3,5]]}"#
        );
        let doc = json::parse(ok.as_bytes()).unwrap();
        assert_eq!(doc.get("source").and_then(Json::as_str), Some("coalesced"));
        assert_eq!(
            error_response(None, "malformed"),
            r#"{"id":null,"status":"error","error":"malformed"}"#
        );
        assert_eq!(
            overloaded_response(1, "queue full"),
            r#"{"id":1,"status":"overloaded","error":"queue full"}"#
        );
        assert_eq!(pong_response(2), r#"{"id":2,"status":"ok","pong":true}"#);
        assert_eq!(source_str(CacheOutcome::Hit), "hit");
        assert_eq!(source_str(CacheOutcome::Miss), "miss");
        assert_eq!(
            expired_response(3),
            r#"{"id":3,"status":"expired","error":"deadline expired before execution"}"#
        );
        assert_eq!(
            update_response(6, 2, 1, 3),
            r#"{"id":6,"status":"ok","applied":2,"purged":1,"seq":3}"#
        );
    }

    /// The wire contract: `status: error` responses to engine failures carry
    /// the exact `QueryError` display string, for every variant, through the
    /// one canonical builder.
    #[test]
    fn engine_errors_format_through_the_canonical_display_path() {
        for (err, wire) in [
            (
                QueryError::SourceEqualsTarget(5),
                r#"{"id":1,"status":"error","error":"source and target must be distinct (both are 5)"}"#,
            ),
            (
                QueryError::ZeroHopConstraint,
                r#"{"id":1,"status":"error","error":"hop constraint k must be at least 1"}"#,
            ),
            (
                QueryError::DeadlineExceeded,
                r#"{"id":1,"status":"error","error":"query deadline exceeded"}"#,
            ),
            (
                QueryError::BudgetExceeded,
                r#"{"id":1,"status":"error","error":"query work budget exceeded"}"#,
            ),
            (
                QueryError::ExecutionPanicked,
                r#"{"id":1,"status":"error","error":"internal error: query execution panicked"}"#,
            ),
        ] {
            assert_eq!(query_error_response(1, &err), wire);
            // And it is literally the Display string, not a lookalike.
            assert_eq!(
                query_error_response(1, &err),
                error_response(Some(1), &err.to_string())
            );
        }
    }
}
