//! Minimal blocking client for the serving protocol.
//!
//! Used by the integration tests and the `serve_bench` harness; also a
//! reference implementation of the framing for anyone writing a real
//! client. One [`SpgClient`] is one TCP connection; it is deliberately
//! synchronous (send one frame, read one frame) because the tests and the
//! bench's closed-loop workers want exactly that. Out-of-order responses —
//! which the server may produce across *concurrent* requests — only matter
//! to clients that pipeline, and those should match on [`Reply::id`].
//!
//! [`SpgClient::query_retrying`] is the reference retry loop: `overloaded`
//! and `expired` are the server's *transient* refusals (back-pressure and a
//! deadline burned in the queue), so they are worth retrying with jittered
//! exponential backoff ([`RetryPolicy`]); `error` responses are
//! deterministic and are returned immediately.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};
use crate::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};

/// How [`SpgClient::query_retrying`] backs off between attempts.
///
/// Backoff for attempt `i` (0-based) is drawn uniformly from
/// `[0, min(max_backoff, base_backoff << i)]` — "full jitter", which
/// decorrelates a thundering herd of refused clients better than fixed
/// exponential steps. The jitter source is a deterministic xorshift stream
/// seeded from `jitter_seed ^ id`, so a given (policy, request) pair
/// replays identically; real deployments should vary `jitter_seed` per
/// client.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff cap before the first doubling.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before attempt `attempt + 1`.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let ceiling = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(xorshift(rng) % (nanos + 1))
    }
}

/// `xorshift64` — deterministic, dependency-free jitter. Not for crypto.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One response, decoded from the wire into plain fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoed request id (`None` when the server could not attribute the
    /// frame, e.g. a malformed or oversized request).
    pub id: Option<u64>,
    /// `"ok"`, `"error"`, `"overloaded"` or `"expired"`.
    pub status: String,
    /// For `ok` query replies: `"hit"`, `"miss"` or `"coalesced"`.
    pub source: Option<String>,
    /// For `ok` query replies: the clamped hop bound the engine recorded.
    pub k: Option<u32>,
    /// For `ok` query replies: the answer's edge list in engine order.
    pub edges: Option<Vec<(u32, u32)>>,
    /// For `error` / `overloaded`: the server's message.
    pub error: Option<String>,
    /// The full parsed document (stats payloads and forward compatibility).
    pub raw: Json,
}

impl Reply {
    fn from_json(raw: Json) -> io::Result<Reply> {
        let status = raw
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_reply("response has no status"))?
            .to_string();
        let edges = match raw.get("edges") {
            None => None,
            Some(Json::Array(items)) => {
                let mut list = Vec::with_capacity(items.len());
                for item in items {
                    let pair = item
                        .as_array()
                        .ok_or_else(|| bad_reply("edge not a pair"))?;
                    match pair {
                        [u, v] => {
                            let u = u.as_u64().ok_or_else(|| bad_reply("edge endpoint"))?;
                            let v = v.as_u64().ok_or_else(|| bad_reply("edge endpoint"))?;
                            list.push((
                                u32::try_from(u).map_err(|_| bad_reply("edge endpoint range"))?,
                                u32::try_from(v).map_err(|_| bad_reply("edge endpoint range"))?,
                            ));
                        }
                        _ => return Err(bad_reply("edge not a pair")),
                    }
                }
                Some(list)
            }
            Some(_) => return Err(bad_reply("edges not an array")),
        };
        Ok(Reply {
            id: raw.get("id").and_then(Json::as_u64),
            status,
            source: raw.get("source").and_then(Json::as_str).map(str::to_string),
            k: raw
                .get("k")
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok()),
            edges,
            error: raw.get("error").and_then(Json::as_str).map(str::to_string),
            raw,
        })
    }
}

fn bad_reply(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {message}"))
}

/// One blocking protocol connection (see the module docs).
#[derive(Debug)]
pub struct SpgClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl SpgClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<SpgClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SpgClient {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Caps how large a *response* frame this client will accept.
    pub fn max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Sets a read timeout for [`SpgClient::recv`] (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one raw payload as a frame (tests use this to send hostile
    /// bytes; well-formed callers use the typed helpers).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Writes raw bytes *without* framing — for tests that truncate a frame
    /// or corrupt a length prefix on purpose.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)
    }

    /// Reads one response frame and decodes it.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let payload = read_frame(&mut self.stream, self.max_frame_bytes).map_err(|e| match e {
            FrameError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        let doc = json::parse(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Reply::from_json(doc)
    }

    /// Sends a query request (no tenant, no deadline).
    pub fn send_query(&mut self, id: u64, s: u32, t: u32, k: u32) -> io::Result<()> {
        self.send_query_with(id, s, t, k, None, None)
    }

    /// Sends a query request charged to `tenant`.
    pub fn send_query_for(
        &mut self,
        id: u64,
        s: u32,
        t: u32,
        k: u32,
        tenant: Option<&str>,
    ) -> io::Result<()> {
        self.send_query_with(id, s, t, k, tenant, None)
    }

    /// Sends a query request with every optional field spelled out.
    pub fn send_query_with(
        &mut self,
        id: u64,
        s: u32,
        t: u32,
        k: u32,
        tenant: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> io::Result<()> {
        let mut fields = vec![
            ("id".to_string(), Json::Uint(id)),
            ("op".to_string(), Json::Str("query".into())),
            ("s".to_string(), Json::Uint(s as u64)),
            ("t".to_string(), Json::Uint(t as u64)),
            ("k".to_string(), Json::Uint(k as u64)),
        ];
        if let Some(name) = tenant {
            fields.push(("tenant".to_string(), Json::Str(name.into())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::Uint(ms)));
        }
        let payload = json::to_string(&Json::Object(fields));
        self.send_raw(payload.as_bytes())
    }

    /// Round trip: send a query, read one reply.
    pub fn query(&mut self, id: u64, s: u32, t: u32, k: u32) -> io::Result<Reply> {
        self.send_query(id, s, t, k)?;
        self.recv()
    }

    /// Round trip with a per-request deadline: the server sheds the query
    /// with `status: expired` if the deadline burns away in its queue, and
    /// cancels it with the `query deadline exceeded` error mid-execution.
    pub fn query_with_deadline(
        &mut self,
        id: u64,
        s: u32,
        t: u32,
        k: u32,
        deadline_ms: u64,
    ) -> io::Result<Reply> {
        self.send_query_with(id, s, t, k, None, Some(deadline_ms))?;
        self.recv()
    }

    /// The reference retry loop: round trips the query up to
    /// `policy.max_attempts` times, sleeping a jittered exponential backoff
    /// after each *transient* refusal (`overloaded`, `expired`). Any other
    /// status — `ok`, or a deterministic `error` that a retry cannot fix —
    /// returns immediately; so does the last attempt's refusal, which the
    /// caller sees unchanged.
    pub fn query_retrying(
        &mut self,
        id: u64,
        s: u32,
        t: u32,
        k: u32,
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> io::Result<Reply> {
        let mut rng = policy.jitter_seed ^ id;
        if rng == 0 {
            rng = 0x9E37_79B9_7F4A_7C15; // xorshift must not start at zero
        }
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            self.send_query_with(id, s, t, k, None, deadline_ms)?;
            let reply = self.recv()?;
            let transient = reply.status == "overloaded" || reply.status == "expired";
            if !transient || attempt + 1 == attempts {
                return Ok(reply);
            }
            std::thread::sleep(policy.backoff(attempt, &mut rng));
        }
        unreachable!("the loop always returns on its last attempt");
    }

    /// Round trip: apply one edge-delta batch (`op: "update"`). Either list
    /// may be empty, but the server rejects a batch where both are. The
    /// reply's `raw` object carries `applied` (deltas that changed the
    /// graph), `purged` (cache entries scoped out) and `seq` (delta batches
    /// applied to the current snapshot).
    pub fn update(
        &mut self,
        id: u64,
        add: &[(u32, u32)],
        remove: &[(u32, u32)],
    ) -> io::Result<Reply> {
        fn edges(list: &[(u32, u32)]) -> Json {
            Json::Array(
                list.iter()
                    .map(|&(s, t)| Json::Array(vec![Json::Uint(s as u64), Json::Uint(t as u64)]))
                    .collect(),
            )
        }
        let payload = json::to_string(&Json::Object(vec![
            ("id".into(), Json::Uint(id)),
            ("op".into(), Json::Str("update".into())),
            ("add".into(), edges(add)),
            ("remove".into(), edges(remove)),
        ]));
        self.send_raw(payload.as_bytes())?;
        self.recv()
    }

    /// Round trip: liveness probe.
    pub fn ping(&mut self, id: u64) -> io::Result<Reply> {
        let payload = json::to_string(&Json::Object(vec![
            ("id".into(), Json::Uint(id)),
            ("op".into(), Json::Str("ping".into())),
        ]));
        self.send_raw(payload.as_bytes())?;
        self.recv()
    }

    /// Round trip: counter snapshot (see [`crate::server`] for the shape).
    pub fn stats(&mut self, id: u64) -> io::Result<Reply> {
        let payload = json::to_string(&Json::Object(vec![
            ("id".into(), Json::Uint(id)),
            ("op".into(), Json::Str("stats".into())),
        ]));
        self.send_raw(payload.as_bytes())?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        let (mut a, mut b) = (42u64, 42u64);
        let mut saw_nonzero = false;
        for attempt in 0..12 {
            let x = policy.backoff(attempt, &mut a);
            let y = policy.backoff(attempt, &mut b);
            assert_eq!(x, y, "same seed replays the same jitter stream");
            let ceiling = policy
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(policy.max_backoff);
            assert!(x <= ceiling, "attempt {attempt}: {x:?} above {ceiling:?}");
            assert!(x <= policy.max_backoff, "never sleeps past the cap");
            saw_nonzero |= x > Duration::ZERO;
        }
        assert!(saw_nonzero, "jitter in [0, cap] should not be all zeros");
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let policy = RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let mut rng = 7u64;
        for attempt in 0..4 {
            assert_eq!(policy.backoff(attempt, &mut rng), Duration::ZERO);
        }
    }
}
