//! Minimal blocking client for the serving protocol.
//!
//! Used by the integration tests and the `serve_bench` harness; also a
//! reference implementation of the framing for anyone writing a real
//! client. One [`SpgClient`] is one TCP connection; it is deliberately
//! synchronous (send one frame, read one frame) because the tests and the
//! bench's closed-loop workers want exactly that. Out-of-order responses —
//! which the server may produce across *concurrent* requests — only matter
//! to clients that pipeline, and those should match on [`Reply::id`].

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};
use crate::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};

/// One response, decoded from the wire into plain fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoed request id (`None` when the server could not attribute the
    /// frame, e.g. a malformed or oversized request).
    pub id: Option<u64>,
    /// `"ok"`, `"error"` or `"overloaded"`.
    pub status: String,
    /// For `ok` query replies: `"hit"`, `"miss"` or `"coalesced"`.
    pub source: Option<String>,
    /// For `ok` query replies: the clamped hop bound the engine recorded.
    pub k: Option<u32>,
    /// For `ok` query replies: the answer's edge list in engine order.
    pub edges: Option<Vec<(u32, u32)>>,
    /// For `error` / `overloaded`: the server's message.
    pub error: Option<String>,
    /// The full parsed document (stats payloads and forward compatibility).
    pub raw: Json,
}

impl Reply {
    fn from_json(raw: Json) -> io::Result<Reply> {
        let status = raw
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_reply("response has no status"))?
            .to_string();
        let edges = match raw.get("edges") {
            None => None,
            Some(Json::Array(items)) => {
                let mut list = Vec::with_capacity(items.len());
                for item in items {
                    let pair = item
                        .as_array()
                        .ok_or_else(|| bad_reply("edge not a pair"))?;
                    match pair {
                        [u, v] => {
                            let u = u.as_u64().ok_or_else(|| bad_reply("edge endpoint"))?;
                            let v = v.as_u64().ok_or_else(|| bad_reply("edge endpoint"))?;
                            list.push((
                                u32::try_from(u).map_err(|_| bad_reply("edge endpoint range"))?,
                                u32::try_from(v).map_err(|_| bad_reply("edge endpoint range"))?,
                            ));
                        }
                        _ => return Err(bad_reply("edge not a pair")),
                    }
                }
                Some(list)
            }
            Some(_) => return Err(bad_reply("edges not an array")),
        };
        Ok(Reply {
            id: raw.get("id").and_then(Json::as_u64),
            status,
            source: raw.get("source").and_then(Json::as_str).map(str::to_string),
            k: raw
                .get("k")
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok()),
            edges,
            error: raw.get("error").and_then(Json::as_str).map(str::to_string),
            raw,
        })
    }
}

fn bad_reply(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {message}"))
}

/// One blocking protocol connection (see the module docs).
#[derive(Debug)]
pub struct SpgClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl SpgClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<SpgClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SpgClient {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Caps how large a *response* frame this client will accept.
    pub fn max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Sets a read timeout for [`SpgClient::recv`] (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one raw payload as a frame (tests use this to send hostile
    /// bytes; well-formed callers use the typed helpers).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Writes raw bytes *without* framing — for tests that truncate a frame
    /// or corrupt a length prefix on purpose.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)
    }

    /// Reads one response frame and decodes it.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let payload = read_frame(&mut self.stream, self.max_frame_bytes).map_err(|e| match e {
            FrameError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        let doc = json::parse(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Reply::from_json(doc)
    }

    /// Sends a query request (no tenant).
    pub fn send_query(&mut self, id: u64, s: u32, t: u32, k: u32) -> io::Result<()> {
        self.send_query_for(id, s, t, k, None)
    }

    /// Sends a query request charged to `tenant`.
    pub fn send_query_for(
        &mut self,
        id: u64,
        s: u32,
        t: u32,
        k: u32,
        tenant: Option<&str>,
    ) -> io::Result<()> {
        let mut fields = vec![
            ("id".to_string(), Json::Uint(id)),
            ("op".to_string(), Json::Str("query".into())),
            ("s".to_string(), Json::Uint(s as u64)),
            ("t".to_string(), Json::Uint(t as u64)),
            ("k".to_string(), Json::Uint(k as u64)),
        ];
        if let Some(name) = tenant {
            fields.push(("tenant".to_string(), Json::Str(name.into())));
        }
        let payload = json::to_string(&Json::Object(fields));
        self.send_raw(payload.as_bytes())
    }

    /// Round trip: send a query, read one reply.
    pub fn query(&mut self, id: u64, s: u32, t: u32, k: u32) -> io::Result<Reply> {
        self.send_query(id, s, t, k)?;
        self.recv()
    }

    /// Round trip: liveness probe.
    pub fn ping(&mut self, id: u64) -> io::Result<Reply> {
        let payload = json::to_string(&Json::Object(vec![
            ("id".into(), Json::Uint(id)),
            ("op".into(), Json::Str("ping".into())),
        ]));
        self.send_raw(payload.as_bytes())?;
        self.recv()
    }

    /// Round trip: counter snapshot (see [`crate::server`] for the shape).
    pub fn stats(&mut self, id: u64) -> io::Result<Reply> {
        let payload = json::to_string(&Json::Object(vec![
            ("id".into(), Json::Uint(id)),
            ("op".into(), Json::Str("stats".into())),
        ]));
        self.send_raw(payload.as_bytes())?;
        self.recv()
    }
}
