//! # spg-server — online serving engine for hop-constrained s-t SPG queries
//!
//! The paper's flagship workload is interactive (fraud-ring investigation:
//! an analyst asks for `SPG_k(s, t)` and drills in), and the batch-query
//! literature shows admission-time grouping is where batched sharing wins
//! are made or lost. This crate turns the `spg-core` library into a
//! long-running process that serves continuous traffic:
//!
//! * **[`protocol`]** — length-prefixed JSON frames over TCP (std-only,
//!   thread-per-connection; no async runtime). Responses carry the answer's
//!   full edge list and exact [`spg_core::QueryError`] strings, so clients
//!   can hold the server to bit-identity with [`spg_core::Eve::query`].
//! * **[`admission`]** — per-tenant token buckets and a bounded queue
//!   drained in deadline-bounded micro-batches. Overload produces explicit
//!   `overloaded` responses, never an unbounded queue.
//! * **[`server`]** — the engine: each micro-batch runs through
//!   [`spg_core::BatchExecutor::run_cached_coalesced`], which probes the
//!   shared [`spg_core::SpgCache`], collapses duplicate misses onto
//!   singleflight latches ([`spg_core::FlightGroup`], shared across
//!   batches), and computes the distinct misses as one cohort-planned
//!   parallel run — so shared-endpoint misses get the bit-parallel shared
//!   Phase 1.
//! * **[`client`]** — a small blocking client (tests, benchmarks,
//!   reference framing implementation).
//! * **[`json`]** — the vendored-deps-free JSON layer under all of it.
//!
//! The `spg-server` binary (`src/main.rs`) wraps [`server::SpgServer`] with
//! a CLI: pick a graph (generated or loaded), bind a port, print
//! `LISTENING <addr>` on stdout, serve until killed. `spg-bench`'s
//! `serve_bench` drives that binary over real sockets and writes the
//! `serving` section of `BENCH_6.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use admission::{BatchQueue, RateLimiter};
pub use client::{Reply, RetryPolicy, SpgClient};
pub use protocol::{BadRequest, FrameError, Request};
pub use server::{ServeError, ServerConfig, ServerHandle, SpgServer, MAX_BATCHER_RESTARTS};
