//! The serving engine: acceptor, connection handlers, and the micro-batch
//! drain loop.
//!
//! ## Thread model (std-only, no async runtime)
//!
//! * **Acceptor** — [`SpgServer::run`] polls a non-blocking listener,
//!   spawning one handler thread per connection.
//! * **Connection handlers** — each reads length-prefixed frames
//!   ([`crate::protocol`]), answers `ping`/`stats` and protocol errors
//!   inline, and pushes admitted queries into the shared
//!   [`BatchQueue`]. Responses are written by whichever thread finishes the
//!   work, serialised per connection by a write lock, so one slow query
//!   never blocks the wire for its neighbours and responses may arrive out
//!   of request order (clients correlate by `id`).
//! * **Batcher** — a single thread drains the queue in deadline-bounded
//!   micro-batches and runs each through
//!   [`BatchExecutor::run_cached_coalesced`]: probe the shared
//!   [`SpgCache`], collapse duplicate misses onto singleflight latches
//!   ([`spg_core::FlightGroup`] — shared across batches, so a key already
//!   computing in the previous drain is joined, not recomputed), and compute
//!   the distinct misses as one cohort-planned parallel run.
//!
//! ## Streaming updates
//!
//! The served graph is mutable: an `update` request applies an edge-delta
//! batch on its **connection thread** under the graph's write lock
//! ([`spg_core::apply_delta_scoped`]), while the batcher binds each drain
//! to the current snapshot under the read lock — so a drain always sees a
//! consistent graph and an update waits at most one micro-batch. Deltas
//! keep the graph version (queries see the base CSR plus an overlay merged
//! at traversal time) and purge only the cache entries the batch could have
//! affected; unaffected hot keys keep serving hits. The `stats` op reports
//! `deltas_applied`, `entries_purged_scoped` and `overlay_compactions`.
//!
//! ## Back-pressure
//!
//! Nothing in the engine queues unboundedly. A query is refused with an
//! explicit `overloaded` response when its tenant's token bucket is dry or
//! the batch queue is full; the connection stays usable either way.
//!
//! ## Deadlines
//!
//! A query request may carry `deadline_ms`; the deadline clock starts when
//! the frame is parsed. A request whose deadline has already passed when
//! the batcher claims its batch is *shed* — answered with an explicit
//! `expired` response and never executed (counted as `shed_expired` in
//! `stats`). Live deadlines ride into the engine as per-slot
//! [`spg_core::QueryError::DeadlineExceeded`] budgets.
//!
//! ## Crash containment
//!
//! Containment is layered. The executor isolates a panicking query to its
//! own slot (`internal error: query execution panicked`, counted as
//! `panics_isolated`). The batcher wraps each drain in `catch_unwind`: a
//! panicking batch answers `internal error` to its own requests and the
//! server keeps serving. Flight tokens abandon or broadcast failure on
//! unwind (their `Drop` wakes joiners to recompute), so a crashed drain can
//! never wedge another batch. Finally, [`SpgServer::run`] supervises the
//! batcher thread itself: if it ever dies, the supervisor respawns it a
//! bounded number of times and then fails fast with [`ServeError`] — a dead
//! engine that silently keeps accepting connections is exactly the bug this
//! guards against.

use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::thread;
use std::time::{Duration, Instant};

use spg_core::{
    apply_delta_scoped, BatchExecutor, CachedEve, FlightGroup, LaneWidth, Query, QueryError,
    SpgCache,
};
use spg_graph::{DiGraph, EdgeDelta, VersionedGraph};

use crate::admission::{BatchQueue, RateLimiter};
use crate::json::{self, Json};
use crate::protocol::{
    self, error_response, expired_response, ok_response, overloaded_response, pong_response,
    query_error_response, update_response, FrameError, Request,
};

/// Tuning knobs of one [`SpgServer`] (see the crate docs for the protocol
/// and [`crate::admission`] for the admission semantics).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest micro-batch one drain executes.
    pub batch_max: usize,
    /// Longest a request waits for its batch to fill. Zero dispatches
    /// immediately; under a backlog the deadline is never paid.
    pub batch_deadline: Duration,
    /// Bound on queries admitted but not yet drained; pushes beyond it are
    /// refused with `overloaded`.
    pub queue_capacity: usize,
    /// Cap on request/response frame payloads.
    pub max_frame_bytes: usize,
    /// Per-tenant admission rate (requests/second); ≤ 0 disables limiting.
    pub rate_per_sec: f64,
    /// Per-tenant burst capacity (tokens).
    pub burst: f64,
    /// Worker threads per batch drain (0 = available parallelism).
    pub threads: usize,
    /// Byte budget of the shared result cache.
    pub cache_bytes: usize,
    /// Cohort-shared MS-BFS Phase 1 for missed queries (the library
    /// default; disable only to measure the per-query baseline).
    pub shared_phase1: bool,
    /// Widest MS-BFS lane block a shared-Phase-1 cohort may fill
    /// (64/128/256 pairs per traversal; narrower widths are for
    /// apples-to-apples benchmarking, not production).
    pub phase1_lanes: LaneWidth,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_max: 64,
            batch_deadline: Duration::from_micros(200),
            queue_capacity: 1024,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            rate_per_sec: 0.0,
            burst: 64.0,
            threads: 0,
            cache_bytes: 64 << 20,
            shared_phase1: true,
            phase1_lanes: LaneWidth::default(),
        }
    }
}

/// Monotone serving counters, exposed over the wire by the `stats` op.
#[derive(Debug, Default)]
struct ServerCounters {
    /// Frames received that parsed into some request.
    requests: AtomicU64,
    /// Query responses with `status: ok`.
    answered: AtomicU64,
    /// Query responses with `status: error` from [`spg_core::QueryError`].
    query_errors: AtomicU64,
    /// Frames refused before reaching the engine (malformed, oversized).
    protocol_errors: AtomicU64,
    /// Queries refused with `status: overloaded`.
    overloaded: AtomicU64,
    /// Micro-batches drained.
    batches: AtomicU64,
    /// Largest micro-batch drained.
    max_batch: AtomicU64,
    /// Queries shed with `status: expired` (deadline burned in the queue).
    shed_expired: AtomicU64,
    /// Query errors that were deadline expiries inside the engine.
    deadline_exceeded: AtomicU64,
    /// Query panics the executor contained to their own slot.
    panics_isolated: AtomicU64,
    /// Times the supervisor respawned a dead batcher thread.
    batcher_restarts: AtomicU64,
    /// Edge deltas that changed the graph (no-ops excluded), across all
    /// `update` batches.
    deltas_applied: AtomicU64,
    /// Cache entries dropped by scoped (delta-driven) invalidation.
    entries_purged_scoped: AtomicU64,
    /// `update` batches rejected with a delta validation error.
    update_errors: AtomicU64,
}

/// One admitted query waiting for its micro-batch.
struct PendingQuery {
    id: u64,
    query: Query,
    /// Absolute wall-clock deadline, from the request's `deadline_ms`
    /// (measured from parse time; `None` = unlimited).
    deadline: Option<Instant>,
    conn: Arc<Connection>,
}

/// Write half of one client connection. Reads happen in the connection's
/// own thread through `&TcpStream`; writes come from any thread and are
/// serialised by the lock so frames are never interleaved.
struct Connection {
    stream: TcpStream,
    write_lock: Mutex<()>,
}

impl Connection {
    /// Writes one response frame; errors are deliberately swallowed (the
    /// peer may have hung up while its query computed, which is its right).
    fn send(&self, payload: &str) {
        let _guard = self.write_lock.lock().expect("connection writer"); // lock: server.conn_write
        let mut stream = &self.stream;
        let _ = protocol::write_frame(&mut stream, payload.as_bytes());
    }

    /// Unblocks the reader thread (used at shutdown).
    fn hang_up(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Everything the server's threads share.
struct ServerState {
    /// The served graph. Connection threads take the write lock to apply
    /// `update` batches; the batcher takes the read lock per drain.
    graph: RwLock<VersionedGraph>,
    cache: SpgCache,
    flights: FlightGroup,
    queue: BatchQueue<PendingQuery>,
    limiter: RateLimiter,
    config: ServerConfig,
    counters: ServerCounters,
    shutdown: AtomicBool,
    /// Live connections, so shutdown can unblock their readers.
    connections: Mutex<Vec<Weak<Connection>>>,
    /// Chaos hook flag (see [`ServerHandle::chaos_kill_batcher`]).
    #[cfg(feature = "failpoints")]
    chaos_kill_batcher: AtomicBool,
}

/// Remote control for a running [`SpgServer`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Asks the server to stop: the acceptor exits, connection readers are
    /// unblocked, the batcher drains what was admitted and exits.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        let connections = self.state.connections.lock().expect("connection registry"); // lock: server.connections
        for conn in connections.iter().filter_map(Weak::upgrade) {
            conn.hang_up();
        }
    }

    /// Chaos hook (failpoints builds only): makes the batcher thread panic
    /// just before it claims its next batch, exercising the supervisor's
    /// respawn path without losing any admitted query. The batcher only
    /// observes the flag when it wakes, so pair this with a query.
    #[cfg(feature = "failpoints")]
    pub fn chaos_kill_batcher(&self) {
        self.state.chaos_kill_batcher.store(true, Ordering::SeqCst);
    }
}

/// Why [`SpgServer::run`] stopped serving instead of shutting down cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The batcher thread died more times than the supervisor tolerates;
    /// the server refused to keep accepting connections it could never
    /// answer and stopped instead.
    BatcherFailed {
        /// How many times the batcher was observed dead in total.
        deaths: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BatcherFailed { deaths } => {
                write!(f, "batcher thread died {deaths} times; giving up")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A bound serving engine: call [`SpgServer::run`] to serve until
/// [`ServerHandle::shutdown`].
pub struct SpgServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
}

impl SpgServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// prepares to serve `graph` under `config`.
    pub fn bind<A: ToSocketAddrs>(
        graph: DiGraph,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<SpgServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            graph: RwLock::new(VersionedGraph::new(graph)),
            cache: SpgCache::new(config.cache_bytes),
            flights: FlightGroup::new(),
            queue: BatchQueue::new(
                config.queue_capacity,
                config.batch_max,
                config.batch_deadline,
            ),
            limiter: RateLimiter::new(config.rate_per_sec, config.burst),
            config,
            counters: ServerCounters::default(),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
            #[cfg(feature = "failpoints")]
            chaos_kill_batcher: AtomicBool::new(false),
        });
        Ok(SpgServer {
            listener,
            local_addr,
            state,
        })
    }

    /// The bound address (the resolved port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until [`ServerHandle::shutdown`]: spawns the batcher, then
    /// accepts connections, one handler thread each. Returns after the
    /// batcher has drained the admitted backlog.
    ///
    /// The acceptor doubles as the batcher's supervisor. A server whose
    /// batcher has died would keep accepting connections it can never
    /// answer — every admitted query would wait forever. If the batcher
    /// thread is ever observed dead outside shutdown, it is respawned (up
    /// to [`MAX_BATCHER_RESTARTS`] times); past that the server stops and
    /// returns [`ServeError::BatcherFailed`] so the process can exit
    /// nonzero instead of serving a black hole.
    pub fn run(self) -> Result<(), ServeError> {
        let mut batcher = Some(spawn_batcher(&self.state));
        let mut deaths = 0u32;
        let mut fatal = None;

        while !self.state.shutdown.load(Ordering::SeqCst) {
            if batcher.as_ref().is_some_and(|h| h.is_finished()) {
                let panicked = batcher.take().expect("checked present").join().is_err(); // spg-analyze: allow(no-panic) — presence checked on the line above
                if self.state.shutdown.load(Ordering::SeqCst) {
                    break; // Clean exit: the queue closed under shutdown.
                }
                deaths += 1;
                let cause = if panicked { "panicked" } else { "exited early" };
                if deaths > MAX_BATCHER_RESTARTS {
                    eprintln!("spg-server: batcher thread {cause} ({deaths} deaths); failing fast");
                    fatal = Some(ServeError::BatcherFailed { deaths });
                    break;
                }
                eprintln!(
                    "spg-server: batcher thread {cause}; \
                     respawning ({deaths}/{MAX_BATCHER_RESTARTS})"
                );
                self.state
                    .counters
                    .batcher_restarts
                    .fetch_add(1, Ordering::Relaxed);
                batcher = Some(spawn_batcher(&self.state));
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let _ = thread::Builder::new()
                        .name("spg-conn".into())
                        .spawn(move || connection_loop(&state, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
        if fatal.is_some() {
            // Stop admitting, unblock connection readers, drain the queue.
            self.handle().shutdown();
        }
        // `shutdown()` already closed the queue; wait for the drain to end.
        self.state.queue.close();
        if let Some(handle) = batcher {
            let _ = handle.join();
        }
        match fatal {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

/// Batcher deaths tolerated (respawned) before [`SpgServer::run`] fails
/// fast with [`ServeError::BatcherFailed`].
pub const MAX_BATCHER_RESTARTS: u32 = 3;

fn spawn_batcher(state: &Arc<ServerState>) -> thread::JoinHandle<()> {
    let state = Arc::clone(state);
    thread::Builder::new()
        .name("spg-batcher".into())
        .spawn(move || batcher_loop(&state))
        .expect("spawn batcher thread") // spg-analyze: allow(no-panic) — thread spawn failure at startup is fatal by design
}

/// One connection's read loop: frame in, request out (see the module docs
/// for which thread answers what).
fn connection_loop(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Connection {
        stream,
        write_lock: Mutex::new(()),
    });
    state
        .connections
        .lock() // lock: server.connections
        .expect("connection registry")
        .push(Arc::downgrade(&conn));

    let mut reader = read_half;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match protocol::read_frame(&mut reader, state.config.max_frame_bytes) {
            Ok(payload) => handle_frame(state, &conn, &payload),
            Err(FrameError::Closed) => break,
            Err(FrameError::Oversized { declared, max }) => {
                // The stream is no longer frame-aligned; answer, then close.
                state
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                conn.send(&error_response(
                    None,
                    &format!(
                        "oversized request: frame of {declared} bytes exceeds the {max}-byte cap"
                    ),
                ));
                conn.hang_up();
                break;
            }
            // Mid-frame disconnects and any other read failure end the
            // connection quietly; in-flight queries for it complete and
            // their writes are swallowed.
            Err(FrameError::Io(_)) => break,
        }
    }
}

/// Parses and dispatches one request frame.
fn handle_frame(state: &Arc<ServerState>, conn: &Arc<Connection>, payload: &[u8]) {
    let request = match protocol::parse_request(payload) {
        Ok(request) => request,
        Err(bad) => {
            state
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            conn.send(&error_response(bad.id, &bad.message));
            return;
        }
    };
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    match request {
        Request::Ping { id } => conn.send(&pong_response(id)),
        Request::Stats { id } => conn.send(&stats_response(state, id)),
        Request::Query {
            id,
            query,
            tenant,
            deadline_ms,
        } => {
            let tenant_name = tenant.as_deref().unwrap_or("");
            if !state.limiter.admit(tenant_name) {
                state.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                conn.send(&overloaded_response(
                    id,
                    &format!("rate limit exceeded for tenant '{tenant_name}'"),
                ));
                return;
            }
            // The deadline clock starts now, at parse time; a `deadline_ms`
            // too large for the clock saturates to unlimited.
            let deadline =
                deadline_ms.and_then(|ms| Instant::now().checked_add(Duration::from_millis(ms)));
            let pending = PendingQuery {
                id,
                query,
                deadline,
                conn: Arc::clone(conn),
            };
            if let Err(refused) = state.queue.push(pending) {
                state.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                refused
                    .conn
                    .send(&overloaded_response(refused.id, "admission queue is full"));
            }
        }
        Request::Update { id, add, remove } => {
            let deltas: Vec<EdgeDelta> = add
                .iter()
                .map(|&(u, v)| EdgeDelta::add(u, v))
                .chain(remove.iter().map(|&(u, v)| EdgeDelta::remove(u, v)))
                .collect();
            // Applied here, on the connection thread, while holding the
            // graph writer side: the batcher's per-drain read lock
            // serialises the mutation against in-flight batches, and the
            // scoped purge happens before any query can observe the
            // mutated graph.
            let mut graph = state.graph.write().expect("server graph"); // lock: server.graph
            match apply_delta_scoped(&mut graph, &state.cache, &deltas) {
                Ok(update) => {
                    drop(graph);
                    state
                        .counters
                        .deltas_applied
                        .fetch_add(update.delta.applied as u64, Ordering::Relaxed);
                    state
                        .counters
                        .entries_purged_scoped
                        .fetch_add(update.purged as u64, Ordering::Relaxed);
                    conn.send(&update_response(
                        id,
                        update.delta.applied,
                        update.purged,
                        update.delta.seq,
                    ));
                }
                Err(err) => {
                    drop(graph);
                    state.counters.update_errors.fetch_add(1, Ordering::Relaxed);
                    conn.send(&error_response(Some(id), &err.to_string()));
                }
            }
        }
    }
}

/// The single batcher thread: drain micro-batches until shutdown.
fn batcher_loop(state: &Arc<ServerState>) {
    let executor = if state.config.threads == 0 {
        BatchExecutor::with_available_parallelism()
    } else {
        BatchExecutor::new(state.config.threads)
    }
    .shared_phase1(state.config.shared_phase1)
    .phase1_lanes(state.config.phase1_lanes);

    loop {
        // Chaos hook: die here, *between* batches, so the supervisor's
        // respawn path is exercised without losing any admitted query.
        #[cfg(feature = "failpoints")]
        if state.chaos_kill_batcher.swap(false, Ordering::SeqCst) {
            panic!("chaos: batcher killed by test hook");
        }
        let Some(batch) = state.queue.next_batch() else {
            break;
        };
        state.counters.batches.fetch_add(1, Ordering::Relaxed);
        state
            .counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);

        // Shed requests whose deadline burned away while they queued: an
        // explicit `expired` response now beats a `deadline exceeded` error
        // after paying for a doomed execution.
        let now = Instant::now();
        let mut live: Vec<&PendingQuery> = Vec::with_capacity(batch.len());
        for pending in &batch {
            match pending.deadline {
                Some(deadline) if deadline <= now => {
                    state.counters.shed_expired.fetch_add(1, Ordering::Relaxed);
                    pending.conn.send(&expired_response(pending.id));
                }
                _ => live.push(pending),
            }
        }
        if live.is_empty() {
            continue;
        }

        let queries: Vec<Query> = live.iter().map(|p| p.query).collect();
        let deadlines: Vec<Option<Instant>> = live.iter().map(|p| p.deadline).collect();
        // Bind to the *current* snapshot per drain — `update` requests may
        // have mutated the graph since the last batch. Holding the read
        // lock across the drain keeps the batch consistent: an update waits
        // for the write lock until this drain's responses are computed.
        let graph = state.graph.read().expect("server graph"); // lock: server.graph
        let cached = CachedEve::with_defaults(&graph, &state.cache);
        let drained = catch_unwind(AssertUnwindSafe(|| {
            executor.run_cached_coalesced_with_deadlines(
                &cached,
                &state.flights,
                &queries,
                &deadlines,
            )
        }));
        match drained {
            Ok(outcome) => {
                state
                    .counters
                    .panics_isolated
                    .fetch_add(outcome.stats.panics_isolated as u64, Ordering::Relaxed);
                for (i, pending) in live.iter().enumerate() {
                    match &outcome.results[i] {
                        Ok(spg) => {
                            state.counters.answered.fetch_add(1, Ordering::Relaxed);
                            let source = outcome.slot_sources[i]
                                .expect("ok slots always carry a cache outcome"); // spg-analyze: allow(no-panic) — ok slots always carry a cache outcome
                            pending.conn.send(&ok_response(
                                pending.id,
                                source,
                                spg.query().k,
                                spg.edges(),
                            ));
                        }
                        Err(err) => {
                            state.counters.query_errors.fetch_add(1, Ordering::Relaxed);
                            if matches!(err, QueryError::DeadlineExceeded) {
                                state
                                    .counters
                                    .deadline_exceeded
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            pending.conn.send(&query_error_response(pending.id, err));
                        }
                    }
                }
            }
            Err(_) => {
                // Contain the crash to this batch: flight tokens abandoned on
                // unwind, joiners in other drains recompute, we keep serving.
                for pending in &live {
                    state.counters.query_errors.fetch_add(1, Ordering::Relaxed);
                    pending.conn.send(&error_response(
                        Some(pending.id),
                        "internal error: batch execution panicked",
                    ));
                }
            }
        }
    }
}

/// Builds the `stats` response: serving, cache and singleflight counters.
fn stats_response(state: &Arc<ServerState>, id: u64) -> String {
    let c = &state.counters;
    // Graph counters first, in their own scope: server.graph is released
    // before any other lock (cache shards, admission) is touched below.
    let (overlay_compactions, delta_seq, graph_version) = {
        let graph = state.graph.read().expect("server graph"); // lock: server.graph
        (graph.compactions(), graph.delta_seq(), graph.version())
    };
    let cache = state.cache.stats();
    let flights = state.flights.stats();
    let obj = Json::Object(vec![
        ("id".into(), Json::Uint(id)),
        ("status".into(), Json::Str("ok".into())),
        (
            "server".into(),
            Json::Object(vec![
                (
                    "requests".into(),
                    Json::Uint(c.requests.load(Ordering::Relaxed)),
                ),
                (
                    "answered".into(),
                    Json::Uint(c.answered.load(Ordering::Relaxed)),
                ),
                (
                    "query_errors".into(),
                    Json::Uint(c.query_errors.load(Ordering::Relaxed)),
                ),
                (
                    "protocol_errors".into(),
                    Json::Uint(c.protocol_errors.load(Ordering::Relaxed)),
                ),
                (
                    "overloaded".into(),
                    Json::Uint(c.overloaded.load(Ordering::Relaxed)),
                ),
                (
                    "batches".into(),
                    Json::Uint(c.batches.load(Ordering::Relaxed)),
                ),
                (
                    "max_batch".into(),
                    Json::Uint(c.max_batch.load(Ordering::Relaxed)),
                ),
                (
                    "shed_expired".into(),
                    Json::Uint(c.shed_expired.load(Ordering::Relaxed)),
                ),
                (
                    "deadline_exceeded".into(),
                    Json::Uint(c.deadline_exceeded.load(Ordering::Relaxed)),
                ),
                (
                    "panics_isolated".into(),
                    Json::Uint(c.panics_isolated.load(Ordering::Relaxed)),
                ),
                (
                    "batcher_restarts".into(),
                    Json::Uint(c.batcher_restarts.load(Ordering::Relaxed)),
                ),
                (
                    "deltas_applied".into(),
                    Json::Uint(c.deltas_applied.load(Ordering::Relaxed)),
                ),
                (
                    "entries_purged_scoped".into(),
                    Json::Uint(c.entries_purged_scoped.load(Ordering::Relaxed)),
                ),
                (
                    "update_errors".into(),
                    Json::Uint(c.update_errors.load(Ordering::Relaxed)),
                ),
                (
                    "overlay_compactions".into(),
                    Json::Uint(overlay_compactions),
                ),
                ("delta_seq".into(), Json::Uint(delta_seq)),
                ("graph_version".into(), Json::Uint(graph_version)),
                ("queue_depth".into(), Json::Uint(state.queue.len() as u64)),
                ("tenants".into(), Json::Uint(state.limiter.tenants() as u64)),
            ]),
        ),
        (
            "cache".into(),
            Json::Object(vec![
                ("hits".into(), Json::Uint(cache.hits)),
                ("misses".into(), Json::Uint(cache.misses)),
                ("insertions".into(), Json::Uint(cache.insertions)),
                ("evictions".into(), Json::Uint(cache.evictions)),
                ("purged_stale".into(), Json::Uint(cache.purged_stale)),
                ("purged_scoped".into(), Json::Uint(cache.purged_scoped)),
                ("entries".into(), Json::Uint(cache.entries as u64)),
                ("bytes".into(), Json::Uint(cache.bytes as u64)),
                ("budget_bytes".into(), Json::Uint(cache.budget_bytes as u64)),
            ]),
        ),
        (
            "flights".into(),
            Json::Object(vec![
                ("led".into(), Json::Uint(flights.led)),
                ("joined".into(), Json::Uint(flights.joined)),
                ("abandoned".into(), Json::Uint(flights.abandoned)),
            ]),
        ),
    ]);
    json::to_string(&obj)
}

// `Read` is used through `&TcpStream` (see `connection_loop`); keep the
// bound explicit so refactors that break it fail here, not at a call site.
const _: () = {
    const fn assert_read<T: Read>() {}
    assert_read::<&TcpStream>();
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerState>();
    assert_send_sync::<ServerHandle>();
};
