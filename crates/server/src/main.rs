//! `spg-server` binary: serve hop-constrained s-t SPG queries over TCP.
//!
//! ```text
//! spg-server [--listen ADDR] (--gnm N,M,SEED | --graph PATH) [knobs...]
//!
//!   --listen ADDR            bind address (default 127.0.0.1:0)
//!   --gnm N,M,SEED           serve a generated G(n,m) random digraph
//!   --graph PATH             serve an edge-list file (one "u v" per line)
//!   --batch-max N            micro-batch size cap          (default 64)
//!   --batch-deadline-us N    batch-forming deadline in µs  (default 200)
//!   --queue-cap N            admission queue bound         (default 1024)
//!   --max-frame BYTES        frame payload cap             (default 1 MiB)
//!   --rate R                 per-tenant requests/second    (default off)
//!   --burst B                per-tenant burst tokens       (default 64)
//!   --threads N              batch worker threads          (default auto)
//!   --cache-bytes BYTES      result cache budget           (default 64 MiB)
//!   --no-shared-phase1       per-query Phase 1 for misses (baseline mode)
//!   --phase1-lanes N         cohort lane width 64|128|256  (default 256)
//! ```
//!
//! On success the process prints exactly one `LISTENING <addr>` line on
//! stdout (the readiness handshake `serve_bench` and the CI smoke wait
//! for), logs lifecycle events to stderr, and serves until killed.

use std::process::ExitCode;
use std::time::Duration;

use spg_graph::generators::gnm_random;
use spg_graph::io::read_edge_list_file;
use spg_graph::DiGraph;
use spg_server::{ServerConfig, SpgServer};

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}");
    eprintln!(
        "usage: spg-server [--listen ADDR] (--gnm N,M,SEED | --graph PATH) \
         [--batch-max N] [--batch-deadline-us N] [--queue-cap N] [--max-frame BYTES] \
         [--rate R] [--burst B] [--threads N] [--cache-bytes BYTES] [--no-shared-phase1] \
         [--phase1-lanes 64|128|256]"
    );
    ExitCode::from(2)
}

struct Cli {
    listen: String,
    graph: DiGraph,
    graph_desc: String,
    config: ServerConfig,
}

fn parse_args() -> Result<Cli, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut graph: Option<(DiGraph, String)> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?,
            "--gnm" => {
                let spec = value("--gnm")?;
                let parts: Vec<&str> = spec.split(',').collect();
                let [n, m, seed] = parts.as_slice() else {
                    return Err(format!("--gnm expects N,M,SEED, got '{spec}'"));
                };
                let n: usize = n.trim().parse().map_err(|_| format!("bad N in '{spec}'"))?;
                let m: usize = m.trim().parse().map_err(|_| format!("bad M in '{spec}'"))?;
                let seed: u64 = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad SEED in '{spec}'"))?;
                graph = Some((gnm_random(n, m, seed), format!("gnm({n},{m},seed={seed})")));
            }
            "--graph" => {
                let path = value("--graph")?;
                let g = read_edge_list_file(&path).map_err(|e| format!("--graph {path}: {e}"))?;
                graph = Some((g, path));
            }
            "--batch-max" => {
                config.batch_max = value("--batch-max")?
                    .parse()
                    .map_err(|_| "bad --batch-max".to_string())?;
            }
            "--batch-deadline-us" => {
                let us: u64 = value("--batch-deadline-us")?
                    .parse()
                    .map_err(|_| "bad --batch-deadline-us".to_string())?;
                config.batch_deadline = Duration::from_micros(us);
            }
            "--queue-cap" => {
                config.queue_capacity = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "bad --queue-cap".to_string())?;
            }
            "--max-frame" => {
                config.max_frame_bytes = value("--max-frame")?
                    .parse()
                    .map_err(|_| "bad --max-frame".to_string())?;
            }
            "--rate" => {
                config.rate_per_sec = value("--rate")?
                    .parse()
                    .map_err(|_| "bad --rate".to_string())?;
            }
            "--burst" => {
                config.burst = value("--burst")?
                    .parse()
                    .map_err(|_| "bad --burst".to_string())?;
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?;
            }
            "--cache-bytes" => {
                config.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "bad --cache-bytes".to_string())?;
            }
            "--no-shared-phase1" => config.shared_phase1 = false,
            "--phase1-lanes" => {
                config.phase1_lanes = match value("--phase1-lanes")?.as_str() {
                    "64" => spg_core::LaneWidth::W64,
                    "128" => spg_core::LaneWidth::W128,
                    "256" => spg_core::LaneWidth::W256,
                    other => {
                        return Err(format!(
                            "--phase1-lanes expects 64, 128 or 256, got '{other}'"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let (graph, graph_desc) =
        graph.ok_or_else(|| "a graph is required: --gnm N,M,SEED or --graph PATH".to_string())?;
    Ok(Cli {
        listen,
        graph,
        graph_desc,
        config,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => return usage(&e),
    };
    eprintln!(
        "spg-server: graph {} ({} vertices, {} edges), batch_max {}, deadline {:?}, \
         queue {}, cache {} B",
        cli.graph_desc,
        cli.graph.vertex_count(),
        cli.graph.edge_count(),
        cli.config.batch_max,
        cli.config.batch_deadline,
        cli.config.queue_capacity,
        cli.config.cache_bytes,
    );
    #[cfg(feature = "failpoints")]
    {
        let armed = spg_core::failpoints::init_from_env();
        if armed > 0 {
            eprintln!("spg-server: {armed} failpoint(s) armed from SPG_FAILPOINTS");
        }
    }
    let server = match SpgServer::bind(cli.graph, &cli.listen, cli.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spg-server: bind {}: {e}", cli.listen);
            return ExitCode::FAILURE;
        }
    };
    // The readiness handshake: exactly one line, flushed, on stdout.
    println!("LISTENING {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!("spg-server: serving on {}", server.local_addr());
    match server.run() {
        Ok(()) => {
            eprintln!("spg-server: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spg-server: fatal: {e}");
            ExitCode::FAILURE
        }
    }
}
