//! Admission control: per-tenant token buckets and the deadline-bounded
//! micro-batch queue.
//!
//! The serving engine never queues unboundedly. A request is either
//! admitted into the bounded [`BatchQueue`] or refused **immediately** with
//! an explicit `overloaded` response — back-pressure the client can see and
//! act on, instead of latency silently growing without bound. Two gates run
//! in order:
//!
//! 1. [`RateLimiter`] — one lazily-created token bucket per tenant. Buckets
//!    refill continuously at `rate` tokens/second up to `burst`; a request
//!    costs one token. A tenant that exhausts its bucket is refused without
//!    touching the queue, so one hot client cannot starve the rest.
//! 2. [`BatchQueue`] — a bounded queue drained by the single batcher
//!    thread in **micro-batches**: the first waiting item opens a batch,
//!    which closes as soon as `batch_max` items are pending or the batch
//!    `deadline` elapses, whichever is first. Under a backlog the deadline
//!    is never paid (the batch fills instantly); under a trickle it bounds
//!    the worst-case queueing delay a request can suffer for the benefit of
//!    batch-sharing (`deadline = 0` dispatches immediately).
//!
//! When a backlog forces a batch to leave items behind, the drain is
//! **earliest-deadline-first**, not FIFO: items whose own deadline expires
//! soonest are taken first (deadline-less items last, FIFO within ties), so
//! a tight-deadline request stuck behind a wall of lax ones is not timed
//! out by queueing order alone. Construct with
//! [`BatchQueue::with_deadline_fn`] to supply the per-item deadline;
//! [`BatchQueue::new`] treats every item as deadline-less, which degrades
//! to exact FIFO.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One tenant's bucket: a continuous refill clocked on demand.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// Per-tenant token-bucket rate limiter (see the module docs).
#[derive(Debug)]
pub struct RateLimiter {
    /// Tokens per second granted to each tenant; `None` disables limiting.
    rate: Option<f64>,
    /// Bucket capacity (maximum burst a quiet tenant can spend at once).
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// Creates a limiter granting each tenant `rate` requests/second with
    /// bursts up to `burst`. A non-finite or non-positive `rate` disables
    /// limiting entirely (every admit succeeds).
    pub fn new(rate: f64, burst: f64) -> Self {
        RateLimiter {
            rate: (rate.is_finite() && rate > 0.0).then_some(rate),
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Charges one token from `tenant`'s bucket, creating it brim-full on
    /// first sight. Returns `false` when the bucket is empty — the caller
    /// must refuse the request.
    pub fn admit(&self, tenant: &str) -> bool {
        self.admit_at(tenant, Instant::now())
    }

    /// [`RateLimiter::admit`] with an explicit clock, so tests can script
    /// exact refill timelines.
    pub fn admit_at(&self, tenant: &str, now: Instant) -> bool {
        let Some(rate) = self.rate else {
            return true;
        };
        let mut buckets = self.buckets.lock().expect("rate limiter poisoned"); // lock: admission.buckets
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.burst,
            refreshed: now,
        });
        let elapsed = now
            .saturating_duration_since(bucket.refreshed)
            .as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(self.burst);
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tenants with a bucket so far (observability only).
    pub fn tenants(&self) -> usize {
        self.buckets.lock().expect("rate limiter poisoned").len() // lock: admission.buckets
    }
}

#[derive(Debug)]
struct QueueState<T> {
    items: std::collections::VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer queue drained in deadline-bounded micro-batches
/// by one consumer (see the module docs).
#[derive(Debug)]
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    arrived: Condvar,
    capacity: usize,
    batch_max: usize,
    deadline: Duration,
    /// Per-item deadline used for earliest-deadline-first drain order;
    /// `None` means the item has no deadline and drains after all that do.
    deadline_of: fn(&T) -> Option<Instant>,
}

/// The [`BatchQueue::new`] default: no item carries a deadline, so the
/// earliest-deadline-first drain degrades to exact FIFO.
fn no_deadline<T>(_: &T) -> Option<Instant> {
    None
}

impl<T> BatchQueue<T> {
    /// Creates a queue holding at most `capacity` waiting items, drained in
    /// batches of at most `batch_max` (both clamped to ≥ 1) after at most
    /// `deadline` of batch-forming delay. Items are treated as
    /// deadline-less (exact FIFO drain); see
    /// [`BatchQueue::with_deadline_fn`].
    pub fn new(capacity: usize, batch_max: usize, deadline: Duration) -> Self {
        BatchQueue::with_deadline_fn(capacity, batch_max, deadline, no_deadline::<T>)
    }

    /// [`BatchQueue::new`] with a per-item deadline accessor: when a drain
    /// cannot take everything, the items whose deadlines expire soonest are
    /// taken first (deadline-less items last, FIFO within ties), and the
    /// items left behind keep their arrival order.
    pub fn with_deadline_fn(
        capacity: usize,
        batch_max: usize,
        deadline: Duration,
        deadline_of: fn(&T) -> Option<Instant>,
    ) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                items: std::collections::VecDeque::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
            capacity: capacity.max(1),
            batch_max: batch_max.max(1),
            deadline,
            deadline_of,
        }
    }

    /// Admits `item`, or returns it when the queue is full or closed — the
    /// caller answers `overloaded` (full) or drops the work (shutdown).
    /// Never blocks.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("batch queue poisoned"); // lock: admission.queue
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.arrived.notify_one();
        Ok(())
    }

    /// Blocks until a micro-batch is ready and returns it; `None` once the
    /// queue is closed *and* drained (consumer shutdown). The first waiting
    /// item opens the batch; it closes at `batch_max` items or after the
    /// configured deadline, whichever comes first.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let mut state = self.state.lock().expect("batch queue poisoned"); // lock: admission.queue
                                                                          // Wait for the opening item.
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            state = self.arrived.wait(state).expect("batch queue poisoned"); // lock: admission.queue
        }
        // Batch-forming window: absorb arrivals until full or deadline.
        let opened = Instant::now();
        while state.items.len() < self.batch_max && !state.closed {
            let elapsed = opened.elapsed();
            if elapsed >= self.deadline {
                break;
            }
            let (next, timeout) = self
                .arrived
                .wait_timeout(state, self.deadline - elapsed) // lock: admission.queue
                .expect("batch queue poisoned");
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.items.len().min(self.batch_max);
        if take == state.items.len() {
            // Taking everything: selection order is irrelevant, skip it.
            return Some(state.items.drain(..).collect());
        }
        // Earliest-deadline-first selection (see the module docs): rank by
        // (has-no-deadline, deadline, arrival) so tight deadlines drain
        // first, deadline-less items last, FIFO within ties.
        let mut order: Vec<usize> = (0..state.items.len()).collect();
        order.sort_unstable_by_key(|&i| {
            let d = (self.deadline_of)(&state.items[i]);
            (d.is_none(), d, i)
        });
        order.truncate(take);
        let mut slots: Vec<Option<T>> = state.items.drain(..).map(Some).collect();
        let batch: Vec<T> = order.iter().filter_map(|&i| slots[i].take()).collect();
        // The unselected remainder keeps its arrival order.
        state.items.extend(slots.into_iter().flatten());
        Some(batch)
    }

    /// Closes the queue: future pushes fail, the consumer drains what is
    /// left and then gets `None`.
    pub fn close(&self) {
        self.state.lock().expect("batch queue poisoned").closed = true; // lock: admission.queue
        self.arrived.notify_all();
    }

    /// Items currently waiting (observability only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("batch queue poisoned").items.len() // lock: admission.queue
    }

    /// `true` when no item is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn bucket_refills_at_rate_and_caps_at_burst() {
        let limiter = RateLimiter::new(10.0, 3.0);
        let t0 = Instant::now();
        // Burst of 3, then dry.
        assert!(limiter.admit_at("a", t0));
        assert!(limiter.admit_at("a", t0));
        assert!(limiter.admit_at("a", t0));
        assert!(!limiter.admit_at("a", t0));
        // 100 ms at 10/s refills one token exactly.
        assert!(limiter.admit_at("a", t0 + Duration::from_millis(100)));
        assert!(!limiter.admit_at("a", t0 + Duration::from_millis(100)));
        // A long sleep refills to the cap, not beyond.
        let later = t0 + Duration::from_secs(3600);
        assert!(limiter.admit_at("a", later));
        assert!(limiter.admit_at("a", later));
        assert!(limiter.admit_at("a", later));
        assert!(!limiter.admit_at("a", later));
    }

    #[test]
    fn tenants_are_isolated_and_unlimited_mode_works() {
        let limiter = RateLimiter::new(1.0, 1.0);
        let t0 = Instant::now();
        assert!(limiter.admit_at("a", t0));
        assert!(!limiter.admit_at("a", t0), "a is dry");
        assert!(limiter.admit_at("b", t0), "b has its own bucket");
        assert_eq!(limiter.tenants(), 2);

        let open = RateLimiter::new(0.0, 1.0);
        for _ in 0..1000 {
            assert!(open.admit_at("anyone", t0));
        }
        assert!(RateLimiter::new(f64::NAN, 1.0).admit_at("x", t0));
    }

    #[test]
    fn queue_bounds_and_refuses_when_full() {
        let queue = BatchQueue::new(2, 8, Duration::ZERO);
        assert!(queue.push(1).is_ok());
        assert!(queue.push(2).is_ok());
        assert_eq!(queue.push(3), Err(3), "full queue refuses, never blocks");
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.next_batch(), Some(vec![1, 2]));
        assert!(queue.is_empty());
    }

    #[test]
    fn deadline_zero_dispatches_immediately() {
        let queue = BatchQueue::new(16, 8, Duration::ZERO);
        queue.push(7).unwrap();
        assert_eq!(queue.next_batch(), Some(vec![7]));
    }

    #[test]
    fn batch_max_splits_a_backlog_without_paying_the_deadline() {
        let queue = BatchQueue::new(16, 3, Duration::from_secs(3600));
        for i in 0..6 {
            queue.push(i).unwrap();
        }
        // Full batches form instantly despite the huge deadline.
        let start = Instant::now();
        assert_eq!(queue.next_batch(), Some(vec![0, 1, 2]));
        assert_eq!(queue.next_batch(), Some(vec![3, 4, 5]));
        assert!(start.elapsed() < Duration::from_secs(60));
    }

    #[test]
    fn partial_batch_pays_the_deadline_then_dispatches() {
        let queue = BatchQueue::new(16, 3, Duration::from_millis(30));
        queue.push(42).unwrap();
        let start = Instant::now();
        assert_eq!(queue.next_batch(), Some(vec![42]));
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(30),
            "an unfilled batch must wait out the forming deadline, waited {waited:?}"
        );
    }

    #[test]
    fn deadline_absorbs_trickling_arrivals_into_one_batch() {
        let queue = Arc::new(BatchQueue::new(16, 64, Duration::from_millis(200)));
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                for i in 0..4 {
                    queue.push(i).unwrap();
                    thread::sleep(Duration::from_millis(10));
                }
            })
        };
        let batch = queue.next_batch().unwrap();
        producer.join().unwrap();
        assert!(
            batch.len() >= 2,
            "the deadline window must absorb more than the opening item, got {batch:?}"
        );
    }

    #[test]
    fn backlog_drains_earliest_deadline_first_with_fifo_ties() {
        let t0 = Instant::now();
        let soon = t0 + Duration::from_secs(1);
        let late = t0 + Duration::from_secs(60);
        let queue: BatchQueue<(u32, Option<Instant>)> =
            BatchQueue::with_deadline_fn(16, 2, Duration::ZERO, |item| item.1);
        // Arrival order: lax, deadline-less, tight, tight.
        queue.push((0, Some(late))).unwrap();
        queue.push((1, None)).unwrap();
        queue.push((2, Some(soon))).unwrap();
        queue.push((3, Some(soon))).unwrap();
        let ids = |batch: Vec<(u32, Option<Instant>)>| -> Vec<u32> {
            batch.into_iter().map(|(id, _)| id).collect()
        };
        // The two tight-deadline items jump the queue, FIFO between them.
        assert_eq!(ids(queue.next_batch().unwrap()), vec![2, 3]);
        // The remainder kept its arrival order: lax deadline before none.
        assert_eq!(ids(queue.next_batch().unwrap()), vec![0, 1]);
    }

    #[test]
    fn deadline_less_queue_stays_fifo() {
        let queue = BatchQueue::new(16, 2, Duration::ZERO);
        for i in 0..5 {
            queue.push(i).unwrap();
        }
        assert_eq!(queue.next_batch(), Some(vec![0, 1]));
        assert_eq!(queue.next_batch(), Some(vec![2, 3]));
        assert_eq!(queue.next_batch(), Some(vec![4]));
    }

    #[test]
    fn close_wakes_consumer_and_refuses_producers() {
        let queue = Arc::new(BatchQueue::<u32>::new(4, 4, Duration::from_secs(3600)));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.next_batch())
        };
        // Give the consumer a beat to block on the empty queue.
        thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(queue.push(1), Err(1), "closed queue refuses");
        // Close with residue: drain first, then None.
        let residue = BatchQueue::new(4, 2, Duration::ZERO);
        residue.push(1).unwrap();
        residue.push(2).unwrap();
        residue.push(3).unwrap();
        residue.close();
        assert_eq!(residue.next_batch(), Some(vec![1, 2]));
        assert_eq!(residue.next_batch(), Some(vec![3]));
        assert_eq!(residue.next_batch(), None);
    }
}
