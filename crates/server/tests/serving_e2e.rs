//! End-to-end serving tests: a real `SpgServer` on a loopback socket,
//! driven by real [`SpgClient`] connections.
//!
//! The contract under test is the one the CI smoke job enforces on the
//! release binary: every byte that comes back over the wire must be
//! explainable by a local [`Eve::query`] call — identical edge lists for
//! `ok`, identical [`spg_core::QueryError`] strings for `error` — and
//! overload must surface as explicit `overloaded` responses, never as a
//! hang or a dropped connection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use spg_core::{Eve, EveConfig, Query};
use spg_graph::generators::gnm_random;
use spg_graph::DiGraph;
use spg_server::json::Json;
use spg_server::{Reply, ServerConfig, ServerHandle, SpgClient, SpgServer};

/// The shared test graph: small enough that every query is fast, dense
/// enough that answers have non-trivial edge lists.
fn test_graph() -> DiGraph {
    gnm_random(60, 360, 0xE2E)
}

/// Starts an in-process server and returns its address, control handle and
/// the `run()` thread (join it after `shutdown()` to assert clean exit).
fn start_server(config: ServerConfig) -> (std::net::SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = SpgServer::bind(test_graph(), "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = thread::spawn(move || server.run().expect("serving loop"));
    (addr, handle, thread)
}

fn connect(addr: std::net::SocketAddr) -> SpgClient {
    let client = SpgClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    client
}

/// Fresh request ids, unique across every thread of a test.
fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

#[test]
fn responses_are_bit_identical_to_local_eve() {
    let (addr, handle, server) = start_server(ServerConfig {
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let graph = test_graph();
    let eve = Eve::new(&graph, EveConfig::default());
    let mut client = connect(addr);

    // A spread of valid, clamped, and failing queries.
    let cases = [
        Query::new(0, 1, 4),
        Query::new(3, 17, 6),
        Query::new(5, 5, 4),   // s == t -> QueryError
        Query::new(999, 1, 4), // s out of range -> QueryError
        Query::new(2, 40, 0),  // k = 0 -> no path possible
    ];
    for (i, case) in cases.iter().enumerate() {
        let id = 100 + i as u64;
        let reply = client
            .query(id, case.source, case.target, case.k)
            .expect("round trip");
        assert_eq!(reply.id, Some(id), "responses echo the request id");
        match eve.query(*case) {
            Ok(spg) => {
                assert_eq!(reply.status, "ok", "{case:?}");
                assert_eq!(
                    reply.edges.as_deref(),
                    Some(spg.edges()),
                    "wire edges must be bit-identical to Eve::query for {case:?}"
                );
                assert_eq!(reply.k, Some(spg.query().k), "clamped k is echoed");
            }
            Err(err) => {
                assert_eq!(reply.status, "error", "{case:?}");
                assert_eq!(
                    reply.error.as_deref(),
                    Some(err.to_string().as_str()),
                    "wire error must be the exact QueryError string for {case:?}"
                );
            }
        }
    }

    // The same valid query again is a cache hit with the same bytes.
    let cold = client.query(200, 0, 1, 4).expect("cold");
    let warm = client.query(201, 0, 1, 4).expect("warm");
    assert_eq!(warm.source.as_deref(), Some("hit"));
    assert_eq!(warm.edges, cold.edges, "hits serve the identical answer");

    handle.shutdown();
    server.join().expect("clean server exit");
}

#[test]
fn wire_max_hop_bound_round_trips_bit_identically() {
    // k = u32::MAX must be served, not refused: the engine clamps it to
    // n − 1. Exercised on the paper's Figure-1 graph — the clamp keeps the
    // verification phase cheap, which an adversarial k on a dense random
    // graph would not (simple-path verification cost grows with k).
    let graph = DiGraph::from_edges(
        8,
        [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 1),
            (2, 3),
            (1, 4),
            (4, 5),
            (5, 3),
            (3, 1),
            (5, 0),
            (2, 6),
            (4, 6),
            (6, 7),
            (7, 5),
        ],
    );
    let eve = Eve::new(&graph, EveConfig::default());
    let server = SpgServer::bind(
        graph.clone(),
        "127.0.0.1:0",
        ServerConfig {
            batch_deadline: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = thread::spawn(move || server.run().expect("serving loop"));

    let mut client = connect(addr);
    let reply = client.query(1, 0, 3, u32::MAX).expect("round trip");
    assert_eq!(reply.status, "ok");
    let spg = eve.query(Query::new(0, 3, u32::MAX)).expect("local answer");
    assert_eq!(reply.k, Some(spg.query().k), "clamped k echoed on the wire");
    assert!(reply.k.unwrap() <= 7, "clamp is n - 1");
    assert_eq!(reply.edges.as_deref(), Some(spg.edges()), "bit-identical");

    handle.shutdown();
    thread.join().expect("clean server exit");
}

#[test]
fn concurrent_hot_misses_compute_once() {
    const CLIENTS: usize = 12;
    // A wide admission window so all clients land in one micro-batch, where
    // the coalescing path (and cross-batch singleflight) must collapse them.
    let (addr, handle, server) = start_server(ServerConfig {
        batch_max: 64,
        batch_deadline: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let ids = AtomicU64::new(1);
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let id = next_id(&ids);
            thread::spawn(move || {
                let mut client = connect(addr);
                barrier.wait();
                client.query(id, 0, 1, 5).expect("hot query")
            })
        })
        .collect();
    let replies: Vec<Reply> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    for reply in &replies {
        assert_eq!(reply.status, "ok");
        assert_eq!(reply.edges, replies[0].edges, "one answer for everyone");
    }

    let stats = connect(addr).stats(9000).expect("stats").raw;
    let insertions = stats
        .get("cache")
        .and_then(|c| c.get("insertions"))
        .and_then(spg_server::json::Json::as_u64)
        .expect("cache.insertions");
    assert_eq!(
        insertions, 1,
        "12 concurrent misses on one hot key must compute exactly once"
    );
    let answered = stats
        .get("server")
        .and_then(|s| s.get("answered"))
        .and_then(spg_server::json::Json::as_u64)
        .expect("server.answered");
    assert_eq!(answered, CLIENTS as u64);

    handle.shutdown();
    server.join().expect("clean server exit");
}

#[test]
fn rate_limited_tenant_gets_explicit_overload() {
    let (addr, handle, server) = start_server(ServerConfig {
        batch_deadline: Duration::ZERO,
        rate_per_sec: 1e-6, // effectively no refill within the test
        burst: 2.0,
        ..ServerConfig::default()
    });
    let mut client = connect(addr);

    // The burst admits two queries; the third is refused, explicitly.
    for id in 0..2u64 {
        client
            .send_query_for(id, 0, 1, 4, Some("noisy"))
            .expect("send");
        let reply = client.recv().expect("reply");
        assert_eq!(reply.status, "ok", "burst admits request {id}");
    }
    client
        .send_query_for(2, 0, 1, 4, Some("noisy"))
        .expect("send");
    let refused = client.recv().expect("reply");
    assert_eq!(refused.status, "overloaded");
    assert_eq!(refused.id, Some(2));
    assert!(refused.error.unwrap().contains("rate limit"));

    // Another tenant has its own bucket and is unaffected.
    client
        .send_query_for(3, 0, 1, 4, Some("quiet"))
        .expect("send");
    assert_eq!(client.recv().expect("reply").status, "ok");

    // The connection survives refusals: a ping still answers.
    assert_eq!(client.ping(4).expect("ping").status, "ok");

    handle.shutdown();
    server.join().expect("clean server exit");
}

#[test]
fn oversized_request_is_answered_then_connection_closes() {
    let (addr, handle, server) = start_server(ServerConfig {
        max_frame_bytes: 256,
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let mut client = connect(addr);
    client.send_raw(&vec![b' '; 4096]).expect("send oversized");
    let reply = client.recv().expect("the refusal is answered first");
    assert_eq!(reply.status, "error");
    assert_eq!(reply.id, None, "an unreadable frame has no id to echo");
    assert!(reply.error.unwrap().contains("oversized"));
    // After the refusal the server hangs up (the stream is desynced).
    assert!(
        client.recv().is_err(),
        "the connection must be closed after an oversized frame"
    );

    // The server itself is fine: new connections work.
    let mut fresh = connect(addr);
    assert_eq!(fresh.ping(1).expect("ping").status, "ok");

    handle.shutdown();
    server.join().expect("clean server exit");
}

#[test]
fn ping_and_stats_expose_the_engine() {
    let (addr, handle, server) = start_server(ServerConfig {
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let mut client = connect(addr);
    let pong = client.ping(7).expect("ping");
    assert_eq!(pong.status, "ok");
    assert_eq!(pong.id, Some(7));

    client.query(8, 0, 1, 4).expect("one miss");
    client.query(9, 0, 1, 4).expect("one hit");
    let stats = client.stats(10).expect("stats").raw;
    for section in ["server", "cache", "flights"] {
        assert!(
            stats.get(section).is_some(),
            "stats has a {section} section"
        );
    }
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(spg_server::json::Json::as_u64)
        .expect("cache.hits");
    assert!(hits >= 1, "the repeat query must register as a cache hit");

    handle.shutdown();
    server.join().expect("clean server exit");
}

#[test]
fn update_round_trip_purges_scoped_and_serves_the_new_graph() {
    // Two disconnected components so one cached answer is provably out of
    // scope of the delta: component A (0..4, a diamond) and component B
    // (8 -> 9).
    let graph = DiGraph::from_edges(10, [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (8, 9)]);
    let server = SpgServer::bind(
        graph,
        "127.0.0.1:0",
        ServerConfig {
            batch_deadline: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = thread::spawn(move || server.run().expect("serving loop"));
    let mut client = connect(addr);

    // Warm the cache with one entry per component.
    assert_eq!(client.query(1, 0, 3, 4).expect("warm A").status, "ok");
    assert_eq!(client.query(2, 8, 9, 1).expect("warm B").status, "ok");

    // Remove an edge inside component A's answer.
    let reply = client.update(3, &[], &[(1, 2)]).expect("update");
    assert_eq!(reply.status, "ok");
    assert_eq!(reply.id, Some(3));
    let field = |key: &str| reply.raw.get(key).and_then(Json::as_u64).expect(key);
    assert_eq!(field("applied"), 1, "one real removal");
    assert_eq!(field("seq"), 1, "first delta batch on this snapshot");
    assert_eq!(
        field("purged"),
        1,
        "only component A's entry is in scope of the removal"
    );

    // Component B's entry survived the purge: the requery is a hit.
    let warm = client.query(4, 8, 9, 1).expect("requery B");
    assert_eq!(warm.source.as_deref(), Some("hit"));

    // Component A's entry was purged and recomputes on the mutated graph,
    // bit-identical to a local Eve on a from-scratch rebuild.
    let recomputed = client.query(5, 0, 3, 4).expect("requery A");
    assert_eq!(recomputed.status, "ok");
    assert_eq!(recomputed.source.as_deref(), Some("miss"));
    let rebuilt = DiGraph::from_edges(10, [(0, 1), (2, 3), (0, 2), (1, 3), (8, 9)]);
    let eve = Eve::new(&rebuilt, EveConfig::default());
    let spg = eve.query(Query::new(0, 3, 4)).expect("local answer");
    assert_eq!(
        recomputed.edges.as_deref(),
        Some(spg.edges()),
        "post-update wire answer must match the full rebuild"
    );

    // A second batch bumps seq; additions are in scope too, so the freshly
    // recomputed component-A entry is purged again by the re-add.
    let added = client.update(6, &[(1, 2)], &[]).expect("re-add");
    assert_eq!(added.status, "ok");
    let field = |key: &str| added.raw.get(key).and_then(Json::as_u64).expect(key);
    assert_eq!(field("applied"), 1);
    assert_eq!(field("seq"), 2);
    assert_eq!(field("purged"), 1, "the recomputed (0, 3, 4) entry");

    // Malformed batches are refused without poisoning the connection.
    let refused = client.update(7, &[(2, 2)], &[]).expect("self-loop");
    assert_eq!(refused.status, "error");
    assert!(refused.error.unwrap().contains("self-loop"));
    let empty = client.update(8, &[], &[]).expect("empty");
    assert_eq!(empty.status, "error");
    assert!(empty.error.unwrap().contains("non-empty"));
    assert_eq!(client.ping(9).expect("ping").status, "ok");

    // The stats surface the whole story.
    let stats = client.stats(10).expect("stats").raw;
    let server_stat = |key: &str| {
        stats
            .get("server")
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .expect(key)
    };
    assert_eq!(server_stat("deltas_applied"), 2);
    assert_eq!(server_stat("entries_purged_scoped"), 2);
    // The empty batch died at parse time (a bad request, not an update
    // error); only the self-loop reached delta validation.
    assert_eq!(server_stat("update_errors"), 1);
    assert_eq!(server_stat("delta_seq"), 2);

    handle.shutdown();
    thread.join().expect("clean server exit");
}

#[test]
fn shutdown_is_clean_with_connected_clients() {
    let (addr, handle, server) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    assert_eq!(client.ping(1).expect("ping").status, "ok");
    handle.shutdown();
    server.join().expect("run() returns after shutdown");
    // The client's connection was hung up; the next read fails cleanly.
    assert!(client.recv().is_err());
}

#[test]
fn already_expired_deadlines_are_shed_with_explicit_responses() {
    // A long batch-forming deadline guarantees the request sits in the
    // queue past its own deadline before the batcher claims it.
    let (addr, handle, server) = start_server(ServerConfig {
        batch_deadline: Duration::from_millis(30),
        ..ServerConfig::default()
    });
    let mut client = connect(addr);

    let shed = client
        .query_with_deadline(1, 0, 1, 4, 0)
        .expect("round trip");
    assert_eq!(shed.status, "expired");
    assert_eq!(
        shed.error.as_deref(),
        Some("deadline expired before execution"),
        "shedding is an explicit protocol status, not a query error"
    );

    // A generous deadline changes nothing about the answer.
    let ok = client
        .query_with_deadline(2, 0, 1, 4, 60_000)
        .expect("round trip");
    assert_eq!(ok.status, "ok");
    let plain = client.query(3, 0, 1, 4).expect("round trip");
    assert_eq!(
        ok.edges, plain.edges,
        "deadline does not perturb the answer"
    );

    let stats = client.stats(4).expect("stats").raw;
    let shed_expired = stats
        .get("server")
        .and_then(|s| s.get("shed_expired"))
        .and_then(spg_server::json::Json::as_u64)
        .expect("server.shed_expired");
    assert_eq!(shed_expired, 1, "exactly the one shed query is counted");

    handle.shutdown();
    server.join().expect("clean server exit");
}

#[test]
fn retrying_client_rides_out_transient_refusals() {
    use spg_server::RetryPolicy;

    // Burst of 1 token refilling at 50/s: the second immediate query is
    // refused, but a backoff of a few tens of ms earns the token back.
    let (addr, handle, server) = start_server(ServerConfig {
        rate_per_sec: 50.0,
        burst: 1.0,
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let mut client = connect(addr);

    assert_eq!(client.query(1, 0, 1, 4).expect("first").status, "ok");
    let refused = client.query(2, 0, 1, 4).expect("second");
    assert_eq!(refused.status, "overloaded", "the bucket is dry");

    let policy = RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_millis(15),
        max_backoff: Duration::from_millis(120),
        ..RetryPolicy::default()
    };
    let retried = client
        .query_retrying(3, 0, 1, 4, None, &policy)
        .expect("retry loop");
    assert_eq!(
        retried.status, "ok",
        "backoff outlasts the refill interval, so the retry lands"
    );

    // Deterministic errors are not transient: no retries, immediate return.
    let error = client
        .query_retrying(4, 5, 5, 4, None, &policy)
        .expect("retry loop");
    assert_eq!(error.status, "error");
    assert_eq!(
        error.error.as_deref(),
        Some("source and target must be distinct (both are 5)")
    );

    handle.shutdown();
    server.join().expect("clean server exit");
}
