//! Chaos harness: fault injection against the real release-mode server
//! binary, plus in-process batcher-death drills.
//!
//! Only compiled with `--features failpoints`. The contract under load and
//! under injected faults is the same one the healthy e2e suite enforces:
//!
//! * **Every in-flight request gets a response** — a fault may produce an
//!   `error`, `expired` or `overloaded` status, but never a hang and never
//!   a dropped request (reads run under a timeout so a hang fails loudly).
//! * **No corrupted neighbour slot** — every `ok` response must still be
//!   bit-identical to a local [`Eve::query`], even while a neighbouring
//!   query in the same micro-batch is panicking or being cancelled.
//! * **Recovery** — the injected faults carry hit budgets, and once they
//!   disarm the server answers a fresh query correctly (CI greps the
//!   markers this suite prints on success).

#![cfg(feature = "failpoints")]

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use spg_core::{Eve, EveConfig, Query};
use spg_graph::generators::gnm_random;
use spg_graph::DiGraph;
use spg_server::{Reply, ServeError, ServerConfig, ServerHandle, SpgClient, SpgServer};

/// Same graph the server process is told to generate (`--gnm 60,360,3630`).
fn test_graph() -> DiGraph {
    gnm_random(60, 360, 3630)
}

/// The exact engine/server error strings a response is allowed to carry.
/// Anything else on the wire under chaos is corruption.
const ALLOWED_ERRORS: [&str; 4] = [
    "query deadline exceeded",
    "query work budget exceeded",
    "internal error: query execution panicked",
    "internal error: batch execution panicked",
];

/// A spawned `spg-server` process, killed on drop so a failing assertion
/// cannot leak a listener.
struct ServerProcess {
    child: Child,
    addr: String,
}

impl ServerProcess {
    /// Starts the release binary with `SPG_FAILPOINTS=spec` and waits for
    /// the `LISTENING <addr>` readiness line. If `SPG_CHAOS_SERVER_LOG` is
    /// set, the server's stderr is appended there (the CI job uploads it as
    /// an artifact); otherwise it is discarded.
    fn spawn(spec: &str) -> ServerProcess {
        let stderr = match std::env::var_os("SPG_CHAOS_SERVER_LOG") {
            Some(path) => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map(Stdio::from)
                .expect("open chaos server log"),
            None => Stdio::null(),
        };
        let mut child = Command::new(env!("CARGO_BIN_EXE_spg-server"))
            .args(["--gnm", "60,360,3630", "--batch-deadline-us", "500"])
            .env("SPG_FAILPOINTS", spec)
            .stdout(Stdio::piped())
            .stderr(stderr)
            .spawn()
            .expect("spawn spg-server binary");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let ready = lines
            .next()
            .expect("server prints a readiness line")
            .expect("readable stdout");
        let addr = ready
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected readiness line {ready:?}"))
            .to_string();
        ServerProcess { child, addr }
    }

    fn connect(&self) -> SpgClient {
        let client = SpgClient::connect(&self.addr).expect("connect to chaos server");
        client
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        client
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The deterministic workload one storm thread sends.
fn storm_query(thread: u64, i: u64) -> (u32, u32, u32, Option<u64>) {
    let s = ((i * 7 + thread) % 60) as u32;
    let t = ((i * 13 + 31 + thread * 5) % 60) as u32;
    let k = 3 + (i % 5) as u32;
    // Every fifth request carries a 1ms deadline so delay faults surface
    // as shedding / cancellation rather than slow success.
    let deadline_ms = if i % 5 == 4 { Some(1) } else { None };
    (s, t, k, deadline_ms)
}

/// The local oracle: per (s, t, k), the engine's edges or error string.
type Oracle = HashMap<(u32, u32, u32), Result<Vec<(u32, u32)>, String>>;

/// One response under chaos: attributed, well-formed, and — when `ok` —
/// bit-identical to the local engine.
fn assert_uncorrupted(reply: &Reply, id: u64, expected: &Oracle, key: (u32, u32, u32)) {
    assert_eq!(reply.id, Some(id), "responses echo the request id");
    match reply.status.as_str() {
        "ok" => {
            let Some(Ok(edges)) = expected.get(&key) else {
                panic!("server said ok to a query the local engine rejects: {key:?}");
            };
            assert_eq!(
                reply.edges.as_deref(),
                Some(edges.as_slice()),
                "ok responses stay bit-identical to Eve::query under chaos ({key:?})"
            );
        }
        "error" => {
            let message = reply.error.as_deref().expect("errors carry a message");
            let deterministic = matches!(expected.get(&key), Some(Err(e)) if e == message);
            assert!(
                deterministic || ALLOWED_ERRORS.contains(&message),
                "unrecognised error string under chaos: {message:?}"
            );
        }
        "expired" => {
            assert_eq!(
                reply.error.as_deref(),
                Some("deadline expired before execution")
            );
        }
        "overloaded" => {}
        other => panic!("unexpected status {other:?} under chaos"),
    }
}

/// The tentpole acceptance test: hammer the release binary while faults
/// fire at every instrumented site; every request must come back, nothing
/// may corrupt, and the server must recover once the hit budgets disarm.
#[test]
fn every_request_is_answered_under_faults_at_every_site() {
    const THREADS: u64 = 4;
    const REQUESTS: u64 = 25;

    // Local oracle for every query the storm can send.
    let graph = test_graph();
    let eve = Eve::new(&graph, EveConfig::default());
    let mut expected = HashMap::new();
    for thread in 0..THREADS {
        for i in 0..REQUESTS {
            let (s, t, k, _) = storm_query(thread, i);
            expected.entry((s, t, k)).or_insert_with(|| {
                eve.query(Query::new(s, t, k))
                    .map(|spg| spg.edges().to_vec())
                    .map_err(|e| e.to_string())
            });
        }
    }
    let expected = Arc::new(expected);

    // One storm per fault spec: every site fires, each a bounded number of
    // times so the run can prove recovery afterwards.
    let specs = [
        "batch_drain=panic*2",
        "batch_drain=budget*2",
        "flight_leader=budget*3",
        "phase1=panic*3",
        "phase1b=budget*3",
        "phase2=panic*3",
        "verify=delay:30*3",
    ];
    for spec in specs {
        let server = ServerProcess::spawn(spec);
        let workers: Vec<_> = (0..THREADS)
            .map(|thread| {
                let mut client = server.connect();
                let expected = Arc::clone(&expected);
                std::thread::spawn(move || {
                    for i in 0..REQUESTS {
                        let (s, t, k, deadline_ms) = storm_query(thread, i);
                        let id = thread * 1000 + i;
                        client
                            .send_query_with(id, s, t, k, None, deadline_ms)
                            .expect("send under chaos");
                        let reply = client.recv().unwrap_or_else(|e| {
                            panic!("request {id} got no response under {spec:?}: {e}")
                        });
                        assert_uncorrupted(&reply, id, &expected, (s, t, k));
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("storm thread");
        }

        // The hit budgets are long spent: a fresh, never-stormed query must
        // now compute cleanly and bit-identically.
        let (s, t, k) = (0, 59, 6);
        let clean = eve.query(Query::new(s, t, k)).expect("local answer");
        let reply = server
            .connect()
            .query(9999, s, t, k)
            .expect("post-chaos query");
        assert_eq!(reply.status, "ok", "server recovered after {spec:?}");
        assert_eq!(
            reply.edges.as_deref(),
            Some(clean.edges()),
            "post-chaos answers are bit-identical ({spec:?})"
        );
        println!("CHAOS-OK no-hang no-corruption recovered spec={spec}");
    }
    println!("CHAOS-SUITE-PASS all sites injected, all requests answered");
}

fn start_in_process(
    config: ServerConfig,
) -> (
    ServerHandle,
    SpgClient,
    thread::JoinHandle<Result<(), ServeError>>,
) {
    let server = SpgServer::bind(test_graph(), "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = thread::spawn(move || server.run());
    let client = SpgClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    (handle, client, thread)
}

fn stat(reply: &Reply, name: &str) -> u64 {
    reply
        .raw
        .get("server")
        .and_then(|s| s.get(name))
        .and_then(spg_server::json::Json::as_u64)
        .unwrap_or_else(|| panic!("stats field server.{name}"))
}

/// Satellite bugfix drill: a dead batcher must be respawned, not left as a
/// black hole behind a listening socket.
#[test]
fn a_killed_batcher_is_respawned_and_service_continues() {
    let (handle, mut client, server) = start_in_process(ServerConfig {
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });

    let before = client.query(1, 0, 1, 4).expect("healthy query");
    assert_eq!(before.status, "ok");

    // The batcher checks the kill flag when it wakes for a batch: this
    // query is answered by the doomed batcher, whose dying act follows it.
    handle.chaos_kill_batcher();
    let during = client
        .query(2, 2, 40, 5)
        .expect("query that wakes the doomed batcher");
    assert_eq!(
        during.status, "ok",
        "the batch before the death is answered"
    );

    // The supervisor respawns within its 2ms poll; later queries just work.
    let after = client.query(3, 0, 1, 4).expect("query after respawn");
    assert_eq!(after.status, "ok");
    assert_eq!(after.edges, before.edges, "the respawned engine agrees");

    let stats = client.stats(4).expect("stats");
    assert_eq!(
        stat(&stats, "batcher_restarts"),
        1,
        "one death, one respawn"
    );

    handle.shutdown();
    server
        .join()
        .expect("server thread")
        .expect("respawn is not fatal: run() still exits cleanly");
}

/// Past the restart bound the server refuses to keep accepting connections
/// it can never answer: `run()` returns the fatal error (the binary maps
/// this to a nonzero exit).
#[test]
fn repeated_batcher_deaths_fail_fast_with_an_error() {
    let (handle, mut client, server) = start_in_process(ServerConfig {
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });

    for round in 1..=4u64 {
        handle.chaos_kill_batcher();
        // Each kill is observed when the batcher wakes: every one of these
        // queries is still answered before its batcher dies.
        let reply = client
            .query(round, 0, 1, 4)
            .expect("query during kill round");
        assert_eq!(reply.status, "ok", "round {round} was answered");
        if round <= 3 {
            // Wait for the supervisor to log the respawn before re-killing,
            // so the four deaths cannot collapse into one flag swap.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                let stats = client.stats(100 + round).expect("stats");
                if stat(&stats, "batcher_restarts") == round {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "respawn {round} not observed in time"
                );
                thread::sleep(Duration::from_millis(2));
            }
        }
    }

    let fatal = server.join().expect("server thread");
    assert_eq!(
        fatal,
        Err(ServeError::BatcherFailed { deaths: 4 }),
        "the fourth death exhausts MAX_BATCHER_RESTARTS and fails fast"
    );
    // The fatal path runs a full shutdown: the client was hung up.
    assert!(client.recv().is_err(), "connections are closed, not wedged");
}
