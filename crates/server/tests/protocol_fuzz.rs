//! Hostile-client tests: the server must survive anything the wire can
//! carry — malformed JSON, truncated frames, corrupt length prefixes,
//! numeric overflow, mid-request disconnects — without panicking, wedging
//! the batcher, or poisoning a lock. Liveness is asserted the same way
//! after every attack: a fresh connection's `ping` must still answer.

use std::io::Write;
use std::net::TcpStream;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use spg_graph::generators::gnm_random;
use spg_server::{ServerConfig, ServerHandle, SpgClient, SpgServer};

fn start_server() -> (std::net::SocketAddr, ServerHandle, JoinHandle<()>) {
    let config = ServerConfig {
        batch_deadline: Duration::ZERO,
        max_frame_bytes: 64 << 10,
        ..ServerConfig::default()
    };
    let graph = gnm_random(30, 120, 0xF422);
    let server = SpgServer::bind(graph, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = thread::spawn(move || server.run().expect("serving loop"));
    (addr, handle, thread)
}

fn connect(addr: std::net::SocketAddr) -> SpgClient {
    let client = SpgClient::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    client
}

/// The liveness probe every attack is followed by.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut probe = connect(addr);
    let pong = probe.ping(u64::MAX).expect("server must stay up");
    assert_eq!(pong.status, "ok");
    assert_eq!(pong.id, Some(u64::MAX));
}

#[test]
fn malformed_payloads_get_error_responses_not_crashes() {
    let (addr, handle, server) = start_server();
    let attacks: &[&[u8]] = &[
        b"",
        b"{",
        b"}",
        b"[1,2",
        b"null",
        b"42",
        b"\"just a string\"",
        b"[]",
        b"{}",                                                           // no op
        b"{\"op\":\"query\"}",                                           // no id
        b"{\"id\":1,\"op\":\"teleport\"}",                               // unknown op
        b"{\"id\":1,\"op\":\"query\",\"s\":0}",                          // missing fields
        b"{\"id\":-1,\"op\":\"ping\"}",                                  // negative id
        b"{\"id\":1.5,\"op\":\"ping\"}",                                 // fractional id
        b"{\"id\":18446744073709551616,\"op\":\"ping\"}",                // id > u64::MAX
        b"{\"id\":1,\"op\":\"query\",\"s\":0,\"t\":1,\"k\":4294967296}", // k > u32::MAX
        b"{\"id\":1,\"op\":\"query\",\"s\":-3,\"t\":1,\"k\":4}",
        b"{\"id\":1,\"op\":\"query\",\"s\":\"zero\",\"t\":1,\"k\":4}",
        b"{\"id\":1,\"op\":query}", // bare word
        b"\xff\xfe\xfd\xfc",        // not UTF-8 at all
        b"{\"id\":1,\"op\":\"ping\",\"junk\":[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[",
    ];
    let mut client = connect(addr);
    for attack in attacks {
        client.send_raw(attack).expect("send attack");
        let reply = client.recv().expect("every framed payload is answered");
        assert_eq!(
            reply.status,
            "error",
            "hostile payload {:?} must be refused",
            String::from_utf8_lossy(attack)
        );
    }
    // The same connection still serves well-formed traffic afterwards.
    assert_eq!(client.ping(1).expect("ping").status, "ok");
    assert_alive(addr);
    handle.shutdown();
    server.join().expect("clean exit");
}

#[test]
fn wire_max_hop_bound_is_a_valid_query() {
    let (addr, handle, server) = start_server();
    let mut client = connect(addr);
    // k = u32::MAX is not an error: the engine clamps it to the graph.
    let reply = client.query(1, 0, 1, u32::MAX).expect("round trip");
    assert_eq!(reply.status, "ok");
    let clamped = reply.k.expect("ok replies echo clamped k");
    assert!(clamped < u32::MAX, "the engine clamps the hop bound");
    handle.shutdown();
    server.join().expect("clean exit");
}

#[test]
fn truncated_length_prefixes_and_mid_frame_disconnects_are_harmless() {
    let (addr, handle, server) = start_server();

    // 1: connect and say nothing.
    drop(TcpStream::connect(addr).expect("connect"));
    // 2: half a length prefix, then disconnect.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&[0x00, 0x00]).expect("write");
    drop(stream);
    // 3: a full prefix declaring 100 bytes, then only 3, then disconnect.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&[0, 0, 0, 100]).expect("write");
    stream.write_all(b"abc").expect("write");
    drop(stream);
    // 4: a prefix declaring the maximum possible frame, then disconnect.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&[0xff, 0xff, 0xff, 0xff]).expect("write");
    drop(stream);
    // 5: a valid query, then disconnect before reading the response.
    let mut client = connect(addr);
    client.send_query(9, 0, 1, 4).expect("send");
    drop(client);

    // Give the handler threads a beat to trip over the hangups.
    thread::sleep(Duration::from_millis(50));
    assert_alive(addr);
    handle.shutdown();
    server.join().expect("clean exit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Arbitrary framed garbage: the server answers (or refuses oversized
    // frames and hangs up) but never dies. One shared server across all
    // cases makes this a soak test of the connection registry too.
    #[test]
    fn arbitrary_framed_bytes_never_kill_the_server(payload in vec(0u8..255, 0..512)) {
        use std::sync::OnceLock;
        static SHARED: OnceLock<(std::net::SocketAddr, ServerHandle)> = OnceLock::new();
        let (addr, _) = SHARED.get_or_init(|| {
            let (addr, handle, _thread) = start_server();
            (addr, handle)
        });
        let mut client = connect(*addr);
        client.send_raw(&payload).expect("send");
        let reply = client.recv().expect("framed garbage is answered");
        prop_assert!(reply.status == "error" || reply.status == "ok");
        assert_alive(*addr);
    }
}
