//! PathEnum-style enumeration: a lightweight per-query index plus a
//! cost-based choice between DFS-based and join-based evaluation.
//!
//! PathEnum (Sun et al., SIGMOD'21) answers a hop-constrained s-t simple path
//! query in two steps: (1) build a small online index containing only the
//! vertices and edges that can participate in an answer path, and (2) pick a
//! DFS-based or a join-based enumeration plan for that index using estimated
//! result cardinalities. This module reproduces that structure on top of the
//! workspace substrate:
//!
//! * the index is the distance-filtered search space
//!   `{e(u,v) : Δ(s,u) + 1 + Δ(v,t) ≤ k}` materialised as a [`DiGraph`];
//! * cardinalities are estimated with a walk-count dynamic program over the
//!   index (number of length-bounded walks, an upper bound on the number of
//!   partial simple paths each plan materialises);
//! * the DFS plan runs the distance-cut DFS of [`crate::dfs::pruned_dfs`] on
//!   the index, the join plan runs [`crate::join::join_enumerate`] on it.

use spg_graph::hash::FxHashMap;
use spg_graph::{DiGraph, DistanceIndex, DistanceStrategy, EdgeSubgraph, VertexId};

use crate::dfs::pruned_dfs;
use crate::join::join_enumerate_with_stats;
use crate::sink::PathSink;

/// Evaluation plan selected by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEnumStrategy {
    /// Depth-first search with distance cuts over the index.
    DfsBased,
    /// Middle-split join of partial paths over the index.
    JoinBased,
}

/// The per-query PathEnum index.
#[derive(Debug, Clone)]
pub struct PathEnumIndex {
    s: VertexId,
    t: VertexId,
    k: u32,
    /// The search-space subgraph, over the host graph's vertex id space.
    index_graph: DiGraph,
    index_edges: usize,
    index_vertices: usize,
    build_scans: usize,
}

impl PathEnumIndex {
    /// Builds the index for query `⟨s, t, k⟩` on `g`.
    pub fn build(g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> PathEnumIndex {
        assert!(s != t, "queries require distinct endpoints");
        let dist = DistanceIndex::compute(g, s, t, k, DistanceStrategy::AdaptiveBidirectional);
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut scans = 0usize;
        if dist.is_feasible() {
            for u in dist.space_vertices() {
                for &v in g.out_neighbors(u) {
                    scans += 1;
                    if dist.edge_in_space(u, v) {
                        edges.push((u, v));
                    }
                }
            }
        }
        let subgraph = EdgeSubgraph::from_edges(edges);
        let index_edges = subgraph.edge_count();
        let index_vertices = subgraph.vertex_count();
        PathEnumIndex {
            s,
            t,
            k,
            index_graph: subgraph.to_graph(g.vertex_count()),
            index_edges,
            index_vertices,
            build_scans: scans,
        }
    }

    /// Number of edges retained in the index.
    pub fn edge_count(&self) -> usize {
        self.index_edges
    }

    /// Number of vertices incident to an index edge.
    pub fn vertex_count(&self) -> usize {
        self.index_vertices
    }

    /// Adjacency scans performed while building the index.
    pub fn build_scans(&self) -> usize {
        self.build_scans
    }

    /// The index materialised as a graph (same vertex id space as the host).
    pub fn graph(&self) -> &DiGraph {
        &self.index_graph
    }

    /// Approximate heap footprint of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.index_graph.memory_bytes()
    }

    /// Estimated cost of the DFS plan: number of hop-bounded walks from `s`
    /// of length ≤ k inside the index (an upper bound on DFS node
    /// expansions).
    pub fn estimated_dfs_cost(&self) -> f64 {
        self.walk_count_from(self.s, self.k, true)
    }

    /// Estimated cost of the join plan: forward walks of length ≤ ⌈k/2⌉ plus
    /// backward walks of length ≤ ⌊k/2⌋ (an upper bound on the partial paths
    /// each side materialises).
    pub fn estimated_join_cost(&self) -> f64 {
        let kf = self.k.div_ceil(2);
        let kb = self.k - kf;
        self.walk_count_from(self.s, kf, true) + self.walk_count_from(self.t, kb, false)
    }

    /// Chooses the cheaper plan according to the walk-count estimates.
    pub fn choose_strategy(&self) -> PathEnumStrategy {
        if self.estimated_join_cost() < self.estimated_dfs_cost() {
            PathEnumStrategy::JoinBased
        } else {
            PathEnumStrategy::DfsBased
        }
    }

    /// Enumerates all k-hop-constrained s-t simple paths using the plan the
    /// cost model selects.
    pub fn enumerate(&self, sink: &mut dyn PathSink) -> PathEnumStrategy {
        let strategy = self.choose_strategy();
        self.enumerate_with(strategy, sink);
        strategy
    }

    /// Enumerates with an explicitly chosen plan.
    pub fn enumerate_with(&self, strategy: PathEnumStrategy, sink: &mut dyn PathSink) {
        if self.index_edges == 0 {
            return;
        }
        match strategy {
            PathEnumStrategy::DfsBased => {
                pruned_dfs(&self.index_graph, self.s, self.t, self.k, sink);
            }
            PathEnumStrategy::JoinBased => {
                join_enumerate_with_stats(&self.index_graph, self.s, self.t, self.k, sink);
            }
        }
    }

    /// Number of walks (vertex repetitions allowed) of length ≤ `depth`
    /// starting at `origin`, following out-edges (`forward = true`) or
    /// in-edges (`forward = false`) of the index. Saturates gracefully via
    /// `f64`.
    fn walk_count_from(&self, origin: VertexId, depth: u32, forward: bool) -> f64 {
        let mut current: FxHashMap<VertexId, f64> = FxHashMap::default();
        current.insert(origin, 1.0);
        let mut total = 1.0f64;
        for _ in 0..depth {
            let mut next: FxHashMap<VertexId, f64> = FxHashMap::default();
            for (&v, &count) in &current {
                let neighbors = if forward {
                    self.index_graph.out_neighbors(v)
                } else {
                    self.index_graph.in_neighbors(v)
                };
                for &w in neighbors {
                    *next.entry(w).or_insert(0.0) += count;
                }
            }
            total += next.values().sum::<f64>();
            if next.is_empty() {
                break;
            }
            current = next;
        }
        total
    }
}

/// Convenience wrapper: build the index and enumerate in one call (the shape
/// used by the benchmark harness).
pub fn pathenum_enumerate(g: &DiGraph, s: VertexId, t: VertexId, k: u32, sink: &mut dyn PathSink) {
    PathEnumIndex::build(g, s, t, k).enumerate(sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::naive_dfs;
    use crate::sink::{CollectPaths, CountPaths};
    use spg_graph::generators::{gnm_random, layered_dag};

    #[test]
    fn both_plans_match_naive_dfs() {
        for seed in 0..15u64 {
            let n = 10;
            let g = gnm_random(n, 30, 300 + seed);
            for k in 2..7u32 {
                let mut expected = CollectPaths::new();
                naive_dfs(&g, 0, (n - 1) as u32, k, &mut expected);
                let expected = expected.into_sorted();

                let index = PathEnumIndex::build(&g, 0, (n - 1) as u32, k);
                for strategy in [PathEnumStrategy::DfsBased, PathEnumStrategy::JoinBased] {
                    let mut got = CollectPaths::new();
                    index.enumerate_with(strategy, &mut got);
                    assert_eq!(
                        expected,
                        got.into_sorted(),
                        "seed={seed} k={k} {strategy:?}"
                    );
                }
                let mut auto = CollectPaths::new();
                index.enumerate(&mut auto);
                assert_eq!(expected, auto.into_sorted(), "seed={seed} k={k} auto");
            }
        }
    }

    #[test]
    fn index_is_never_larger_than_the_graph() {
        let g = gnm_random(200, 1500, 9);
        let index = PathEnumIndex::build(&g, 0, 199, 4);
        assert!(index.edge_count() <= g.edge_count());
        assert!(index.vertex_count() <= g.vertex_count());
        assert!(index.memory_bytes() > 0);
        assert!(index.build_scans() > 0);
        assert_eq!(index.graph().vertex_count(), g.vertex_count());
    }

    #[test]
    fn cost_model_prefers_join_on_wide_dags() {
        // A wide layered DAG has exponentially many forward walks of length k
        // but the halves are much smaller, so the join plan must win.
        let g = layered_dag(7, 4);
        let t = (7 * 4 - 1) as u32; // a sink-layer vertex
        let index = PathEnumIndex::build(&g, 0, t, 6);
        assert!(index.estimated_join_cost() <= index.estimated_dfs_cost());
        assert_eq!(index.choose_strategy(), PathEnumStrategy::JoinBased);
    }

    #[test]
    fn cost_model_prefers_dfs_on_tiny_spaces() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let index = PathEnumIndex::build(&g, 0, 3, 3);
        assert_eq!(index.choose_strategy(), PathEnumStrategy::DfsBased);
        let mut sink = CountPaths::new();
        index.enumerate(&mut sink);
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn infeasible_queries_produce_empty_index() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let index = PathEnumIndex::build(&g, 0, 3, 5);
        assert_eq!(index.edge_count(), 0);
        let mut sink = CountPaths::new();
        index.enumerate(&mut sink);
        assert_eq!(sink.count(), 0);
        let mut sink = CountPaths::new();
        pathenum_enumerate(&g, 0, 3, 5, &mut sink);
        assert_eq!(sink.count(), 0);
    }
}
