//! DFS-based hop-constrained s-t simple path enumeration.
//!
//! Three variants of increasing sophistication:
//!
//! * [`naive_dfs`] — exhaustive DFS with only the hop budget as a cut
//!   (`O(|V|^k)` in the worst case, the strawman of §2.3);
//! * [`pruned_dfs`] — DFS with the standard distance cut
//!   `depth + Δ(v, t) ≤ k`, the backbone shared by TDFS-style algorithms;
//! * [`bc_dfs`] — barrier-based DFS in the spirit of Peng et al. (BC-DFS):
//!   when the subtree below a vertex fails *without ever being blocked by a
//!   stack vertex*, the vertex is assigned a barrier budget under which it
//!   will never be explored again.

use spg_graph::hash::FxHashMap;
use spg_graph::traversal::{bfs_distances_to, BfsOptions};
use spg_graph::{DiGraph, VertexId};

use crate::sink::PathSink;

/// Exhaustive DFS enumeration of all s-t simple paths of length ≤ `k`.
pub fn naive_dfs(g: &DiGraph, s: VertexId, t: VertexId, k: u32, sink: &mut dyn PathSink) {
    if s == t {
        return;
    }
    let mut stack = vec![s];
    naive_rec(g, t, k, &mut stack, sink);
}

fn naive_rec(
    g: &DiGraph,
    t: VertexId,
    budget: u32,
    stack: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
) -> bool {
    let cur = *stack.last().unwrap(); // spg-analyze: allow(no-panic) — loop guard: the stack is non-empty
    if cur == t {
        return sink.accept(stack);
    }
    if budget == 0 {
        return true;
    }
    for &nxt in g.out_neighbors(cur) {
        if stack.contains(&nxt) {
            continue;
        }
        stack.push(nxt);
        let keep_going = naive_rec(g, t, budget - 1, stack, sink);
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// DFS enumeration with the distance cut `depth + Δ(v, t) ≤ k`.
///
/// The backward distances are computed once per query by a hop-bounded BFS
/// from `t` on the reversed adjacency.
pub fn pruned_dfs(g: &DiGraph, s: VertexId, t: VertexId, k: u32, sink: &mut dyn PathSink) {
    if s == t {
        return;
    }
    let dist_t = bfs_distances_to(g, t, BfsOptions::bounded(k));
    if dist_t.get(&s).copied().unwrap_or(u32::MAX) > k {
        return;
    }
    let mut stack = vec![s];
    pruned_rec(g, t, k, &dist_t, &mut stack, sink);
}

fn pruned_rec(
    g: &DiGraph,
    t: VertexId,
    budget: u32,
    dist_t: &FxHashMap<VertexId, u32>,
    stack: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
) -> bool {
    let cur = *stack.last().unwrap(); // spg-analyze: allow(no-panic) — loop guard: the stack is non-empty
    if cur == t {
        return sink.accept(stack);
    }
    if budget == 0 {
        return true;
    }
    for &nxt in g.out_neighbors(cur) {
        let d = dist_t.get(&nxt).copied().unwrap_or(u32::MAX);
        if d == u32::MAX || d > budget - 1 {
            continue;
        }
        if stack.contains(&nxt) {
            continue;
        }
        stack.push(nxt);
        let keep_going = pruned_rec(g, t, budget - 1, dist_t, stack, sink);
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Barrier-based DFS (BC-DFS).
///
/// In addition to the distance cut, every vertex carries a *barrier*: the
/// largest remaining budget under which the vertex has been proven to be a
/// dead end *independently of the current stack*. A subtree failure only
/// raises the barrier when no stack vertex was responsible for blocking the
/// search (otherwise the failure might not repeat once the stack shrinks),
/// which keeps the pruning sound.
pub fn bc_dfs(g: &DiGraph, s: VertexId, t: VertexId, k: u32, sink: &mut dyn PathSink) {
    if s == t {
        return;
    }
    let dist_t = bfs_distances_to(g, t, BfsOptions::bounded(k));
    if dist_t.get(&s).copied().unwrap_or(u32::MAX) > k {
        return;
    }
    let mut state = BcState {
        dist_t,
        barrier: FxHashMap::default(),
        stack: vec![s],
        stopped: false,
    };
    bc_rec(g, t, k, &mut state, sink);
}

struct BcState {
    dist_t: FxHashMap<VertexId, u32>,
    /// `barrier[v] = b` means: exploring `v` with remaining budget ≤ `b`
    /// cannot produce any output path, regardless of the stack.
    barrier: FxHashMap<VertexId, u32>,
    stack: Vec<VertexId>,
    stopped: bool,
}

/// Result of exploring one subtree.
struct BcOutcome {
    /// At least one path was emitted below this vertex.
    found: bool,
    /// The subtree was (possibly) limited by a vertex currently on the stack,
    /// so its failure cannot be cached as a barrier.
    blocked_by_stack: bool,
}

fn bc_rec(
    g: &DiGraph,
    t: VertexId,
    budget: u32,
    st: &mut BcState,
    sink: &mut dyn PathSink,
) -> BcOutcome {
    let cur = *st.stack.last().unwrap(); // spg-analyze: allow(no-panic) — loop guard: the stack is non-empty
    if cur == t {
        if !sink.accept(&st.stack) {
            st.stopped = true;
        }
        return BcOutcome {
            found: true,
            blocked_by_stack: false,
        };
    }
    if budget == 0 {
        return BcOutcome {
            found: false,
            blocked_by_stack: false,
        };
    }
    let mut found = false;
    let mut blocked = false;
    for &nxt in g.out_neighbors(cur) {
        if st.stopped {
            break;
        }
        let d = st.dist_t.get(&nxt).copied().unwrap_or(u32::MAX);
        if d == u32::MAX || d > budget - 1 {
            continue;
        }
        if st.stack.contains(&nxt) {
            // A stack vertex blocked this branch: the failure of `cur` (if it
            // fails) depends on the current stack and must not become a
            // barrier.
            blocked = true;
            continue;
        }
        if let Some(&b) = st.barrier.get(&nxt) {
            if budget - 1 <= b {
                continue;
            }
        }
        st.stack.push(nxt);
        let outcome = bc_rec(g, t, budget - 1, st, sink);
        st.stack.pop();
        found |= outcome.found;
        blocked |= outcome.blocked_by_stack;
        if !outcome.found && !outcome.blocked_by_stack {
            // Stack-independent failure: remember it.
            let entry = st.barrier.entry(nxt).or_insert(0);
            *entry = (*entry).max(budget - 1);
        }
    }
    BcOutcome {
        found,
        blocked_by_stack: blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectPaths, CountPaths};
    use spg_graph::generators::{gnm_random, layered_dag};

    fn figure1() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (1, 6),
                (2, 3),
                (2, 5),
                (4, 5),
                (5, 3),
                (5, 1),
                (5, 7),
                (6, 7),
                (7, 4),
            ],
        )
    }

    #[test]
    fn figure1b_has_exactly_five_paths_for_k4() {
        // s = 0, t = 3, k = 4 must yield the five paths of Figure 1(b).
        for f in [naive_dfs, pruned_dfs, bc_dfs] {
            let mut sink = CollectPaths::new();
            f(&figure1(), 0, 3, 4, &mut sink);
            let paths = sink.into_sorted();
            assert_eq!(
                paths,
                vec![
                    vec![0, 1, 2, 3],
                    vec![0, 1, 2, 5, 3],
                    vec![0, 1, 4, 5, 3],
                    vec![0, 2, 3],
                    vec![0, 2, 5, 3],
                ]
            );
        }
    }

    #[test]
    fn all_dfs_variants_agree_on_random_graphs() {
        for seed in 0..15u64 {
            let n = 10;
            let g = gnm_random(n, 30, seed);
            for k in 2..7u32 {
                let mut a = CollectPaths::new();
                naive_dfs(&g, 0, (n - 1) as u32, k, &mut a);
                let mut b = CollectPaths::new();
                pruned_dfs(&g, 0, (n - 1) as u32, k, &mut b);
                let mut c = CollectPaths::new();
                bc_dfs(&g, 0, (n - 1) as u32, k, &mut c);
                let a = a.into_sorted();
                assert_eq!(a, b.into_sorted(), "pruned seed={seed} k={k}");
                assert_eq!(a, c.into_sorted(), "bc seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn layered_dag_path_count_is_width_power() {
        // 4 layers of width 3: 9 paths from vertex 0 to the single sink vertex 9.
        let g = layered_dag(4, 3);
        let mut sink = CountPaths::new();
        pruned_dfs(&g, 0, 9, 3, &mut sink);
        assert_eq!(sink.count(), 9);
        // With k = 2 no path fits.
        let mut sink = CountPaths::new();
        pruned_dfs(&g, 0, 9, 2, &mut sink);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn early_stop_via_sink_limit() {
        let g = layered_dag(4, 3);
        let mut sink = CountPaths::with_limit(5);
        naive_dfs(&g, 0, 9, 3, &mut sink);
        assert_eq!(sink.count(), 5);
        let mut sink = CountPaths::with_limit(5);
        bc_dfs(&g, 0, 9, 3, &mut sink);
        assert_eq!(sink.count(), 5);
    }

    #[test]
    fn same_source_and_target_yields_nothing() {
        let g = figure1();
        let mut sink = CountPaths::new();
        naive_dfs(&g, 2, 2, 4, &mut sink);
        pruned_dfs(&g, 2, 2, 4, &mut sink);
        bc_dfs(&g, 2, 2, 4, &mut sink);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn unreachable_target_yields_nothing() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        for f in [naive_dfs, pruned_dfs, bc_dfs] {
            let mut sink = CountPaths::new();
            f(&g, 0, 3, 8, &mut sink);
            assert_eq!(sink.count(), 0);
        }
    }
}
