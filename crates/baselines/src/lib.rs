//! # spg-baselines — enumeration and subgraph baselines for EVE
//!
//! The paper compares EVE against the straightforward way of generating a
//! hop-constrained s-t simple path graph: enumerate every simple path and
//! union its edges. This crate implements the enumeration algorithms used as
//! baselines in the evaluation, plus the KHSQ / KHSQ+ k-hop subgraph
//! construction that Tables 4–5 and Figure 12(b) use as an alternative search
//! space:
//!
//! * [`dfs`] — naive DFS, distance-cut DFS and barrier-based BC-DFS;
//! * [`fpt`] — the colour-coding k-path oracle and the Theorem 2.7 reduction;
//! * [`join`] — JOIN-style middle-split enumeration;
//! * [`pathenum`] — PathEnum-style index + cost-based plan selection;
//! * [`khsq`] — `G^k_st` construction (KHSQ and KHSQ+);
//! * [`spg_baseline`] — `SPG_k` generation by path-union over any of the
//!   enumerators, optionally restricted to `G^k_st`;
//! * [`sink`] — path sinks (collect / count / edge-union).
//!
//! All algorithms work directly on [`spg_graph::DiGraph`] and are
//! cross-validated against each other in unit, integration and property
//! tests.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfs;
pub mod fpt;
pub mod join;
pub mod khsq;
pub mod pathenum;
pub mod sink;
pub mod spg_baseline;

pub use dfs::{bc_dfs, naive_dfs, pruned_dfs};
pub use fpt::{has_exact_k_path, has_k_path_within, spg_by_color_coding, ColorCodingConfig};
pub use join::{join_enumerate, join_enumerate_with_stats, join_memory_estimate, JoinStats};
pub use khsq::{khsq, khsq_plus, KhsqStats};
pub use pathenum::{pathenum_enumerate, PathEnumIndex, PathEnumStrategy};
pub use sink::{CollectPaths, CountPaths, EdgeUnion, PathSink};
pub use spg_baseline::{spg_by_enumeration, spg_by_enumeration_on_gkst, EnumerationAlgorithm};
