//! JOIN-style hop-constrained s-t simple path enumeration.
//!
//! Following the structure of the JOIN algorithm of Peng et al. (VLDB'19 /
//! VLDBJ'21), the hop budget `k` is split into a forward half
//! `k_f = ⌈k/2⌉` and a backward half `k_b = k − k_f`. Partial simple paths of
//! length exactly `k_f` from `s` (that have not yet reached `t`) are bucketed
//! by their endpoint; partial simple paths of length ≤ `k_b` ending at `t`
//! are bucketed by their start vertex. Joining the two buckets on the shared
//! middle vertex — keeping only vertex-disjoint pairs within the hop budget —
//! produces every s-t simple path of length > `k_f` exactly once; paths of
//! length ≤ `k_f` are emitted directly during the forward enumeration.
//!
//! Storing the partial paths is what makes JOIN's space footprint large
//! (Figure 9 of the paper); [`join_memory_estimate`] exposes that footprint
//! to the benchmark harness.

use spg_graph::hash::FxHashMap;
use spg_graph::traversal::{bfs_distances_from, bfs_distances_to, BfsOptions};
use spg_graph::{DiGraph, VertexId};

use crate::sink::PathSink;

/// Enumerates all s-t simple paths of length ≤ `k` using the join strategy.
pub fn join_enumerate(g: &DiGraph, s: VertexId, t: VertexId, k: u32, sink: &mut dyn PathSink) {
    join_enumerate_with_stats(g, s, t, k, sink);
}

/// Statistics of one join-based enumeration (partial path counts drive the
/// space accounting of Figure 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Forward partial simple paths materialised (length exactly `k_f`).
    pub forward_partials: usize,
    /// Backward partial simple paths materialised (length ≤ `k_b`).
    pub backward_partials: usize,
    /// Join pairs examined.
    pub pairs_examined: usize,
    /// Estimated bytes used to store the partial paths.
    pub partial_bytes: usize,
}

/// Same as [`join_enumerate`] but returns the [`JoinStats`].
pub fn join_enumerate_with_stats(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    sink: &mut dyn PathSink,
) -> JoinStats {
    let mut stats = JoinStats::default();
    if s == t || k == 0 {
        return stats;
    }
    let dist_t = bfs_distances_to(g, t, BfsOptions::bounded(k));
    if dist_t.get(&s).copied().unwrap_or(u32::MAX) > k {
        return stats;
    }
    let dist_s = bfs_distances_from(g, s, BfsOptions::bounded(k));
    let kf = k.div_ceil(2);
    let kb = k - kf;

    // Forward phase: emit complete paths of length ≤ k_f, collect partials of
    // length exactly k_f bucketed by endpoint.
    let mut forward_partials: FxHashMap<VertexId, Vec<Vec<VertexId>>> = FxHashMap::default();
    {
        let mut stack = vec![s];
        let mut stopped = false;
        forward_rec(
            g,
            t,
            kf,
            k,
            &dist_t,
            &mut stack,
            sink,
            &mut forward_partials,
            &mut stopped,
        );
        if stopped {
            return stats;
        }
    }
    stats.forward_partials = forward_partials.values().map(Vec::len).sum();

    if kb == 0 || forward_partials.is_empty() {
        stats.partial_bytes = partial_bytes(&forward_partials, &FxHashMap::default());
        return stats;
    }

    // Backward phase: partial simple paths ending at t of length 1..=k_b,
    // bucketed by their first vertex. Only vertices that the forward phase
    // can actually reach within k_f hops matter.
    let mut backward_partials: FxHashMap<VertexId, Vec<Vec<VertexId>>> = FxHashMap::default();
    {
        let mut stack = vec![t];
        backward_rec(g, s, kb, &dist_s, kf, &mut stack, &mut backward_partials);
    }
    stats.backward_partials = backward_partials.values().map(Vec::len).sum();
    stats.partial_bytes = partial_bytes(&forward_partials, &backward_partials);

    // Join phase.
    let mut middles: Vec<VertexId> = forward_partials.keys().copied().collect();
    middles.sort_unstable();
    'outer: for m in middles {
        let fronts = &forward_partials[&m];
        let Some(backs) = backward_partials.get(&m) else {
            continue;
        };
        for front in fronts {
            for back in backs {
                stats.pairs_examined += 1;
                if front.len() - 1 + back.len() - 1 > k as usize {
                    continue;
                }
                // Vertex-disjointness (the middle vertex is shared by design;
                // `back` is stored reversed: [m, ..., t]).
                if back[1..].iter().any(|v| front.contains(v)) {
                    continue;
                }
                let mut path = front.clone();
                path.extend_from_slice(&back[1..]);
                if !sink.accept(&path) {
                    break 'outer;
                }
            }
        }
    }
    stats
}

#[allow(clippy::too_many_arguments)]
fn forward_rec(
    g: &DiGraph,
    t: VertexId,
    remaining: u32,
    k: u32,
    dist_t: &FxHashMap<VertexId, u32>,
    stack: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
    partials: &mut FxHashMap<VertexId, Vec<Vec<VertexId>>>,
    stopped: &mut bool,
) {
    let cur = *stack.last().unwrap(); // spg-analyze: allow(no-panic) — loop guard: the stack is non-empty
    if cur == t {
        if !sink.accept(stack) {
            *stopped = true;
        }
        return;
    }
    if remaining == 0 {
        // Partial of length exactly k_f; only useful if t is still reachable
        // within the leftover budget.
        let used = stack.len() as u32 - 1;
        let leftover = k - used;
        if dist_t.get(&cur).copied().unwrap_or(u32::MAX) <= leftover {
            partials.entry(cur).or_default().push(stack.clone());
        }
        return;
    }
    for &nxt in g.out_neighbors(cur) {
        if *stopped {
            return;
        }
        let used_after = stack.len() as u32;
        let leftover_after = k - used_after;
        if dist_t.get(&nxt).copied().unwrap_or(u32::MAX) > leftover_after {
            continue;
        }
        if stack.contains(&nxt) {
            continue;
        }
        stack.push(nxt);
        forward_rec(
            g,
            t,
            remaining - 1,
            k,
            dist_t,
            stack,
            sink,
            partials,
            stopped,
        );
        stack.pop();
    }
}

/// Builds backward partial paths stored as `[m, ..., t]` (start vertex first).
fn backward_rec(
    g: &DiGraph,
    s: VertexId,
    remaining: u32,
    dist_s: &FxHashMap<VertexId, u32>,
    kf: u32,
    stack: &mut Vec<VertexId>,
    partials: &mut FxHashMap<VertexId, Vec<Vec<VertexId>>>,
) {
    let cur = *stack.last().unwrap(); // spg-analyze: allow(no-panic) — loop guard: the stack is non-empty
    if stack.len() > 1 {
        // `cur` is a candidate middle vertex. The forward phase only produces
        // partials whose endpoint is at forward distance ≤ k_f from s.
        if dist_s.get(&cur).copied().unwrap_or(u32::MAX) <= kf && cur != s {
            let mut path: Vec<VertexId> = stack.clone();
            path.reverse();
            partials.entry(cur).or_default().push(path);
        }
    }
    if remaining == 0 {
        return;
    }
    for &prev in g.in_neighbors(cur) {
        if prev == s || stack.contains(&prev) {
            continue;
        }
        stack.push(prev);
        backward_rec(g, s, remaining - 1, dist_s, kf, stack, partials);
        stack.pop();
    }
}

fn partial_bytes(
    forward: &FxHashMap<VertexId, Vec<Vec<VertexId>>>,
    backward: &FxHashMap<VertexId, Vec<Vec<VertexId>>>,
) -> usize {
    let count_bytes = |m: &FxHashMap<VertexId, Vec<Vec<VertexId>>>| -> usize {
        m.values()
            .flat_map(|paths| paths.iter())
            .map(|p| {
                p.len() * std::mem::size_of::<VertexId>() + std::mem::size_of::<Vec<VertexId>>()
            })
            .sum()
    };
    count_bytes(forward) + count_bytes(backward)
}

/// Estimated bytes JOIN needs for a query: the partial-path storage measured
/// by actually running the two enumeration phases (Figure 9 / Figure 10(a)).
pub fn join_memory_estimate(g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> usize {
    let mut sink = crate::sink::CountPaths::new();
    let stats = join_enumerate_with_stats(g, s, t, k, &mut sink);
    stats.partial_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::naive_dfs;
    use crate::sink::{CollectPaths, CountPaths};
    use spg_graph::generators::{gnm_random, layered_dag};

    #[test]
    fn join_matches_naive_dfs_on_random_graphs() {
        for seed in 0..20u64 {
            let n = 10;
            let g = gnm_random(n, 28, 900 + seed);
            for k in 2..8u32 {
                let mut expected = CollectPaths::new();
                naive_dfs(&g, 0, (n - 1) as u32, k, &mut expected);
                let mut got = CollectPaths::new();
                join_enumerate(&g, 0, (n - 1) as u32, k, &mut got);
                assert_eq!(
                    expected.into_sorted(),
                    got.into_sorted(),
                    "seed={seed} k={k}"
                );
            }
        }
    }

    #[test]
    fn join_counts_layered_dag_paths() {
        let g = layered_dag(5, 3); // 3^3 = 27 paths of length 4 end at one sink vertex
        let mut sink = CountPaths::new();
        let stats = join_enumerate_with_stats(&g, 0, 12, 4, &mut sink);
        assert_eq!(sink.count(), 27);
        assert!(stats.forward_partials > 0);
        assert!(stats.partial_bytes > 0);
    }

    #[test]
    fn join_handles_infeasible_queries() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let mut sink = CountPaths::new();
        let stats = join_enumerate_with_stats(&g, 0, 3, 6, &mut sink);
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.forward_partials, 0);
        assert_eq!(join_memory_estimate(&g, 0, 3, 6), 0);
    }

    #[test]
    fn join_respects_sink_early_stop() {
        let g = layered_dag(5, 3);
        let mut sink = CountPaths::with_limit(10);
        join_enumerate(&g, 0, 12, 4, &mut sink);
        assert!(sink.count() <= 10);
    }

    #[test]
    fn memory_estimate_grows_with_k() {
        let g = gnm_random(60, 400, 7);
        let small = join_memory_estimate(&g, 0, 59, 3);
        let large = join_memory_estimate(&g, 0, 59, 6);
        assert!(large >= small);
    }
}
