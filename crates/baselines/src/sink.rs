//! Output sinks for path enumeration.
//!
//! Every enumerator in this crate reports paths through a [`PathSink`], so
//! the same algorithm can be used to materialise paths, count them (the path
//! counts of Figure 2(b)), or union their edges into a simple path graph
//! (the baseline way of answering an `SPG_k` query, §6.2).

use spg_graph::hash::FxHashSet;
use spg_graph::{EdgeSubgraph, VertexId};

/// Consumer of enumerated s-t simple paths.
pub trait PathSink {
    /// Called once per enumerated path (a vertex sequence from `s` to `t`).
    /// Returning `false` asks the enumerator to stop early.
    fn accept(&mut self, path: &[VertexId]) -> bool;
}

/// Collects every enumerated path.
#[derive(Debug, Default, Clone)]
pub struct CollectPaths {
    paths: Vec<Vec<VertexId>>,
}

impl CollectPaths {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected paths, in enumeration order.
    pub fn paths(&self) -> &[Vec<VertexId>] {
        &self.paths
    }

    /// The collected paths, sorted lexicographically (useful for comparing
    /// two enumerators that emit paths in different orders).
    pub fn into_sorted(mut self) -> Vec<Vec<VertexId>> {
        self.paths.sort();
        self.paths
    }

    /// Number of collected paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

impl PathSink for CollectPaths {
    fn accept(&mut self, path: &[VertexId]) -> bool {
        self.paths.push(path.to_vec());
        true
    }
}

/// Counts enumerated paths without storing them.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountPaths {
    count: u64,
    limit: Option<u64>,
}

impl CountPaths {
    /// Counter without a limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter that stops the enumeration after `limit` paths — the paper
    /// caps runs with a time budget; a path cap plays the same role in tests.
    pub fn with_limit(limit: u64) -> Self {
        CountPaths {
            count: 0,
            limit: Some(limit),
        }
    }

    /// Number of paths seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl PathSink for CountPaths {
    fn accept(&mut self, _path: &[VertexId]) -> bool {
        self.count += 1;
        match self.limit {
            Some(limit) => self.count < limit,
            None => true,
        }
    }
}

/// Unions the edges of every enumerated path — the straightforward baseline
/// for generating `SPG_k(s, t)` (§6.2).
#[derive(Debug, Default, Clone)]
pub struct EdgeUnion {
    edges: FxHashSet<(VertexId, VertexId)>,
    paths: u64,
}

impl EdgeUnion {
    /// Empty union.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct edges collected.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of paths contributing to the union.
    pub fn path_count(&self) -> u64 {
        self.paths
    }

    /// The union as an [`EdgeSubgraph`].
    pub fn into_subgraph(self) -> EdgeSubgraph {
        EdgeSubgraph::from_edges(self.edges)
    }
}

impl PathSink for EdgeUnion {
    fn accept(&mut self, path: &[VertexId]) -> bool {
        self.paths += 1;
        for w in path.windows(2) {
            self.edges.insert((w[0], w[1]));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_paths_stores_everything() {
        let mut sink = CollectPaths::new();
        assert!(sink.accept(&[0, 1, 2]));
        assert!(sink.accept(&[0, 2]));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(sink.paths()[1], vec![0, 2]);
        let sorted = sink.into_sorted();
        assert_eq!(sorted, vec![vec![0, 1, 2], vec![0, 2]]);
    }

    #[test]
    fn count_paths_with_limit_stops() {
        let mut sink = CountPaths::with_limit(2);
        assert!(sink.accept(&[0, 1]));
        assert!(!sink.accept(&[0, 2]));
        assert_eq!(sink.count(), 2);
        let mut unlimited = CountPaths::new();
        for _ in 0..5 {
            assert!(unlimited.accept(&[0, 1]));
        }
        assert_eq!(unlimited.count(), 5);
    }

    #[test]
    fn edge_union_dedups_shared_edges() {
        let mut sink = EdgeUnion::new();
        sink.accept(&[0, 1, 2]);
        sink.accept(&[0, 1, 3]);
        assert_eq!(sink.path_count(), 2);
        assert_eq!(sink.edge_count(), 3);
        let sub = sink.into_subgraph();
        assert!(sub.contains(0, 1));
        assert!(sub.contains(1, 3));
    }
}
