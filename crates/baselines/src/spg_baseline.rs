//! Baseline generation of `SPG_k(s, t)` by enumerating all simple paths and
//! unioning their edges (the "straightforward solution" of §1.2 / §6.2).
//!
//! Any of this crate's enumerators can serve as the engine; the paper's
//! evaluation uses JOIN and PathEnum as the strongest baselines, optionally
//! restricted to the `G^k_st` subgraph computed by KHSQ+ (Table 5).

use spg_graph::{DiGraph, EdgeSubgraph, VertexId};

use crate::dfs::{bc_dfs, naive_dfs, pruned_dfs};
use crate::join::join_enumerate;
use crate::khsq::khsq_plus;
use crate::pathenum::pathenum_enumerate;
use crate::sink::EdgeUnion;

/// The enumeration algorithms available as `SPG_k` baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnumerationAlgorithm {
    /// Exhaustive DFS (no pruning).
    NaiveDfs,
    /// DFS with the distance cut.
    PrunedDfs,
    /// Barrier-based DFS (BC-DFS).
    BcDfs,
    /// Middle-split join (JOIN).
    Join,
    /// Index + cost-based plan selection (PathEnum).
    PathEnum,
}

impl EnumerationAlgorithm {
    /// All algorithms, strongest baselines last.
    pub const ALL: [EnumerationAlgorithm; 5] = [
        EnumerationAlgorithm::NaiveDfs,
        EnumerationAlgorithm::PrunedDfs,
        EnumerationAlgorithm::BcDfs,
        EnumerationAlgorithm::Join,
        EnumerationAlgorithm::PathEnum,
    ];

    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            EnumerationAlgorithm::NaiveDfs => "NaiveDFS",
            EnumerationAlgorithm::PrunedDfs => "PrunedDFS",
            EnumerationAlgorithm::BcDfs => "BC-DFS",
            EnumerationAlgorithm::Join => "JOIN",
            EnumerationAlgorithm::PathEnum => "PathEnum",
        }
    }

    /// Runs the algorithm, unioning every enumerated path into an edge set.
    pub fn enumerate_union(self, g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> EdgeUnion {
        let mut union = EdgeUnion::new();
        match self {
            EnumerationAlgorithm::NaiveDfs => naive_dfs(g, s, t, k, &mut union),
            EnumerationAlgorithm::PrunedDfs => pruned_dfs(g, s, t, k, &mut union),
            EnumerationAlgorithm::BcDfs => bc_dfs(g, s, t, k, &mut union),
            EnumerationAlgorithm::Join => join_enumerate(g, s, t, k, &mut union),
            EnumerationAlgorithm::PathEnum => pathenum_enumerate(g, s, t, k, &mut union),
        }
        union
    }
}

/// Generates `SPG_k(s, t)` by enumerating all hop-constrained simple paths
/// with `algorithm` and unioning their edges.
pub fn spg_by_enumeration(
    algorithm: EnumerationAlgorithm,
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
) -> EdgeSubgraph {
    algorithm.enumerate_union(g, s, t, k).into_subgraph()
}

/// Generates `SPG_k(s, t)` by first restricting the search to the `G^k_st`
/// subgraph (computed with KHSQ+) and then enumerating on that subgraph — the
/// enhanced baselines of Table 5.
pub fn spg_by_enumeration_on_gkst(
    algorithm: EnumerationAlgorithm,
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
) -> EdgeSubgraph {
    let (gkst, _) = khsq_plus(g, s, t, k);
    if gkst.is_empty() {
        return gkst;
    }
    let restricted = gkst.to_graph(g.vertex_count());
    spg_by_enumeration(algorithm, &restricted, s, t, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::generators::gnm_random;

    #[test]
    fn all_baselines_agree_on_the_simple_path_graph() {
        for seed in 0..10u64 {
            let n = 12;
            let g = gnm_random(n, 40, 700 + seed);
            for k in 2..7u32 {
                let reference =
                    spg_by_enumeration(EnumerationAlgorithm::NaiveDfs, &g, 0, (n - 1) as u32, k);
                for alg in EnumerationAlgorithm::ALL {
                    let got = spg_by_enumeration(alg, &g, 0, (n - 1) as u32, k);
                    assert_eq!(reference, got, "{} seed={seed} k={k}", alg.name());
                    let on_gkst = spg_by_enumeration_on_gkst(alg, &g, 0, (n - 1) as u32, k);
                    assert_eq!(
                        reference,
                        on_gkst,
                        "{} on G^k_st seed={seed} k={k}",
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn union_reports_path_and_edge_counts() {
        let g = spg_graph::generators::layered_dag(4, 3);
        let union = EnumerationAlgorithm::PrunedDfs.enumerate_union(&g, 0, 9, 3);
        assert_eq!(union.path_count(), 9);
        // SPG contains only the edges between consecutive layers on the
        // 0 -> 9 corridor: every layer-0/1/2 vertex participates.
        assert!(union.edge_count() > 0);
        assert!(union.edge_count() <= g.edge_count());
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            EnumerationAlgorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), EnumerationAlgorithm::ALL.len());
    }
}
