//! Colour-coding FPT algorithm for the Directed k-(s,t)-Path problem and the
//! Theorem 2.7 reduction from `SPG_k` generation to it.
//!
//! Theorem 2.7 of the paper shows that `SPG_k(s, t)` generation is
//! fixed-parameter tractable: deciding whether an edge `e(u, v)` belongs to
//! `SPG_k` reduces to Directed k'-(s,t)-Path queries on an auxiliary graph in
//! which every *other* edge is subdivided (so any odd-length s-t simple path
//! must cross `e(u, v)`). The paper immediately notes that the resulting
//! algorithm, while theoretically appealing, "has a significant failure rate"
//! and is far from practical — this module exists to make that part of the
//! paper reproducible and testable, not to compete with EVE.
//!
//! The k-path decision procedure is the classic colour-coding algorithm of
//! Alon, Yuster and Zwick: colour the vertices with `k + 1` colours uniformly
//! at random, search for a *colourful* path (all colours distinct) with a
//! subset dynamic program in `O(2^k |E|)`, and repeat enough trials to drive
//! the one-sided error down. Since a simple path of `k` edges has `k + 1`
//! vertices, it is colourful with probability `(k+1)! / (k+1)^{k+1}`, so the
//! error after `r` trials is `(1 − (k+1)!/(k+1)^{k+1})^r`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spg_graph::hash::FxHashMap;
use spg_graph::{DiGraph, EdgeSubgraph, GraphBuilder, VertexId};

/// Configuration for the colour-coding search.
#[derive(Debug, Clone, Copy)]
pub struct ColorCodingConfig {
    /// Number of random colourings tried per decision.
    pub trials: u32,
    /// RNG seed (each trial derives its own colouring from it).
    pub seed: u64,
}

impl Default for ColorCodingConfig {
    fn default() -> Self {
        ColorCodingConfig {
            trials: 500,
            seed: 0xC01055ED,
        }
    }
}

/// Decides (with one-sided error) whether `g` contains a simple path from
/// `s` to `t` with **exactly** `k` edges.
///
/// `false` negatives are possible (with probability shrinking exponentially
/// in `cfg.trials`); `true` answers are always correct.
pub fn has_exact_k_path(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    cfg: ColorCodingConfig,
) -> bool {
    if s == t || k == 0 {
        return false;
    }
    if k == 1 {
        return g.has_edge(s, t);
    }
    let colors = k + 1; // a k-edge simple path visits k + 1 vertices
    if colors > 20 {
        // 2^(k+1) masks; beyond ~20 colours the DP is no longer sensible.
        panic!("colour coding supports k up to 19, got k = {k}");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.trials {
        let coloring: Vec<u32> = (0..g.vertex_count())
            .map(|_| rng.gen_range(0..colors))
            .collect();
        if colorful_path_exists(g, s, t, k, &coloring) {
            return true;
        }
    }
    false
}

/// Decides (with one-sided error) whether there is a simple s-t path with at
/// most `k` edges.
pub fn has_k_path_within(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    cfg: ColorCodingConfig,
) -> bool {
    (1..=k).any(|len| has_exact_k_path(g, s, t, len, cfg))
}

/// Subset DP over one colouring: does a colourful s-t path of exactly `k`
/// edges exist?
fn colorful_path_exists(g: &DiGraph, s: VertexId, t: VertexId, k: u32, coloring: &[u32]) -> bool {
    // masks[v] = set of colour subsets realisable by a colourful path from s
    // ending at v with the current number of edges.
    let mut masks: FxHashMap<VertexId, Vec<u32>> = FxHashMap::default();
    masks.insert(s, vec![1u32 << coloring[s as usize]]);
    for step in 1..=k {
        let mut next: FxHashMap<VertexId, Vec<u32>> = FxHashMap::default();
        for (&u, sets) in &masks {
            for &v in g.out_neighbors(u) {
                let color_bit = 1u32 << coloring[v as usize];
                for &mask in sets {
                    if mask & color_bit != 0 {
                        continue;
                    }
                    let entry = next.entry(v).or_default();
                    let new_mask = mask | color_bit;
                    if !entry.contains(&new_mask) {
                        entry.push(new_mask);
                    }
                }
            }
        }
        if step == k {
            return next.contains_key(&t);
        }
        if next.is_empty() {
            return false;
        }
        masks = next;
    }
    false
}

/// Theorem 2.7 reduction: builds `SPG_k(s, t)` by testing each edge with the
/// FPT k-path oracle on the edge-subdivided auxiliary graph.
///
/// For every candidate edge `e(u, v)`, every *other* edge of `G` is split by
/// a fresh vertex; an s-t simple path of odd length `2l − 1` in the auxiliary
/// graph then corresponds to an s-t simple path of length `l` through
/// `e(u, v)` in `G`. Only intended for small graphs and small `k` — this is
/// the theoretical construction the paper argues is impractical.
pub fn spg_by_color_coding(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    cfg: ColorCodingConfig,
) -> EdgeSubgraph {
    let mut kept: Vec<(VertexId, VertexId)> = Vec::new();
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    for &(u, v) in &edges {
        let aux = subdivide_all_but(g, (u, v));
        // Odd path lengths 1, 3, …, 2k − 1 in the auxiliary graph correspond
        // to original lengths 1..=k through e(u, v).
        let found = (1..=k).any(|l| has_exact_k_path(&aux, s, t, 2 * l - 1, cfg));
        if found {
            kept.push((u, v));
        }
    }
    EdgeSubgraph::from_edges(kept)
}

/// Builds the auxiliary graph of Theorem 2.7: every edge except `keep` is
/// subdivided by a fresh vertex.
fn subdivide_all_but(g: &DiGraph, keep: (VertexId, VertexId)) -> DiGraph {
    let extra = g.edge_count().saturating_sub(1);
    let mut builder = GraphBuilder::with_capacity(g.vertex_count() + extra, 2 * g.edge_count());
    let mut next_vertex = g.vertex_count() as VertexId;
    for (u, v) in g.edges() {
        if (u, v) == keep {
            builder.add_edge(u, v);
        } else {
            builder.add_edge(u, next_vertex);
            builder.add_edge(next_vertex, v);
            next_vertex += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::naive_dfs;
    use crate::sink::CollectPaths;
    use spg_graph::generators::{gnm_random, path_graph};

    fn exact_path_exists_bruteforce(g: &DiGraph, s: u32, t: u32, k: u32) -> bool {
        let mut sink = CollectPaths::new();
        naive_dfs(g, s, t, k, &mut sink);
        sink.paths().iter().any(|p| p.len() as u32 - 1 == k)
    }

    #[test]
    fn exact_k_path_on_a_path_graph() {
        let g = path_graph(6);
        let cfg = ColorCodingConfig::default();
        assert!(has_exact_k_path(&g, 0, 5, 5, cfg));
        assert!(!has_exact_k_path(&g, 0, 5, 4, cfg));
        assert!(!has_exact_k_path(&g, 0, 5, 6, cfg));
        assert!(has_k_path_within(&g, 0, 3, 5, cfg));
        assert!(!has_k_path_within(&g, 0, 3, 2, cfg));
    }

    #[test]
    fn color_coding_agrees_with_bruteforce_on_random_graphs() {
        let cfg = ColorCodingConfig {
            trials: 800,
            seed: 77,
        };
        for seed in 0..6u64 {
            let g = gnm_random(9, 22, 1_000 + seed);
            for k in 1..=5u32 {
                let expected = exact_path_exists_bruteforce(&g, 0, 8, k);
                let got = has_exact_k_path(&g, 0, 8, k, cfg);
                // One-sided error: a positive answer is always right; a
                // negative answer could in principle be a miss, but with 800
                // trials and k ≤ 5 the failure probability is ~1e-13.
                assert_eq!(got, expected, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn theorem_2_7_reduction_matches_enumeration_union() {
        // The auxiliary graph doubles path lengths, so keep the instance tiny
        // and the trial count high enough that the one-sided error is
        // negligible (the paper itself highlights the failure rate of the
        // FPT approach at realistic sizes).
        let cfg = ColorCodingConfig {
            trials: 1_500,
            seed: 5,
        };
        for seed in 0..2u64 {
            let g = gnm_random(6, 10, 2_000 + seed);
            let k = 3;
            let expected = crate::spg_baseline::spg_by_enumeration(
                crate::EnumerationAlgorithm::NaiveDfs,
                &g,
                0,
                5,
                k,
            );
            let got = spg_by_color_coding(&g, 0, 5, k, cfg);
            assert_eq!(expected, got, "seed={seed}");
        }
    }

    #[test]
    fn trivial_cases() {
        let g = path_graph(3);
        let cfg = ColorCodingConfig::default();
        assert!(!has_exact_k_path(&g, 1, 1, 2, cfg));
        assert!(!has_exact_k_path(&g, 0, 2, 0, cfg));
        assert!(has_exact_k_path(&g, 0, 1, 1, cfg));
    }
}
