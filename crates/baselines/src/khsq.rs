//! KHSQ / KHSQ+: k-hop s-t subgraph (`G^k_st`) construction.
//!
//! Liu et al. (DASFAA'21) define the k-hop s-t subgraph `G^k_st` as the
//! subgraph containing every path from `s` to `t` within `k` hops — paths
//! need not be simple, so `G^k_st` is a (usually strict) superset of
//! `SPG_k(s, t)`. An edge `e(u, v)` belongs to `G^k_st` iff
//! `Δ(s, u) + 1 + Δ(v, t) ≤ k`.
//!
//! * [`khsq`] follows the original algorithm: two single-directional
//!   hop-bounded BFS passes.
//! * [`khsq_plus`] is the optimised variant the paper introduces in §6.7: the
//!   same subgraph computed with the adaptive bidirectional search.
//!
//! Both are used by the harness for Table 4 / Table 5 / Figure 12(b), where
//! `G^k_st` serves as an alternative (looser) search space for PathEnum and
//! JOIN.

use spg_graph::{DiGraph, DistanceIndex, DistanceStrategy, EdgeSubgraph, VertexId};

/// Work counters of one `G^k_st` construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KhsqStats {
    /// Edges scanned by the distance searches.
    pub distance_edge_scans: usize,
    /// Edges scanned while materialising the subgraph.
    pub materialise_edge_scans: usize,
    /// Edges in the resulting `G^k_st`.
    pub subgraph_edges: usize,
}

/// `G^k_st` via two single-directional BFS passes (the original KHSQ).
pub fn khsq(g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> (EdgeSubgraph, KhsqStats) {
    build(g, s, t, k, DistanceStrategy::Single)
}

/// `G^k_st` via adaptive bidirectional search (KHSQ+, §6.7).
pub fn khsq_plus(g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> (EdgeSubgraph, KhsqStats) {
    build(g, s, t, k, DistanceStrategy::AdaptiveBidirectional)
}

fn build(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    strategy: DistanceStrategy,
) -> (EdgeSubgraph, KhsqStats) {
    let dist = DistanceIndex::compute(g, s, t, k, strategy);
    let mut stats = KhsqStats {
        distance_edge_scans: dist.stats().total_edge_scans(),
        ..Default::default()
    };
    if !dist.is_feasible() {
        return (EdgeSubgraph::new(), stats);
    }
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in dist.space_vertices() {
        for &v in g.out_neighbors(u) {
            stats.materialise_edge_scans += 1;
            if dist.edge_in_space(u, v) {
                edges.push((u, v));
            }
        }
    }
    let subgraph = EdgeSubgraph::from_edges(edges);
    stats.subgraph_edges = subgraph.edge_count();
    (subgraph, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::naive_dfs;
    use crate::sink::EdgeUnion;
    use spg_graph::generators::gnm_random;

    #[test]
    fn khsq_and_khsq_plus_produce_the_same_subgraph() {
        for seed in 0..10u64 {
            let g = gnm_random(30, 150, seed);
            for k in 2..7u32 {
                let (a, _) = khsq(&g, 0, 29, k);
                let (b, _) = khsq_plus(&g, 0, 29, k);
                assert_eq!(a, b, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn gkst_contains_the_simple_path_graph() {
        for seed in 0..10u64 {
            let g = gnm_random(15, 60, 40 + seed);
            for k in 3..7u32 {
                let (gkst, _) = khsq_plus(&g, 0, 14, k);
                let mut union = EdgeUnion::new();
                naive_dfs(&g, 0, 14, k, &mut union);
                let spg = union.into_subgraph();
                assert!(
                    spg.is_subgraph_of(&gkst),
                    "SPG ⊄ G^k_st for seed={seed} k={k}"
                );
            }
        }
    }

    #[test]
    fn every_gkst_edge_satisfies_the_distance_condition() {
        let g = gnm_random(40, 200, 3);
        let k = 5;
        let (gkst, stats) = khsq_plus(&g, 0, 39, k);
        let dist = DistanceIndex::compute(&g, 0, 39, k, DistanceStrategy::Single);
        for &(u, v) in gkst.edges() {
            assert!(dist.dist_from_s(u) + 1 + dist.dist_to_t(v) <= k);
        }
        assert_eq!(stats.subgraph_edges, gkst.edge_count());
        assert!(stats.distance_edge_scans > 0);
    }

    #[test]
    fn infeasible_query_gives_empty_subgraph() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let (sub, stats) = khsq(&g, 0, 3, 6);
        assert!(sub.is_empty());
        assert_eq!(stats.subgraph_edges, 0);
    }
}
