//! Multi-threaded batch query execution.
//!
//! The EVE pipeline is embarrassingly parallel across queries: the host
//! [`DiGraph`](spg_graph::DiGraph) is read-only and every per-query structure
//! lives in a [`QueryWorkspace`]. [`BatchExecutor`] exploits that with plain
//! `std::thread::scope` workers (no dependency, no global thread-pool
//! registry):
//!
//! * each worker owns a **private** [`QueryWorkspace`], so the hot path stays
//!   allocation-free after warm-up exactly as in the sequential case;
//! * work is pulled through one **atomic chunked cursor** — a worker claims
//!   `chunk` consecutive query indices per `fetch_add`, which keeps cursor
//!   traffic negligible while still load-balancing skewed batches;
//! * every result is written into its query's **pre-sized slot**
//!   (`OnceLock` per index), so the output order is the input order and the
//!   answers are bit-identical to sequential [`Eve::query_with`] runs — the
//!   workspace-reuse property (answers never depend on what a workspace ran
//!   before; see `tests/workspace_reuse.rs`) is what makes per-thread
//!   workspaces safe;
//! * by default the batch is first planned into **cohorts**
//!   ([`crate::cohort`]): up to [`LaneWidth::lanes`] (256 by default)
//!   distinct `(s, t)` endpoint pairs whose Phase-1 distances are computed
//!   by one bit-parallel MS-BFS traversal per direction instead of one BFS
//!   pair per query, with per-query fallback for singletons, invalid
//!   queries and cohorts the cost model dissolves
//!   ([`BatchExecutor::shared_phase1`] restores the per-query path
//!   wholesale; [`BatchExecutor::phase1_lanes`] narrows the packing).
//!   Workers then claim whole units (cohorts or singles) through the
//!   cursor.
//!
//! ### Error aggregation and fault-isolation policy
//!
//! A batch never short-circuits: an invalid query produces an `Err` in its
//! own slot and has no effect on any other slot. [`BatchStats`] counts
//! errors globally and per worker so serving layers can alarm on error
//! ratios without scanning the result vector.
//!
//! The same per-slot discipline extends to faults and deadlines:
//!
//! * **Panic isolation** — every scheduling unit (a cohort or a single
//!   query) runs under [`std::panic::catch_unwind`]. A panicking query
//!   turns into [`QueryError::ExecutionPanicked`] in its own slot (and the
//!   unanswered slots of its cohort), the worker's possibly-corrupted
//!   workspace is discarded for a fresh one, and every other slot of the
//!   batch is answered normally. [`BatchStats::panics_isolated`] counts
//!   the contained panics.
//! * **Per-slot deadlines** — the `*_with_deadlines` entry points take one
//!   optional [`Instant`] per slot and run each query under a cooperative
//!   [`QueryBudget`]; an expired slot reports
//!   [`QueryError::DeadlineExceeded`] without disturbing its neighbours.
//!   Cohorts run their shared traversal under the *latest* member deadline
//!   (see [`crate::cohort`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use spg_graph::{FrontierMode, FrontierPolicy, QueryBudget, SearchSpaceStats};

use crate::cache::{CacheOutcome, CachedEve};
use crate::cohort::{run_cohort, CohortPlan, LaneWidth, Unit};
use crate::eve::Eve;
use crate::failpoints::{self, sites};
use crate::flight::{FlightGroup, FlightOutcome, FlightRole};
use crate::query::{Query, QueryError};
use crate::spg::SimplePathGraph;
use crate::stats::MemoryEstimate;
use crate::workspace::QueryWorkspace;

/// The budget a slot runs under: its deadline, or unlimited without one.
fn budget_for(deadline: Option<Instant>) -> QueryBudget {
    match deadline {
        Some(d) => QueryBudget::with_deadline(d),
        None => QueryBudget::unlimited(),
    }
}

/// Slot `index`'s deadline; slices shorter than the batch mean unbounded.
fn slot_deadline(deadlines: &[Option<Instant>], index: usize) -> Option<Instant> {
    deadlines.get(index).copied().flatten()
}

/// Per-query callback of the chunked-cursor drain: answer the query at
/// batch index `usize` on the worker's private workspace.
type RunOne<'a> =
    &'a (dyn Fn(&mut QueryWorkspace, usize, Query, &mut ThreadBatchStats) -> BatchResult + Sync);

/// Per-query outcome of a batch: the answer, or why the query was rejected.
pub type BatchResult = Result<SimplePathGraph, QueryError>;

// The executor shares `Eve` (a graph reference + config) and the query slice
// across scoped threads; keep that capability a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Eve<'static>>();
    assert_send_sync::<Query>();
    assert_send_sync::<QueryError>();
    assert_send_sync::<QueryWorkspace>();
    assert_send_sync::<SimplePathGraph>();
};

/// Multi-threaded executor for query batches (see the module docs).
///
/// ```
/// use spg_core::{BatchExecutor, Eve, Query};
/// use spg_core::paper_example::{figure1_graph, names};
///
/// let g = figure1_graph();
/// let eve = Eve::with_defaults(&g);
/// let queries: Vec<Query> = (2..=8).map(|k| Query::new(names::S, names::T, k)).collect();
/// let parallel = BatchExecutor::new(4).run(&eve, &queries);
/// let sequential = eve.query_batch(&queries);
/// for (p, s) in parallel.iter().zip(&sequential) {
///     assert_eq!(p.as_ref().unwrap().edges(), s.as_ref().unwrap().edges());
/// }
/// ```
#[derive(Debug)]
pub struct BatchExecutor {
    threads: usize,
    chunk_size: usize,
    shared_phase1: bool,
    phase1_mode: FrontierMode,
    phase1_policy: FrontierPolicy,
    phase1_lanes: LaneWidth,
    pool: WorkspacePool,
}

impl Clone for BatchExecutor {
    /// Clones the configuration; the pooled workspaces stay with the
    /// original (the clone warms its own pool).
    fn clone(&self) -> Self {
        BatchExecutor {
            threads: self.threads,
            chunk_size: self.chunk_size,
            shared_phase1: self.shared_phase1,
            phase1_mode: self.phase1_mode,
            phase1_policy: self.phase1_policy,
            phase1_lanes: self.phase1_lanes,
            pool: WorkspacePool::default(),
        }
    }
}

/// Checkout/checkin pool of [`QueryWorkspace`]s shared by the workers of
/// every run on one executor. A long-lived executor (the server drains
/// every micro-batch through one; the benchmarks time repeated runs) hands
/// each worker the previous run's warmed buffers instead of growing — and
/// first-touch page-faulting — graph-sized arrays per call. That cost
/// scales with graph size × lane width (a 256-lane MS-BFS engine keeps
/// 5 × 32 bytes per vertex per side), so on large graphs it would otherwise
/// rival the traversal itself. Reuse cannot change answers: a workspace's
/// output never depends on what it ran before (`tests/workspace_reuse.rs`).
#[derive(Default)]
struct WorkspacePool {
    idle: Mutex<Vec<QueryWorkspace>>,
}

impl WorkspacePool {
    fn checkout(&self) -> QueryWorkspace {
        self.idle().pop().unwrap_or_default()
    }

    fn checkin(&self, ws: QueryWorkspace) {
        self.idle().push(ws);
    }

    fn idle(&self) -> std::sync::MutexGuard<'_, Vec<QueryWorkspace>> {
        // A panic while the lock is held cannot corrupt a Vec of idle
        // workspaces; recover instead of poisoning every later batch.
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("idle", &self.idle().len())
            .finish()
    }
}

impl BatchExecutor {
    /// Creates an executor with an explicit worker count (clamped to ≥ 1).
    /// Cohort-shared Phase 1 is on by default; see
    /// [`BatchExecutor::shared_phase1`].
    pub fn new(threads: usize) -> Self {
        BatchExecutor {
            threads: threads.max(1),
            chunk_size: 0,
            shared_phase1: true,
            phase1_mode: FrontierMode::default(),
            phase1_policy: FrontierPolicy::default(),
            phase1_lanes: LaneWidth::default(),
            pool: WorkspacePool::default(),
        }
    }

    /// Creates an executor sized to the machine
    /// ([`std::thread::available_parallelism`], falling back to 1).
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        BatchExecutor::new(threads)
    }

    /// Overrides the cursor chunk size (0 restores the automatic choice).
    /// Only the per-query path uses it; the cohort-shared path claims whole
    /// units (cohorts or fallback singles) one at a time.
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = chunk;
        self
    }

    /// Enables or disables the cohort-shared MS-BFS Phase 1 (default:
    /// enabled). When disabled, [`BatchExecutor::run`] answers every query
    /// on the classic per-query path — the baseline the `batch_phase1`
    /// benchmark and `phase1_sharing` perf snapshots compare against. The
    /// result slots are bit-identical either way.
    pub fn shared_phase1(mut self, enabled: bool) -> Self {
        self.shared_phase1 = enabled;
        self
    }

    /// Overrides the per-level expansion policy of the shared Phase-1
    /// traversal (default: [`FrontierMode::DirectionOptimizing`]). Answers
    /// do not depend on the mode, only the work profile does.
    pub fn phase1_mode(mut self, mode: FrontierMode) -> Self {
        self.phase1_mode = mode;
        self
    }

    /// Overrides the direction-switch policy used when
    /// [`FrontierMode::DirectionOptimizing`] is active (default: α/β
    /// hysteresis, [`FrontierPolicy::default`]). [`FrontierPolicy::Fixed`]
    /// restores the pre-hysteresis fixed threshold for A/B comparisons and
    /// differential tests; answers do not depend on the policy.
    pub fn phase1_policy(mut self, policy: FrontierPolicy) -> Self {
        self.phase1_policy = policy;
        self
    }

    /// Overrides the cohort lane capacity — how many distinct `(s, t)`
    /// pairs one shared Phase-1 traversal may carry (default:
    /// [`LaneWidth::W256`]). Each cohort still runs on the narrowest
    /// MS-BFS engine that fits it, so narrower plans only change the
    /// packing, and answers never depend on the width.
    pub fn phase1_lanes(mut self, width: LaneWidth) -> Self {
        self.phase1_lanes = width;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queries claimed per cursor `fetch_add`: the explicit override, or
    /// roughly eight chunks per worker — small enough to balance batches
    /// whose expensive queries cluster, large enough that cursor contention
    /// stays invisible next to a query's cost.
    fn effective_chunk(&self, len: usize) -> usize {
        if self.chunk_size > 0 {
            self.chunk_size
        } else {
            (len / (self.threads * 8)).clamp(1, 64)
        }
    }

    /// Answers `queries` against `eve`'s graph, returning one slot per query
    /// in input order. Answers (and errors) are bit-identical to calling
    /// [`Eve::query_with`] per query on a fresh workspace, at any thread
    /// count.
    pub fn run(&self, eve: &Eve<'_>, queries: &[Query]) -> Vec<BatchResult> {
        self.run_detailed(eve, queries).results
    }

    /// [`BatchExecutor::run`] plus execution statistics: global and
    /// per-worker query/error counts, the worst single-query
    /// [`MemoryEstimate`] (field-wise max merge), the workspace capacity
    /// each worker retained, and — on the default cohort-shared path — the
    /// shared-Phase-1 counters ([`BatchStats::phase1`]).
    pub fn run_detailed(&self, eve: &Eve<'_>, queries: &[Query]) -> BatchOutcome {
        self.run_detailed_with_deadlines(eve, queries, &[])
    }

    /// [`BatchExecutor::run_detailed`] with one optional wall-clock deadline
    /// per slot (`deadlines` may be shorter than `queries`; missing entries
    /// mean unbounded). A slot whose deadline expires mid-flight reports
    /// [`QueryError::DeadlineExceeded`] deterministically in its own slot —
    /// neighbours, workers and the reused workspaces are unaffected.
    pub fn run_detailed_with_deadlines(
        &self,
        eve: &Eve<'_>,
        queries: &[Query],
        deadlines: &[Option<Instant>],
    ) -> BatchOutcome {
        if self.shared_phase1 {
            self.run_shared(eve, queries, deadlines)
        } else {
            self.run_with(queries, &|ws, index, query, _stats| {
                eve.query_budgeted(ws, query, &budget_for(slot_deadline(deadlines, index)))
            })
        }
    }

    /// Cohort-shared batch driver: plan the batch into units (cohorts and
    /// per-query fallbacks), then let workers claim units through the atomic
    /// cursor. Each worker runs a claimed cohort's two MS-BFS passes on its
    /// private workspace and answers the members from the shared distances;
    /// fallback units go through [`Eve::query_with`] unchanged.
    fn run_shared(
        &self,
        eve: &Eve<'_>,
        queries: &[Query],
        deadlines: &[Option<Instant>],
    ) -> BatchOutcome {
        let plan = CohortPlan::build(eve.graph(), queries, self.threads, self.phase1_lanes);
        let workers = self.threads.min(plan.units.len()).max(1);
        let slots: Vec<OnceLock<BatchResult>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let mode = self.phase1_mode;
        let policy = self.phase1_policy;

        let mut per_thread: Vec<ThreadBatchStats> = Vec::with_capacity(workers);
        if workers == 1 {
            per_thread.push(drain_shared(
                eve, queries, &plan, mode, policy, deadlines, &cursor, &slots, &self.pool,
            ));
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            drain_shared(
                                eve, queries, &plan, mode, policy, deadlines, &cursor, &slots,
                                &self.pool,
                            )
                        })
                    })
                    .collect();
                for handle in handles {
                    // spg-analyze: allow(no-panic) — a worker panic here is a bug; catch_unwind guards the slots
                    per_thread.push(handle.join().expect("batch worker panicked"));
                }
            });
        }

        let results: Vec<BatchResult> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    // spg-analyze: allow(no-panic) — the cohort planner is exhaustive over query indices
                    .expect("the cohort plan covers every query index exactly once")
            })
            .collect();
        // Units are claimed whole, so the chunk notion degenerates to 1.
        let stats = BatchStats::from_workers(workers, 1, per_thread);
        debug_assert_eq!(stats.answered + stats.errors, results.len());
        BatchOutcome {
            results,
            stats,
            slot_sources: Vec::new(),
        }
    }

    /// Answers `queries` through a shared [`crate::SpgCache`] with a
    /// **two-phase drain**: first every slot is validated and probed against
    /// the cache (hits skip all three pipeline phases and identical missed
    /// keys are collapsed onto one in-flight computation — a batch of 64
    /// identical cold queries computes **once**), then the distinct misses
    /// are planned into cohorts and computed by one
    /// [`BatchExecutor::run`]-style parallel run, so shared-endpoint misses
    /// still get the bit-parallel shared Phase 1 before their answers are
    /// published to the cache and fanned out to the collapsed duplicates.
    /// Slots remain bit-identical to the uncached [`BatchExecutor::run`] at
    /// any thread count — the differential harness in
    /// `tests/cache_differential.rs` holds this as an invariant.
    pub fn run_cached(&self, cached: &CachedEve<'_, '_>, queries: &[Query]) -> Vec<BatchResult> {
        self.run_cached_detailed(cached, queries).results
    }

    /// [`BatchExecutor::run_cached`] plus execution statistics.
    /// [`BatchStats::cache_hits`] / [`BatchStats::cache_misses`] /
    /// [`BatchStats::cache_coalesced`] partition this run's valid slots;
    /// [`BatchStats::cache_evictions`] is the shared cache's eviction-counter
    /// delta across the run, which includes evictions triggered by
    /// concurrent users of the same cache, if any.
    pub fn run_cached_detailed(
        &self,
        cached: &CachedEve<'_, '_>,
        queries: &[Query],
    ) -> BatchOutcome {
        // A drain-local group: collapses duplicates within this batch. A
        // serving frontend shares one long-lived group across drains instead
        // (see `run_cached_coalesced`).
        let flights = FlightGroup::new();
        self.run_cached_coalesced(cached, &flights, queries)
    }

    /// [`BatchExecutor::run_cached_detailed`] against a caller-supplied
    /// [`FlightGroup`], so concurrent drains sharing one group (a serving
    /// frontend's micro-batches) coalesce misses *across* batches: a key
    /// already in flight in another drain is joined, not recomputed.
    ///
    /// Deadlock-freedom: a drain completes every flight it leads during its
    /// compute phase *before* waiting on any flight led elsewhere, so
    /// cross-drain waits can never form a cycle.
    pub fn run_cached_coalesced(
        &self,
        cached: &CachedEve<'_, '_>,
        flights: &FlightGroup,
        queries: &[Query],
    ) -> BatchOutcome {
        self.run_cached_coalesced_with_deadlines(cached, flights, queries, &[])
    }

    /// [`BatchExecutor::run_cached_coalesced`] with one optional wall-clock
    /// deadline per slot. A slot past its deadline reports
    /// [`QueryError::DeadlineExceeded`]; a leader that fails mid-flight
    /// broadcasts its error to every joiner instead of leaving them waiting
    /// ([`crate::FlightToken::fail`]), and joiners of a budget-killed leader
    /// recompute under their *own* deadline rather than inheriting the
    /// leader's failure.
    pub fn run_cached_coalesced_with_deadlines(
        &self,
        cached: &CachedEve<'_, '_>,
        flights: &FlightGroup,
        queries: &[Query],
        deadlines: &[Option<Instant>],
    ) -> BatchOutcome {
        // Drain-level failpoint: an injected panic here models the batcher
        // dying mid-drain; an injected budget error fails the whole drain
        // gracefully (every slot gets an error response, nothing hangs).
        if let Err(err) = failpoints::check(sites::BATCH_DRAIN) {
            return BatchOutcome {
                results: queries.iter().map(|_| Err(err)).collect(),
                stats: BatchStats {
                    threads: 1,
                    chunk_size: 1,
                    errors: queries.len(),
                    ..BatchStats::default()
                },
                slot_sources: vec![None; queries.len()],
            };
        }
        let graph = cached.eve().graph();
        let version = cached.version();
        let cache = cached.cache();
        // Reclaim bytes of snapshots the bound graph has retired before this
        // drain competes for the budget (deduped: a no-op after the first
        // drain on a given binding's retired list).
        cached.purge_retired();
        let evictions_before = cache.eviction_count();

        // ---- Phase A: validate + probe + claim flights (calling thread).
        let mut slots: Vec<Option<BatchResult>> = (0..queries.len()).map(|_| None).collect();
        let mut slot_sources: Vec<Option<CacheOutcome>> = vec![None; queries.len()];
        let mut probe_hits = 0usize;
        let mut probe_errors = 0usize;
        let mut missed: Vec<Query> = Vec::new();
        let mut missed_slots: Vec<usize> = Vec::new();
        let mut tokens = Vec::new();
        let mut waits: Vec<(usize, crate::flight::FlightJoiner)> = Vec::new();
        for (i, &query) in queries.iter().enumerate() {
            if let Err(err) = query.validate(graph) {
                slots[i] = Some(Err(err));
                probe_errors += 1;
                continue;
            }
            let clamped = query.clamped_to(graph);
            if let Some(hit) = cache.get(version, clamped) {
                slots[i] = Some(Ok(hit));
                slot_sources[i] = Some(CacheOutcome::Hit);
                probe_hits += 1;
                continue;
            }
            match flights.join_or_lead(version, clamped) {
                FlightRole::Leader(token) => {
                    // Double-check: a leader elsewhere may have published
                    // between our probe and our claim (shared groups only).
                    // The quiet probe keeps hit/miss counters exact.
                    if let Some(hit) = cache.get_quiet(version, clamped) {
                        token.complete(Arc::new(hit.clone()));
                        slots[i] = Some(Ok(hit));
                        slot_sources[i] = Some(CacheOutcome::Hit);
                        probe_hits += 1;
                    } else {
                        missed.push(clamped);
                        missed_slots.push(i);
                        tokens.push(token);
                        slot_sources[i] = Some(CacheOutcome::Miss);
                    }
                }
                FlightRole::Joiner(joiner) => {
                    waits.push((i, joiner));
                    slot_sources[i] = Some(CacheOutcome::Coalesced);
                }
            }
        }

        // ---- Phase B: compute the distinct misses as one batch (cohort
        // planning + parallel workers), publish, complete flights.
        let mut stats = if missed.is_empty() {
            BatchStats {
                threads: 1,
                chunk_size: 1,
                ..BatchStats::default()
            }
        } else if let Err(err) = failpoints::check(sites::FLIGHT_LEADER) {
            // Injected leader failure: broadcast it to every joiner (none
            // may block forever) and error the led slots themselves.
            for (&slot, token) in missed_slots.iter().zip(tokens) {
                token.fail(err);
                slots[slot] = Some(Err(err));
                slot_sources[slot] = None;
                probe_errors += 1;
            }
            BatchStats {
                threads: 1,
                chunk_size: 1,
                ..BatchStats::default()
            }
        } else {
            // Misses run under their own slots' deadlines.
            let missed_deadlines: Vec<Option<Instant>> = missed_slots
                .iter()
                .map(|&slot| slot_deadline(deadlines, slot))
                .collect();
            let inner = if self.shared_phase1 {
                self.run_shared(&cached.eve(), &missed, &missed_deadlines)
            } else {
                self.run_with(&missed, &|ws, index, query, _stats| {
                    cached.eve().query_budgeted(
                        ws,
                        query,
                        &budget_for(slot_deadline(&missed_deadlines, index)),
                    )
                })
            };
            let mut stats = inner.stats;
            for ((&slot, token), result) in missed_slots.iter().zip(tokens).zip(inner.results) {
                match result {
                    Ok(spg) => {
                        let clamped = spg.query();
                        cache.insert(version, clamped, &spg);
                        stats.cache_misses += 1;
                        let arc = Arc::new(spg);
                        // Publish-then-complete: a prober that finds the
                        // flight gone must find the cache populated.
                        token.complete(Arc::clone(&arc));
                        slots[slot] =
                            Some(Ok(Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone())));
                    }
                    Err(err) => {
                        // Deadline, budget or isolated-panic failure: fail
                        // the flight so joiners observe the error instead
                        // of waiting forever, and error the slot itself.
                        token.fail(err);
                        slots[slot] = Some(Err(err));
                        slot_sources[slot] = None;
                    }
                }
            }
            // Every inner worker computed misses exclusively; make that
            // readable in the per-thread breakdown.
            for worker in &mut stats.per_thread {
                worker.cache_misses = worker.answered;
            }
            stats
        };

        // ---- Phase C: fan the leaders' answers out to the joiners.
        let mut coalesced = 0usize;
        // Lazily checked out: only abandoned/failed flights recompute here.
        let mut recompute_ws: Option<QueryWorkspace> = None;
        for (slot, joiner) in waits {
            match joiner.wait() {
                FlightOutcome::Done(arc) => {
                    slots[slot] = Some(Ok((*arc).clone()));
                    coalesced += 1;
                    continue;
                }
                FlightOutcome::Failed(QueryError::ExecutionPanicked) => {
                    // The computation itself is faulty; rerunning it would
                    // panic again. Take the leader's error as-is.
                    slots[slot] = Some(Err(QueryError::ExecutionPanicked));
                    slot_sources[slot] = None;
                    probe_errors += 1;
                    continue;
                }
                // Failed: the leader ran out of *its* budget — this slot's
                // own deadline may still have room, so recompute under it.
                // Abandoned: the leader vanished (cross-drain panic);
                // compute individually — the pre-singleflight behaviour.
                FlightOutcome::Failed(_) | FlightOutcome::Abandoned => {}
            }
            let ws = recompute_ws.get_or_insert_with(|| self.pool.checkout());
            let budget = budget_for(slot_deadline(deadlines, slot));
            match cached.query_with_outcome_budgeted(ws, queries[slot], &budget) {
                Ok((spg, CacheOutcome::Hit)) => {
                    slots[slot] = Some(Ok(spg));
                    slot_sources[slot] = Some(CacheOutcome::Hit);
                    probe_hits += 1;
                }
                Ok((spg, _)) => {
                    slots[slot] = Some(Ok(spg));
                    slot_sources[slot] = Some(CacheOutcome::Miss);
                    stats.cache_misses += 1;
                    stats.answered += 1;
                }
                Err(err) => {
                    slots[slot] = Some(Err(err));
                    slot_sources[slot] = None;
                    probe_errors += 1;
                }
            }
        }

        if let Some(ws) = recompute_ws {
            self.pool.checkin(ws);
        }

        stats.answered += probe_hits + coalesced;
        stats.errors += probe_errors;
        stats.cache_hits += probe_hits;
        stats.cache_coalesced = coalesced;
        stats.cache_evictions = cache.eviction_count().saturating_sub(evictions_before) as usize;

        let results: Vec<BatchResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every slot is resolved by probe, compute or fan-out")) // spg-analyze: allow(no-panic) — every slot is resolved by probe, compute or fan-out
            .collect();
        debug_assert_eq!(stats.answered + stats.errors, results.len());
        BatchOutcome {
            results,
            stats,
            slot_sources,
        }
    }

    /// Shared batch driver: spawn workers, drain the chunked cursor through
    /// `run_one`, collect slots and fold per-worker stats. `run_one` answers
    /// one query (given with its batch index, so callers can attach
    /// per-slot budgets) on the worker's private workspace and may update
    /// the worker's cache counters.
    fn run_with(&self, queries: &[Query], run_one: RunOne<'_>) -> BatchOutcome {
        let workers = self.threads.min(queries.len()).max(1);
        let chunk = self.effective_chunk(queries.len());
        let slots: Vec<OnceLock<BatchResult>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);

        let mut per_thread: Vec<ThreadBatchStats> = Vec::with_capacity(workers);
        if workers == 1 {
            // Sequential fast path: same drain loop, no spawn cost. This is
            // also what makes `BatchExecutor::new(1)` a faithful baseline in
            // the thread-scaling benchmarks.
            per_thread.push(drain(run_one, queries, &cursor, chunk, &slots, &self.pool));
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| drain(run_one, queries, &cursor, chunk, &slots, &self.pool))
                    })
                    .collect();
                for handle in handles {
                    // spg-analyze: allow(no-panic) — a worker panic here is a bug; catch_unwind guards the slots
                    per_thread.push(handle.join().expect("batch worker panicked"));
                }
            });
        }

        let results: Vec<BatchResult> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    // spg-analyze: allow(no-panic) — the chunked cursor is exhaustive over query indices
                    .expect("the chunked cursor visits every query index exactly once")
            })
            .collect();
        let stats = BatchStats::from_workers(workers, chunk, per_thread);
        debug_assert_eq!(stats.answered + stats.errors, results.len());
        BatchOutcome {
            results,
            stats,
            slot_sources: Vec::new(),
        }
    }
}

impl Default for BatchExecutor {
    /// Same as [`BatchExecutor::with_available_parallelism`].
    fn default() -> Self {
        BatchExecutor::with_available_parallelism()
    }
}

/// One worker's drain loop on the cohort-shared path: claim one unit at a
/// time, run cohorts via [`run_cohort`] and fallback singles via
/// [`Eve::query_budgeted`], publish every member into its pre-sized slot.
///
/// Every unit runs under [`catch_unwind`]: a panic (a defect or an injected
/// failpoint) is contained to the unit — its unanswered slots get
/// [`QueryError::ExecutionPanicked`], the possibly-corrupted workspace is
/// replaced by a fresh one, and the worker moves on to the next unit.
#[allow(clippy::too_many_arguments)]
fn drain_shared(
    eve: &Eve<'_>,
    queries: &[Query],
    plan: &CohortPlan,
    mode: FrontierMode,
    policy: FrontierPolicy,
    deadlines: &[Option<Instant>],
    cursor: &AtomicUsize,
    slots: &[OnceLock<BatchResult>],
    pool: &WorkspacePool,
) -> ThreadBatchStats {
    let mut ws = pool.checkout();
    let mut stats = ThreadBatchStats::default();
    loop {
        let unit = cursor.fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one claim per scheduling unit, amortised over the unit
        if unit >= plan.units.len() {
            break;
        }
        stats.chunks_claimed += 1;
        match &plan.units[unit] {
            Unit::Single(index) => {
                let budget = budget_for(slot_deadline(deadlines, *index));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    eve.query_budgeted(&mut ws, queries[*index], &budget)
                }))
                .unwrap_or_else(|_| {
                    // The corrupted workspace is dropped, never pooled.
                    ws = QueryWorkspace::new();
                    stats.panics_isolated += 1;
                    Err(QueryError::ExecutionPanicked)
                });
                match &result {
                    Ok(spg) => {
                        stats.answered += 1;
                        stats.peak_memory.merge_max(&spg.stats().memory);
                    }
                    Err(_) => stats.errors += 1,
                }
                slots[*index]
                    .set(result)
                    .expect("no other worker may claim this query index"); // spg-analyze: allow(no-panic) — slot claimed by this worker via the cursor
            }
            Unit::Cohort(cohort) => {
                let unwound = catch_unwind(AssertUnwindSafe(|| {
                    run_cohort(
                        eve,
                        &mut ws,
                        cohort,
                        mode,
                        policy,
                        deadlines,
                        &mut stats,
                        |index, result| {
                            slots[index]
                                .set(result)
                                // spg-analyze: allow(no-panic) — slot claimed by this worker via the cursor
                                .expect("no other worker may claim this query index");
                        },
                    )
                }));
                if unwound.is_err() {
                    // The panic is contained to this cohort: members whose
                    // slot was published before the panic keep their
                    // answers, the rest become error slots, and the
                    // workspace (in an unknown state) is discarded.
                    ws = QueryWorkspace::new();
                    stats.panics_isolated += 1;
                    for member in &cohort.members {
                        if slots[member.index]
                            .set(Err(QueryError::ExecutionPanicked))
                            .is_ok()
                        {
                            stats.errors += 1;
                        }
                    }
                }
            }
        }
    }
    stats.workspace_retained_bytes = ws.retained_bytes();
    pool.checkin(ws);
    stats
}

/// One worker's drain loop: claim a chunk of query indices, answer each on
/// the private workspace through `run_one`, publish into the pre-sized
/// slots. A panicking query is contained to its own slot
/// ([`QueryError::ExecutionPanicked`]); the workspace is discarded for a
/// fresh one and the drain continues with the next query.
fn drain(
    run_one: RunOne<'_>,
    queries: &[Query],
    cursor: &AtomicUsize,
    chunk: usize,
    slots: &[OnceLock<BatchResult>],
    pool: &WorkspacePool,
) -> ThreadBatchStats {
    let mut ws = pool.checkout();
    let mut stats = ThreadBatchStats::default();
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one claim per chunk, amortised over the chunk
        if start >= queries.len() {
            break;
        }
        stats.chunks_claimed += 1;
        let end = (start + chunk).min(queries.len());
        for (offset, (query, slot)) in queries[start..end]
            .iter()
            .zip(&slots[start..end])
            .enumerate()
        {
            let index = start + offset;
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_one(&mut ws, index, *query, &mut stats)
            }))
            .unwrap_or_else(|_| {
                // The corrupted workspace is dropped, never pooled.
                ws = QueryWorkspace::new();
                stats.panics_isolated += 1;
                Err(QueryError::ExecutionPanicked)
            });
            match &result {
                Ok(spg) => {
                    stats.answered += 1;
                    stats.peak_memory.merge_max(&spg.stats().memory);
                }
                Err(_) => stats.errors += 1,
            }
            slot.set(result)
                .expect("no other worker may claim this query index"); // spg-analyze: allow(no-panic) — slot claimed by this worker via the cursor
        }
    }
    stats.workspace_retained_bytes = ws.retained_bytes();
    pool.checkin(ws);
    stats
}

/// Results plus statistics of one [`BatchExecutor::run_detailed`] call.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One slot per input query, in input order.
    pub results: Vec<BatchResult>,
    /// Global and per-worker execution counters.
    pub stats: BatchStats,
    /// Cached runs only: how each slot was served, in input order —
    /// [`CacheOutcome::Hit`] (resident answer), [`CacheOutcome::Miss`]
    /// (computed and published) or [`CacheOutcome::Coalesced`] (collapsed
    /// onto another slot's in-flight computation); `None` for error slots.
    /// Empty for uncached runs. Serving layers report this per response.
    pub slot_sources: Vec<Option<CacheOutcome>>,
}

/// Counters of the batch-shared MS-BFS Phase 1 (the cohort path of
/// [`BatchExecutor`] and [`Eve::query_batch`]; all-zero when sharing is
/// disabled or the batch degenerated to per-query fallbacks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedPhase1Stats {
    /// Queries whose Phase-1 distances came from a cohort MS-BFS run
    /// (the rest fell back to the per-query engine).
    pub phase1_shared: usize,
    /// MS-BFS lanes actually traversed — distinct `(s, t)` endpoint pairs,
    /// summed over cohorts. `phase1_shared / distinct_endpoints` is the
    /// dedup ratio hub-skewed batches benefit from.
    pub distinct_endpoints: usize,
    /// Cohorts executed (each pays one bidirectional MS-BFS traversal).
    pub cohorts: usize,
    /// Members whose Phase-1a output was reused verbatim from the previous
    /// member of the same cohort — exact `(s, t, k)` duplicates, which the
    /// plan orders back to back.
    pub distance_reuses: usize,
    /// Wall time of the cohort MS-BFS passes. Per-query materialisation of
    /// lane distances is *not* included here — it is recorded in each
    /// answer's distance phase timing, so "total Phase-1 time" of a shared
    /// batch is this plus the per-answer distance timings.
    pub traversal_time: Duration,
    /// Cohort traversal work: top-down relaxations on the forward /
    /// backward sides plus bottom-up probes, kept separate so the
    /// direction-optimizing switch is observable.
    pub traversal: SearchSpaceStats,
}

impl SharedPhase1Stats {
    /// Queries served per traversed lane (`None` before any cohort ran).
    /// 1.0 means no endpoint reuse; hub-skewed batches score higher.
    pub fn dedup_ratio(&self) -> Option<f64> {
        if self.distinct_endpoints == 0 {
            None
        } else {
            Some(self.phase1_shared as f64 / self.distinct_endpoints as f64)
        }
    }

    /// Element-wise sum, used when folding per-worker stats.
    fn merge(&mut self, other: &SharedPhase1Stats) {
        self.phase1_shared += other.phase1_shared;
        self.distinct_endpoints += other.distinct_endpoints;
        self.cohorts += other.cohorts;
        self.distance_reuses += other.distance_reuses;
        self.traversal_time += other.traversal_time;
        self.traversal.forward_edge_scans += other.traversal.forward_edge_scans;
        self.traversal.backward_edge_scans += other.traversal.backward_edge_scans;
        self.traversal.bottom_up_edge_scans += other.traversal.bottom_up_edge_scans;
        self.traversal.space_vertices += other.traversal.space_vertices;
    }
}

/// Counters for one worker thread of a batch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadBatchStats {
    /// Queries this worker answered successfully.
    pub answered: usize,
    /// Queries this worker rejected ([`QueryError`] slots).
    pub errors: usize,
    /// Cursor chunks this worker claimed.
    pub chunks_claimed: usize,
    /// Cache lookups this worker answered from the shared
    /// [`crate::SpgCache`]. On the two-phase cached drain the probe phase
    /// runs on the calling thread, so hits are counted globally
    /// ([`BatchStats::cache_hits`]) and this stays 0; compute workers only
    /// ever see misses.
    pub cache_hits: usize,
    /// Missed queries this worker computed-then-published (always 0 for
    /// uncached runs).
    pub cache_misses: usize,
    /// Panics this worker caught and contained to their scheduling unit
    /// (the affected slots report [`QueryError::ExecutionPanicked`] and the
    /// worker continued on a fresh workspace).
    pub panics_isolated: usize,
    /// This worker's shared-Phase-1 counters (cohort path only).
    pub phase1: SharedPhase1Stats,
    /// Worst single-query memory estimate seen by this worker
    /// ([`MemoryEstimate::merge_max`] over its queries).
    pub peak_memory: MemoryEstimate,
    /// Buffer capacity this worker's private workspace retained at the end
    /// of the batch (its steady-state footprint).
    pub workspace_retained_bytes: usize,
}

/// Aggregated execution statistics of a batch run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Workers actually spawned (`min(threads, queries)`, at least 1).
    pub threads: usize,
    /// Queries claimed per cursor step.
    pub chunk_size: usize,
    /// Successfully answered queries across all workers.
    pub answered: usize,
    /// Rejected queries across all workers (the error aggregation policy is
    /// per-slot: an invalid query never affects its neighbours).
    pub errors: usize,
    /// Queries served from the shared result cache across all workers
    /// ([`BatchExecutor::run_cached`]; always 0 for uncached runs).
    pub cache_hits: usize,
    /// Queries computed and published to the shared result cache across all
    /// workers (always 0 for uncached runs).
    pub cache_misses: usize,
    /// Missed queries collapsed onto another slot's in-flight computation by
    /// the singleflight layer instead of computing themselves (always 0 for
    /// uncached runs). Valid slots of a cached run partition exactly:
    /// `cache_hits + cache_misses + cache_coalesced == answered`.
    pub cache_coalesced: usize,
    /// Evictions the shared cache performed while this batch ran (the
    /// cache's eviction-counter delta — includes evictions triggered by
    /// concurrent users of the same cache; always 0 for uncached runs).
    pub cache_evictions: usize,
    /// Panics caught and contained across all workers — each one produced
    /// [`QueryError::ExecutionPanicked`] slots (counted in
    /// [`BatchStats::errors`]) without disturbing any other slot.
    pub panics_isolated: usize,
    /// Shared-Phase-1 counters summed over all workers: queries served from
    /// cohort MS-BFS runs, distinct endpoint pairs traversed, cohort count,
    /// traversal wall time and the top-down/bottom-up scan split.
    pub phase1: SharedPhase1Stats,
    /// Worst single-query memory estimate across the whole batch.
    pub peak_memory: MemoryEstimate,
    /// Sum of every worker's retained workspace capacity — the steady-state
    /// memory a long-lived executor of this shape keeps resident.
    pub workspace_retained_bytes: usize,
    /// Per-worker breakdown, in spawn order.
    pub per_thread: Vec<ThreadBatchStats>,
}

impl BatchStats {
    fn from_workers(threads: usize, chunk_size: usize, per_thread: Vec<ThreadBatchStats>) -> Self {
        let mut stats = BatchStats {
            threads,
            chunk_size,
            ..BatchStats::default()
        };
        for worker in &per_thread {
            stats.answered += worker.answered;
            stats.errors += worker.errors;
            stats.cache_hits += worker.cache_hits;
            stats.cache_misses += worker.cache_misses;
            stats.panics_isolated += worker.panics_isolated;
            stats.phase1.merge(&worker.phase1);
            stats.peak_memory.merge_max(&worker.peak_memory);
            stats.workspace_retained_bytes += worker.workspace_retained_bytes;
        }
        stats.per_thread = per_thread;
        stats
    }

    /// Total queries processed (answered + rejected).
    pub fn queries(&self) -> usize {
        self.answered + self.errors
    }

    /// Fraction of this run's cache lookups served from the cache — hits
    /// over all valid slots (hits, computed misses and coalesced slots);
    /// `None` for uncached runs or batches with no valid query.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses + self.cache_coalesced;
        if lookups == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / lookups as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};

    fn mixed_batch(n: u32) -> Vec<Query> {
        // Valid queries across hop constraints, plus the three invalid
        // shapes (s == t, endpoint out of range, k == 0) scattered through
        // the batch so error slots land on every worker.
        let mut batch = Vec::new();
        for k in 1..=8u32 {
            batch.push(Query::new(S, T, k));
            batch.push(Query::new(A, B, k));
        }
        batch.push(Query::new(S, S, 3));
        batch.insert(5, Query::new(S, n + 7, 3));
        batch.insert(9, Query::new(S, T, 0));
        batch
    }

    #[test]
    fn parallel_matches_sequential_at_every_thread_count() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let expected = eve.query_batch(&batch);
        for threads in [1usize, 2, 3, 4, 8] {
            let got = BatchExecutor::new(threads).run(&eve, &batch);
            assert_eq!(got.len(), expected.len());
            for (i, (g_slot, e_slot)) in got.iter().zip(&expected).enumerate() {
                match (g_slot, e_slot) {
                    (Ok(g_spg), Ok(e_spg)) => {
                        assert_eq!(g_spg.edges(), e_spg.edges(), "slot {i} threads {threads}");
                        assert_eq!(
                            g_spg.stats().upper_bound_edges,
                            e_spg.stats().upper_bound_edges
                        );
                    }
                    (Err(g_err), Err(e_err)) => {
                        assert_eq!(g_err, e_err, "slot {i} threads {threads}")
                    }
                    other => panic!("slot {i} threads {threads}: Ok/Err mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_account_for_every_query() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let outcome = BatchExecutor::new(4).run_detailed(&eve, &batch);
        let stats = &outcome.stats;
        assert_eq!(stats.queries(), batch.len());
        assert_eq!(stats.errors, 3, "exactly the three injected invalid slots");
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.per_thread.len(), 4);
        let per_thread_total: usize = stats.per_thread.iter().map(|t| t.answered + t.errors).sum();
        assert_eq!(per_thread_total, batch.len());
        // Shared mode claims whole units; at 4 workers the member cap
        // splits the 16 valid queries across several cohorts so no single
        // indivisible unit serializes the batch.
        assert_eq!(stats.chunk_size, 1);
        let chunks: usize = stats.per_thread.iter().map(|t| t.chunks_claimed).sum();
        assert!(chunks >= 4, "at least the three singles plus one cohort");
        assert!(stats.phase1.cohorts >= 2, "member cap produced ≥ 2 cohorts");
        assert!(stats.phase1.phase1_shared <= 16);
        assert!(stats.phase1.distinct_endpoints <= stats.phase1.phase1_shared);
        assert!(stats.phase1.traversal.total_edge_scans() > 0);

        // A single worker plans one uncapped cohort: exact accounting.
        let solo = BatchExecutor::new(1).run_detailed(&eve, &batch).stats;
        assert_eq!(solo.phase1.cohorts, 1);
        assert_eq!(solo.phase1.phase1_shared, 16);
        assert_eq!(solo.phase1.distinct_endpoints, 2, "(S,T) and (A,B)");
        assert_eq!(solo.phase1.dedup_ratio(), Some(8.0));
        let solo_chunks: usize = solo.per_thread.iter().map(|t| t.chunks_claimed).sum();
        assert_eq!(solo_chunks, 4, "one cohort unit + three fallback singles");
        assert!(stats.peak_memory.peak_bytes() > 0);
        // Workers that answered at least one query retain workspace buffers.
        for worker in &stats.per_thread {
            if worker.answered > 0 {
                assert!(worker.workspace_retained_bytes > 0);
            }
        }
        assert!(stats.workspace_retained_bytes > 0);
    }

    #[test]
    fn legacy_per_query_path_keeps_chunked_cursor_semantics() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let outcome = BatchExecutor::new(4)
            .shared_phase1(false)
            .run_detailed(&eve, &batch);
        let stats = &outcome.stats;
        assert_eq!(stats.queries(), batch.len());
        assert!(stats.chunk_size >= 1);
        let chunks: usize = stats.per_thread.iter().map(|t| t.chunks_claimed).sum();
        assert_eq!(chunks, batch.len().div_ceil(stats.chunk_size));
        assert_eq!(stats.phase1, SharedPhase1Stats::default(), "sharing off");
        // And the slots agree with the shared path bit for bit.
        let shared = BatchExecutor::new(4).run(&eve, &batch);
        for (i, (legacy, with_sharing)) in outcome.results.iter().zip(&shared).enumerate() {
            match (legacy, with_sharing) {
                (Ok(a), Ok(b)) => assert_eq!(a.edges(), b.edges(), "slot {i}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "slot {i}"),
                other => panic!("slot {i}: Ok/Err mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn empty_batch_and_single_query() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let outcome = BatchExecutor::new(8).run_detailed(&eve, &[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.queries(), 0);
        assert_eq!(outcome.stats.threads, 1, "no workers beyond the work");

        let one = BatchExecutor::new(8).run(&eve, &[Query::new(S, T, 4)]);
        assert_eq!(one.len(), 1);
        assert_eq!(
            one[0].as_ref().unwrap().edges(),
            eve.query(Query::new(S, T, 4)).unwrap().edges()
        );
    }

    #[test]
    fn chunk_size_override_is_honoured_and_harmless() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let expected = eve.query_batch(&batch);
        for chunk in [1usize, 2, 7, 1000] {
            // The chunked cursor belongs to the per-query path; the shared
            // path claims whole cohort units instead.
            let outcome = BatchExecutor::new(2)
                .shared_phase1(false)
                .chunk_size(chunk)
                .run_detailed(&eve, &batch);
            assert_eq!(outcome.stats.chunk_size, chunk);
            for (got, exp) in outcome.results.iter().zip(&expected) {
                match (got, exp) {
                    (Ok(a), Ok(b)) => assert_eq!(a.edges(), b.edges()),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    other => panic!("chunk {chunk}: Ok/Err mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_runs_match_uncached_at_every_thread_count() {
        use crate::cache::{CachedEve, SpgCache};
        use spg_graph::VersionedGraph;

        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let eve = Eve::with_defaults(vg.graph());
        // Duplicate the mixed batch so hot keys repeat within one run.
        let mut batch = mixed_batch(vg.vertex_count() as u32);
        let original = batch.clone();
        batch.extend(original);
        let expected = eve.query_batch(&batch);

        for threads in [1usize, 2, 4, 8] {
            let outcome = BatchExecutor::new(threads).run_cached_detailed(&cached, &batch);
            for (i, (got, exp)) in outcome.results.iter().zip(&expected).enumerate() {
                match (got, exp) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.edges(), b.edges(), "slot {i} threads {threads}");
                        assert_eq!(a.stats().upper_bound_edges, b.stats().upper_bound_edges);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "slot {i} threads {threads}"),
                    other => panic!("slot {i} threads {threads}: Ok/Err mismatch {other:?}"),
                }
            }
            // Valid slots partition into hits, computed misses and
            // coalesced duplicates; errors are none of the three.
            let stats = &outcome.stats;
            assert_eq!(
                stats.cache_hits + stats.cache_misses + stats.cache_coalesced,
                stats.answered
            );
            // Compute workers only ever see misses (the probe phase counts
            // hits globally), and their per-thread counters sum exactly.
            let (hits, misses): (usize, usize) = stats
                .per_thread
                .iter()
                .fold((0, 0), |(h, m), t| (h + t.cache_hits, m + t.cache_misses));
            assert_eq!(hits, 0);
            assert_eq!(misses, stats.cache_misses);
            // Per-slot sources line up with the result shape.
            assert_eq!(outcome.slot_sources.len(), batch.len());
            for (src, result) in outcome.slot_sources.iter().zip(&outcome.results) {
                assert_eq!(src.is_none(), result.is_err());
            }
        }

        // The cache stayed warm across thread counts: a rerun is all hits.
        let warm = BatchExecutor::new(4).run_cached_detailed(&cached, &batch);
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.stats.cache_hits, warm.stats.answered);
        assert_eq!(warm.stats.cache_hit_rate(), Some(1.0));
        assert_eq!(warm.stats.cache_evictions, 0, "budget was never exceeded");
    }

    #[test]
    fn uncached_runs_report_zero_cache_counters() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let outcome = BatchExecutor::new(2).run_detailed(&eve, &mixed_batch(8));
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(outcome.stats.cache_misses, 0);
        assert_eq!(outcome.stats.cache_coalesced, 0);
        assert_eq!(outcome.stats.cache_evictions, 0);
        assert_eq!(outcome.stats.cache_hit_rate(), None);
        assert!(outcome.slot_sources.is_empty(), "uncached runs carry none");
    }

    #[test]
    fn identical_cold_misses_compute_once_per_drain() {
        use crate::cache::{CachedEve, SpgCache};
        use spg_graph::VersionedGraph;

        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        // 64 identical cold queries in one batch: the singleflight probe
        // collapses 63 of them onto the first slot's computation.
        let batch = vec![Query::new(S, T, 4); 64];
        let outcome = BatchExecutor::new(4).run_cached_detailed(&cached, &batch);
        assert_eq!(outcome.stats.cache_misses, 1, "one compute");
        assert_eq!(outcome.stats.cache_coalesced, 63, "the rest fan in");
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(cache.stats().insertions, 1, "one publish");
        let reference = Eve::with_defaults(vg.graph())
            .query(Query::new(S, T, 4))
            .unwrap();
        for slot in &outcome.results {
            assert_eq!(slot.as_ref().unwrap().edges(), reference.edges());
        }
        for src in &outcome.slot_sources {
            assert!(src.is_some());
        }
        assert_eq!(
            outcome
                .slot_sources
                .iter()
                .filter(|s| **s == Some(CacheOutcome::Coalesced))
                .count(),
            63
        );
    }

    #[test]
    fn expired_deadlines_fail_their_own_slots_only() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch: Vec<Query> = (2..=8).map(|k| Query::new(S, T, k)).collect();
        let expected = eve.query_batch(&batch);
        // Slots 1 and 4 are already past their deadline; the rest unbounded.
        let mut deadlines: Vec<Option<Instant>> = vec![None; batch.len()];
        let expired = Instant::now();
        deadlines[1] = Some(expired);
        deadlines[4] = Some(expired);
        for shared in [true, false] {
            let outcome = BatchExecutor::new(2)
                .shared_phase1(shared)
                .run_detailed_with_deadlines(&eve, &batch, &deadlines);
            for (i, slot) in outcome.results.iter().enumerate() {
                if i == 1 || i == 4 {
                    assert_eq!(
                        slot.as_ref().unwrap_err(),
                        &QueryError::DeadlineExceeded,
                        "slot {i} shared={shared}"
                    );
                } else {
                    assert_eq!(
                        slot.as_ref().unwrap().edges(),
                        expected[i].as_ref().unwrap().edges(),
                        "slot {i} shared={shared}"
                    );
                }
            }
            assert_eq!(outcome.stats.errors, 2);
            assert_eq!(outcome.stats.panics_isolated, 0);
        }

        // All members expired: the cohort's shared traversal itself aborts
        // (its budget is the latest member deadline) and every slot reports
        // the deadline deterministically.
        let all_expired: Vec<Option<Instant>> = vec![Some(expired); batch.len()];
        let outcome = BatchExecutor::new(2).run_detailed_with_deadlines(&eve, &batch, &all_expired);
        for slot in &outcome.results {
            assert_eq!(slot.as_ref().unwrap_err(), &QueryError::DeadlineExceeded);
        }
    }

    #[test]
    fn a_panicking_query_is_contained_to_its_slot() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch: Vec<Query> = (1..=8).map(|k| Query::new(S, T, k)).collect();
        let expected = eve.query_batch(&batch);
        // Drive the per-query drain directly with a run_one that blows up on
        // one slot — the executor must contain it, replace the workspace and
        // answer every other slot bit-identically.
        let outcome =
            BatchExecutor::new(2)
                .chunk_size(2)
                .run_with(&batch, &|ws, index, query, _stats| {
                    if index == 3 {
                        panic!("injected defect");
                    }
                    eve.query_with(ws, query)
                });
        for (i, slot) in outcome.results.iter().enumerate() {
            if i == 3 {
                assert_eq!(slot.as_ref().unwrap_err(), &QueryError::ExecutionPanicked);
            } else {
                assert_eq!(
                    slot.as_ref().unwrap().edges(),
                    expected[i].as_ref().unwrap().edges(),
                    "slot {i}"
                );
            }
        }
        assert_eq!(outcome.stats.panics_isolated, 1);
        assert_eq!(outcome.stats.errors, 1);
        assert_eq!(outcome.stats.answered, batch.len() - 1);
    }

    /// Failpoint-injected faults exercise the cohort path, the drain-level
    /// gate and the singleflight leader. One #[test] (the registry is
    /// process-global) under the serialization guard.
    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_faults_are_contained_and_recovered_from() {
        use crate::cache::{CachedEve, SpgCache};
        use crate::failpoints::{self, FailAction};
        use spg_graph::VersionedGraph;

        let _guard = failpoints::serial_guard();
        failpoints::clear_all();

        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch: Vec<Query> = (1..=8).map(|k| Query::new(S, T, k)).collect();
        let expected = eve.query_batch(&batch);

        // A phase-2 panic inside a cohort poisons only that cohort's
        // unanswered members; the drain recovers on a fresh workspace and
        // an immediate rerun is bit-identical to the sequential reference.
        failpoints::set(sites::PHASE2, FailAction::Panic, Some(1));
        let outcome = BatchExecutor::new(1).run_detailed(&eve, &batch);
        assert_eq!(outcome.stats.panics_isolated, 1);
        let panicked = outcome
            .results
            .iter()
            .filter(|r| matches!(r, Err(QueryError::ExecutionPanicked)))
            .count();
        assert!(panicked >= 1, "the hit member (at least) errors");
        assert_eq!(outcome.stats.errors, panicked);
        for (slot, exp) in outcome.results.iter().zip(&expected) {
            if let Ok(spg) = slot {
                assert_eq!(spg.edges(), exp.as_ref().unwrap().edges());
            }
        }
        let recovered = BatchExecutor::new(1).run_detailed(&eve, &batch);
        assert_eq!(recovered.stats.panics_isolated, 0);
        for (slot, exp) in recovered.results.iter().zip(&expected) {
            assert_eq!(
                slot.as_ref().unwrap().edges(),
                exp.as_ref().unwrap().edges()
            );
        }

        // A drain-level budget fault fails the whole cached drain
        // gracefully: every slot answers with the canonical error.
        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        failpoints::set(sites::BATCH_DRAIN, FailAction::Budget, Some(1));
        let outcome = BatchExecutor::new(2).run_cached_detailed(&cached, &batch);
        assert_eq!(outcome.results.len(), batch.len());
        for slot in &outcome.results {
            assert_eq!(slot.as_ref().unwrap_err(), &QueryError::BudgetExceeded);
        }
        assert!(outcome.slot_sources.iter().all(Option::is_none));

        // A failing singleflight leader broadcasts its error to the led
        // slots instead of leaving flights dangling. The k = 8 slot clamps
        // onto the k = 7 key and *joins* that flight; observing a
        // budget-failed (not panicked) leader it recomputes under its own
        // unlimited budget and recovers the answer.
        failpoints::set(sites::FLIGHT_LEADER, FailAction::Budget, Some(1));
        let outcome = BatchExecutor::new(2).run_cached_detailed(&cached, &batch);
        for (slot, exp) in outcome.results.iter().take(7).zip(&expected) {
            assert_eq!(slot.as_ref().unwrap_err(), &QueryError::BudgetExceeded);
            assert!(exp.is_ok());
        }
        assert_eq!(
            outcome.results[7].as_ref().unwrap().edges(),
            expected[7].as_ref().unwrap().edges(),
            "the joiner recomputed under its own budget"
        );
        let healthy = BatchExecutor::new(2).run_cached_detailed(&cached, &batch);
        for (slot, exp) in healthy.results.iter().zip(&expected) {
            assert_eq!(
                slot.as_ref().unwrap().edges(),
                exp.as_ref().unwrap().edges()
            );
        }

        failpoints::clear_all();
    }

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(BatchExecutor::new(0).threads(), 1, "zero threads clamps");
        assert!(BatchExecutor::with_available_parallelism().threads() >= 1);
        assert_eq!(
            BatchExecutor::default().threads(),
            BatchExecutor::with_available_parallelism().threads()
        );
        // Auto chunking: never zero, never more than 64.
        let ex = BatchExecutor::new(4);
        assert_eq!(ex.effective_chunk(0), 1);
        assert_eq!(ex.effective_chunk(10_000), 64);
        assert_eq!(ex.chunk_size(9).effective_chunk(10_000), 9);
    }
}
