//! Multi-threaded batch query execution.
//!
//! The EVE pipeline is embarrassingly parallel across queries: the host
//! [`DiGraph`](spg_graph::DiGraph) is read-only and every per-query structure
//! lives in a [`QueryWorkspace`]. [`BatchExecutor`] exploits that with plain
//! `std::thread::scope` workers (no dependency, no global thread-pool
//! registry):
//!
//! * each worker owns a **private** [`QueryWorkspace`], so the hot path stays
//!   allocation-free after warm-up exactly as in the sequential case;
//! * work is pulled through one **atomic chunked cursor** — a worker claims
//!   `chunk` consecutive query indices per `fetch_add`, which keeps cursor
//!   traffic negligible while still load-balancing skewed batches;
//! * every result is written into its query's **pre-sized slot**
//!   (`OnceLock` per index), so the output order is the input order and the
//!   answers are bit-identical to sequential [`Eve::query_with`] runs — the
//!   workspace-reuse property (answers never depend on what a workspace ran
//!   before; see `tests/workspace_reuse.rs`) is what makes per-thread
//!   workspaces safe.
//!
//! ### Error aggregation policy
//!
//! A batch never short-circuits: an invalid query produces an `Err` in its
//! own slot and has no effect on any other slot. [`BatchStats`] counts
//! errors globally and per worker so serving layers can alarm on error
//! ratios without scanning the result vector.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

use crate::cache::{CacheOutcome, CachedEve};
use crate::eve::Eve;
use crate::query::{Query, QueryError};
use crate::spg::SimplePathGraph;
use crate::stats::MemoryEstimate;
use crate::workspace::QueryWorkspace;

/// Per-query outcome of a batch: the answer, or why the query was rejected.
pub type BatchResult = Result<SimplePathGraph, QueryError>;

// The executor shares `Eve` (a graph reference + config) and the query slice
// across scoped threads; keep that capability a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Eve<'static>>();
    assert_send_sync::<Query>();
    assert_send_sync::<QueryError>();
    assert_send_sync::<QueryWorkspace>();
    assert_send_sync::<SimplePathGraph>();
};

/// Multi-threaded executor for query batches (see the module docs).
///
/// ```
/// use spg_core::{BatchExecutor, Eve, Query};
/// use spg_core::paper_example::{figure1_graph, names};
///
/// let g = figure1_graph();
/// let eve = Eve::with_defaults(&g);
/// let queries: Vec<Query> = (2..=8).map(|k| Query::new(names::S, names::T, k)).collect();
/// let parallel = BatchExecutor::new(4).run(&eve, &queries);
/// let sequential = eve.query_batch(&queries);
/// for (p, s) in parallel.iter().zip(&sequential) {
///     assert_eq!(p.as_ref().unwrap().edges(), s.as_ref().unwrap().edges());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExecutor {
    threads: usize,
    chunk_size: usize,
}

impl BatchExecutor {
    /// Creates an executor with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        BatchExecutor {
            threads: threads.max(1),
            chunk_size: 0,
        }
    }

    /// Creates an executor sized to the machine
    /// ([`std::thread::available_parallelism`], falling back to 1).
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        BatchExecutor::new(threads)
    }

    /// Overrides the cursor chunk size (0 restores the automatic choice).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = chunk;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queries claimed per cursor `fetch_add`: the explicit override, or
    /// roughly eight chunks per worker — small enough to balance batches
    /// whose expensive queries cluster, large enough that cursor contention
    /// stays invisible next to a query's cost.
    fn effective_chunk(&self, len: usize) -> usize {
        if self.chunk_size > 0 {
            self.chunk_size
        } else {
            (len / (self.threads * 8)).clamp(1, 64)
        }
    }

    /// Answers `queries` against `eve`'s graph, returning one slot per query
    /// in input order. Answers (and errors) are bit-identical to calling
    /// [`Eve::query_with`] per query on a fresh workspace, at any thread
    /// count.
    pub fn run(&self, eve: &Eve<'_>, queries: &[Query]) -> Vec<BatchResult> {
        self.run_detailed(eve, queries).results
    }

    /// [`BatchExecutor::run`] plus execution statistics: global and
    /// per-worker query/error counts, the worst single-query
    /// [`MemoryEstimate`] (field-wise max merge), and the workspace capacity
    /// each worker retained.
    pub fn run_detailed(&self, eve: &Eve<'_>, queries: &[Query]) -> BatchOutcome {
        self.run_with(queries, &|ws, query, _stats| eve.query_with(ws, query))
    }

    /// Answers `queries` through a shared [`crate::SpgCache`]: every worker
    /// carries its own copy of `cached` (an [`Eve`] plus cache handle) and a
    /// private workspace, while the cache itself is shared lock-striped
    /// state. Hits skip all three pipeline phases; misses compute on the
    /// worker's workspace and publish for everyone. Slots remain
    /// bit-identical to the uncached [`BatchExecutor::run`] at any thread
    /// count — the differential harness in `tests/cache_differential.rs`
    /// holds this as an invariant.
    pub fn run_cached(&self, cached: &CachedEve<'_, '_>, queries: &[Query]) -> Vec<BatchResult> {
        self.run_cached_detailed(cached, queries).results
    }

    /// [`BatchExecutor::run_cached`] plus execution statistics.
    /// [`BatchStats::cache_hits`] / [`BatchStats::cache_misses`] count this
    /// run's lookups (summed from the per-worker counters);
    /// [`BatchStats::cache_evictions`] is the shared cache's eviction-counter
    /// delta across the run, which includes evictions triggered by
    /// concurrent users of the same cache, if any.
    pub fn run_cached_detailed(
        &self,
        cached: &CachedEve<'_, '_>,
        queries: &[Query],
    ) -> BatchOutcome {
        let evictions_before = cached.cache().eviction_count();
        let mut outcome = self.run_with(queries, &|ws, query, stats| match cached
            .query_with_outcome(ws, query)
        {
            Ok((spg, CacheOutcome::Hit)) => {
                stats.cache_hits += 1;
                Ok(spg)
            }
            Ok((spg, CacheOutcome::Miss)) => {
                stats.cache_misses += 1;
                Ok(spg)
            }
            Err(err) => Err(err),
        });
        outcome.stats.cache_evictions = cached
            .cache()
            .eviction_count()
            .saturating_sub(evictions_before) as usize;
        outcome
    }

    /// Shared batch driver: spawn workers, drain the chunked cursor through
    /// `run_one`, collect slots and fold per-worker stats. `run_one` answers
    /// one query on the worker's private workspace and may update the
    /// worker's cache counters.
    fn run_with(
        &self,
        queries: &[Query],
        run_one: &(dyn Fn(&mut QueryWorkspace, Query, &mut ThreadBatchStats) -> BatchResult + Sync),
    ) -> BatchOutcome {
        let workers = self.threads.min(queries.len()).max(1);
        let chunk = self.effective_chunk(queries.len());
        let slots: Vec<OnceLock<BatchResult>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);

        let mut per_thread: Vec<ThreadBatchStats> = Vec::with_capacity(workers);
        if workers == 1 {
            // Sequential fast path: same drain loop, no spawn cost. This is
            // also what makes `BatchExecutor::new(1)` a faithful baseline in
            // the thread-scaling benchmarks.
            per_thread.push(drain(run_one, queries, &cursor, chunk, &slots));
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(|| drain(run_one, queries, &cursor, chunk, &slots)))
                    .collect();
                for handle in handles {
                    per_thread.push(handle.join().expect("batch worker panicked"));
                }
            });
        }

        let results: Vec<BatchResult> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("the chunked cursor visits every query index exactly once")
            })
            .collect();
        let stats = BatchStats::from_workers(workers, chunk, per_thread);
        debug_assert_eq!(stats.answered + stats.errors, results.len());
        BatchOutcome { results, stats }
    }
}

impl Default for BatchExecutor {
    /// Same as [`BatchExecutor::with_available_parallelism`].
    fn default() -> Self {
        BatchExecutor::with_available_parallelism()
    }
}

/// One worker's drain loop: claim a chunk of query indices, answer each on
/// the private workspace through `run_one`, publish into the pre-sized
/// slots.
fn drain(
    run_one: &(dyn Fn(&mut QueryWorkspace, Query, &mut ThreadBatchStats) -> BatchResult + Sync),
    queries: &[Query],
    cursor: &AtomicUsize,
    chunk: usize,
    slots: &[OnceLock<BatchResult>],
) -> ThreadBatchStats {
    let mut ws = QueryWorkspace::new();
    let mut stats = ThreadBatchStats::default();
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= queries.len() {
            break;
        }
        stats.chunks_claimed += 1;
        let end = (start + chunk).min(queries.len());
        for (query, slot) in queries[start..end].iter().zip(&slots[start..end]) {
            let result = run_one(&mut ws, *query, &mut stats);
            match &result {
                Ok(spg) => {
                    stats.answered += 1;
                    stats.peak_memory.merge_max(&spg.stats().memory);
                }
                Err(_) => stats.errors += 1,
            }
            slot.set(result)
                .expect("no other worker may claim this query index");
        }
    }
    stats.workspace_retained_bytes = ws.retained_bytes();
    stats
}

/// Results plus statistics of one [`BatchExecutor::run_detailed`] call.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One slot per input query, in input order.
    pub results: Vec<BatchResult>,
    /// Global and per-worker execution counters.
    pub stats: BatchStats,
}

/// Counters for one worker thread of a batch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadBatchStats {
    /// Queries this worker answered successfully.
    pub answered: usize,
    /// Queries this worker rejected ([`QueryError`] slots).
    pub errors: usize,
    /// Cursor chunks this worker claimed.
    pub chunks_claimed: usize,
    /// Cache lookups this worker answered from the shared [`crate::SpgCache`]
    /// (always 0 for uncached runs).
    pub cache_hits: usize,
    /// Cache lookups this worker had to compute-then-publish (always 0 for
    /// uncached runs).
    pub cache_misses: usize,
    /// Worst single-query memory estimate seen by this worker
    /// ([`MemoryEstimate::merge_max`] over its queries).
    pub peak_memory: MemoryEstimate,
    /// Buffer capacity this worker's private workspace retained at the end
    /// of the batch (its steady-state footprint).
    pub workspace_retained_bytes: usize,
}

/// Aggregated execution statistics of a batch run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Workers actually spawned (`min(threads, queries)`, at least 1).
    pub threads: usize,
    /// Queries claimed per cursor step.
    pub chunk_size: usize,
    /// Successfully answered queries across all workers.
    pub answered: usize,
    /// Rejected queries across all workers (the error aggregation policy is
    /// per-slot: an invalid query never affects its neighbours).
    pub errors: usize,
    /// Queries served from the shared result cache across all workers
    /// ([`BatchExecutor::run_cached`]; always 0 for uncached runs).
    pub cache_hits: usize,
    /// Queries computed and published to the shared result cache across all
    /// workers (always 0 for uncached runs).
    pub cache_misses: usize,
    /// Evictions the shared cache performed while this batch ran (the
    /// cache's eviction-counter delta — includes evictions triggered by
    /// concurrent users of the same cache; always 0 for uncached runs).
    pub cache_evictions: usize,
    /// Worst single-query memory estimate across the whole batch.
    pub peak_memory: MemoryEstimate,
    /// Sum of every worker's retained workspace capacity — the steady-state
    /// memory a long-lived executor of this shape keeps resident.
    pub workspace_retained_bytes: usize,
    /// Per-worker breakdown, in spawn order.
    pub per_thread: Vec<ThreadBatchStats>,
}

impl BatchStats {
    fn from_workers(threads: usize, chunk_size: usize, per_thread: Vec<ThreadBatchStats>) -> Self {
        let mut stats = BatchStats {
            threads,
            chunk_size,
            ..BatchStats::default()
        };
        for worker in &per_thread {
            stats.answered += worker.answered;
            stats.errors += worker.errors;
            stats.cache_hits += worker.cache_hits;
            stats.cache_misses += worker.cache_misses;
            stats.peak_memory.merge_max(&worker.peak_memory);
            stats.workspace_retained_bytes += worker.workspace_retained_bytes;
        }
        stats.per_thread = per_thread;
        stats
    }

    /// Total queries processed (answered + rejected).
    pub fn queries(&self) -> usize {
        self.answered + self.errors
    }

    /// Fraction of this run's cache lookups served from the cache (`None`
    /// for uncached runs or batches with no valid query).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / lookups as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};

    fn mixed_batch(n: u32) -> Vec<Query> {
        // Valid queries across hop constraints, plus the three invalid
        // shapes (s == t, endpoint out of range, k == 0) scattered through
        // the batch so error slots land on every worker.
        let mut batch = Vec::new();
        for k in 1..=8u32 {
            batch.push(Query::new(S, T, k));
            batch.push(Query::new(A, B, k));
        }
        batch.push(Query::new(S, S, 3));
        batch.insert(5, Query::new(S, n + 7, 3));
        batch.insert(9, Query::new(S, T, 0));
        batch
    }

    #[test]
    fn parallel_matches_sequential_at_every_thread_count() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let expected = eve.query_batch(&batch);
        for threads in [1usize, 2, 3, 4, 8] {
            let got = BatchExecutor::new(threads).run(&eve, &batch);
            assert_eq!(got.len(), expected.len());
            for (i, (g_slot, e_slot)) in got.iter().zip(&expected).enumerate() {
                match (g_slot, e_slot) {
                    (Ok(g_spg), Ok(e_spg)) => {
                        assert_eq!(g_spg.edges(), e_spg.edges(), "slot {i} threads {threads}");
                        assert_eq!(
                            g_spg.stats().upper_bound_edges,
                            e_spg.stats().upper_bound_edges
                        );
                    }
                    (Err(g_err), Err(e_err)) => {
                        assert_eq!(g_err, e_err, "slot {i} threads {threads}")
                    }
                    other => panic!("slot {i} threads {threads}: Ok/Err mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_account_for_every_query() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let outcome = BatchExecutor::new(4).run_detailed(&eve, &batch);
        let stats = &outcome.stats;
        assert_eq!(stats.queries(), batch.len());
        assert_eq!(stats.errors, 3, "exactly the three injected invalid slots");
        assert_eq!(stats.threads, 4);
        assert!(stats.chunk_size >= 1);
        assert_eq!(stats.per_thread.len(), 4);
        let per_thread_total: usize = stats.per_thread.iter().map(|t| t.answered + t.errors).sum();
        assert_eq!(per_thread_total, batch.len());
        let chunks: usize = stats.per_thread.iter().map(|t| t.chunks_claimed).sum();
        assert_eq!(chunks, batch.len().div_ceil(stats.chunk_size));
        assert!(stats.peak_memory.peak_bytes() > 0);
        // Workers that answered at least one query retain workspace buffers.
        for worker in &stats.per_thread {
            if worker.answered > 0 {
                assert!(worker.workspace_retained_bytes > 0);
            }
        }
        assert!(stats.workspace_retained_bytes > 0);
    }

    #[test]
    fn empty_batch_and_single_query() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let outcome = BatchExecutor::new(8).run_detailed(&eve, &[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.queries(), 0);
        assert_eq!(outcome.stats.threads, 1, "no workers beyond the work");

        let one = BatchExecutor::new(8).run(&eve, &[Query::new(S, T, 4)]);
        assert_eq!(one.len(), 1);
        assert_eq!(
            one[0].as_ref().unwrap().edges(),
            eve.query(Query::new(S, T, 4)).unwrap().edges()
        );
    }

    #[test]
    fn chunk_size_override_is_honoured_and_harmless() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let batch = mixed_batch(g.vertex_count() as u32);
        let expected = eve.query_batch(&batch);
        for chunk in [1usize, 2, 7, 1000] {
            let outcome = BatchExecutor::new(2)
                .chunk_size(chunk)
                .run_detailed(&eve, &batch);
            assert_eq!(outcome.stats.chunk_size, chunk);
            for (got, exp) in outcome.results.iter().zip(&expected) {
                match (got, exp) {
                    (Ok(a), Ok(b)) => assert_eq!(a.edges(), b.edges()),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    other => panic!("chunk {chunk}: Ok/Err mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_runs_match_uncached_at_every_thread_count() {
        use crate::cache::{CachedEve, SpgCache};
        use spg_graph::VersionedGraph;

        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let eve = Eve::with_defaults(vg.graph());
        // Duplicate the mixed batch so hot keys repeat within one run.
        let mut batch = mixed_batch(vg.vertex_count() as u32);
        let original = batch.clone();
        batch.extend(original);
        let expected = eve.query_batch(&batch);

        for threads in [1usize, 2, 4, 8] {
            let outcome = BatchExecutor::new(threads).run_cached_detailed(&cached, &batch);
            for (i, (got, exp)) in outcome.results.iter().zip(&expected).enumerate() {
                match (got, exp) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.edges(), b.edges(), "slot {i} threads {threads}");
                        assert_eq!(a.stats().upper_bound_edges, b.stats().upper_bound_edges);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "slot {i} threads {threads}"),
                    other => panic!("slot {i} threads {threads}: Ok/Err mismatch {other:?}"),
                }
            }
            // Every valid query is exactly one lookup; errors never are.
            let stats = &outcome.stats;
            assert_eq!(stats.cache_hits + stats.cache_misses, stats.answered);
            let (hits, misses): (usize, usize) = stats
                .per_thread
                .iter()
                .fold((0, 0), |(h, m), t| (h + t.cache_hits, m + t.cache_misses));
            assert_eq!((hits, misses), (stats.cache_hits, stats.cache_misses));
        }

        // The cache stayed warm across thread counts: a rerun is all hits.
        let warm = BatchExecutor::new(4).run_cached_detailed(&cached, &batch);
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.stats.cache_hits, warm.stats.answered);
        assert_eq!(warm.stats.cache_hit_rate(), Some(1.0));
        assert_eq!(warm.stats.cache_evictions, 0, "budget was never exceeded");
    }

    #[test]
    fn uncached_runs_report_zero_cache_counters() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let outcome = BatchExecutor::new(2).run_detailed(&eve, &mixed_batch(8));
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(outcome.stats.cache_misses, 0);
        assert_eq!(outcome.stats.cache_evictions, 0);
        assert_eq!(outcome.stats.cache_hit_rate(), None);
    }

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(BatchExecutor::new(0).threads(), 1, "zero threads clamps");
        assert!(BatchExecutor::with_available_parallelism().threads() >= 1);
        assert_eq!(BatchExecutor::default(), BatchExecutor::default());
        // Auto chunking: never zero, never more than 64.
        let ex = BatchExecutor::new(4);
        assert_eq!(ex.effective_chunk(0), 1);
        assert_eq!(ex.effective_chunk(10_000), 64);
        assert_eq!(ex.chunk_size(9).effective_chunk(10_000), 9);
    }
}
