//! Per-query statistics: phase timings, memory accounting and work counters.
//!
//! The paper's evaluation reports not only end-to-end latency (Figure 8) but
//! also the per-phase breakdown (Figure 10(c)), peak space (Figures 9 and
//! 10(a)) and the tightness of the upper bound (Table 3). [`EveStats`]
//! aggregates everything the benchmark harness needs to regenerate those
//! artefacts, and is attached to every [`crate::SimplePathGraph`] answer.

use std::time::Duration;

use crate::labeling::LabelingStats;
use crate::propagation::PropagationStats;
use crate::verification::VerificationStats;
use spg_graph::SearchSpaceStats;

/// Wall-clock time spent in each EVE phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Distance computation (adaptive bidirectional search).
    pub distance: Duration,
    /// Forward + backward essential-vertex propagation.
    pub propagation: Duration,
    /// Edge labeling / upper-bound graph construction.
    pub labeling: Duration,
    /// Undetermined-edge verification (including search ordering).
    pub verification: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.distance + self.propagation + self.labeling + self.verification
    }

    /// Time of the paper's "phase (1): propagation for essential vertices",
    /// which includes the distance computation it depends on.
    pub fn phase1_propagation(&self) -> Duration {
        self.distance + self.propagation
    }

    /// Time of the paper's "phase (2): computing upper-bound graph".
    pub fn phase2_upper_bound(&self) -> Duration {
        self.labeling
    }

    /// Time of the paper's "phase (3): verifying undetermined edges".
    pub fn phase3_verification(&self) -> Duration {
        self.verification
    }
}

/// Analytic estimate of the bytes held by each phase's dominant data
/// structures (see DESIGN.md §2.3 for why this stands in for RSS
/// measurements).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Distance index (forward + backward distance maps) plus, on the
    /// compacted pipeline, the dense search-space CSR.
    pub distance_bytes: usize,
    /// Essential-vertex sets of both propagations.
    pub propagation_bytes: usize,
    /// Upper-bound graph adjacency, labels, departures and arrivals.
    pub upper_bound_bytes: usize,
    /// Verification result set and stacks.
    pub verification_bytes: usize,
    /// Buffer capacity retained by the reusable [`crate::QueryWorkspace`]
    /// after the query — the steady-state footprint a warm workspace keeps
    /// so that subsequent queries are allocation-free. Not part of
    /// [`MemoryEstimate::peak_bytes`]: the live per-phase bytes above already
    /// account for the portions in use, and capacity is amortised across the
    /// whole batch rather than attributable to one query.
    pub workspace_arena_bytes: usize,
}

impl MemoryEstimate {
    /// Sum over all phases: EVE keeps the earlier structures alive until the
    /// answer is produced, so the peak equals the total.
    pub fn peak_bytes(&self) -> usize {
        self.distance_bytes
            + self.propagation_bytes
            + self.upper_bound_bytes
            + self.verification_bytes
    }

    /// Records the verification phase's footprint: the answer edge list plus
    /// the two DFS stacks (bounded by `k + 2` entries each, Theorem 5.6).
    /// Space accounting for every pipeline lives here so the estimate cannot
    /// drift between implementations.
    pub fn record_verification(&mut self, answer_edges: usize, k: u32) {
        self.verification_bytes = answer_edges * std::mem::size_of::<(u32, u32)>()
            + (k as usize + 2) * 2 * std::mem::size_of::<u32>();
    }

    /// Field-wise maximum merge. Batch executors fold the per-query estimates
    /// of one worker (and then the per-worker results) through this to report
    /// the worst single-query footprint observed anywhere in the batch — a
    /// max, not a sum, because queries on one workspace run one at a time and
    /// the workspace's retained capacity converges to the largest query's
    /// demand.
    pub fn merge_max(&mut self, other: &MemoryEstimate) {
        self.distance_bytes = self.distance_bytes.max(other.distance_bytes);
        self.propagation_bytes = self.propagation_bytes.max(other.propagation_bytes);
        self.upper_bound_bytes = self.upper_bound_bytes.max(other.upper_bound_bytes);
        self.verification_bytes = self.verification_bytes.max(other.verification_bytes);
        self.workspace_arena_bytes = self.workspace_arena_bytes.max(other.workspace_arena_bytes);
    }
}

/// All statistics collected while answering one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct EveStats {
    /// Wall-clock time per phase.
    pub timings: PhaseTimings,
    /// Estimated bytes per phase.
    pub memory: MemoryEstimate,
    /// Counters from the distance phase.
    pub search_space: SearchSpaceStats,
    /// Counters from the forward propagation.
    pub forward_propagation: PropagationStats,
    /// Counters from the backward propagation.
    pub backward_propagation: PropagationStats,
    /// Counters from edge labeling.
    pub labeling: LabelingStats,
    /// Counters from verification.
    pub verification: VerificationStats,
    /// Number of edges in the upper-bound graph `SPGᵘ_k` (definite +
    /// undetermined), used for the redundant ratio of Table 3.
    pub upper_bound_edges: usize,
}

impl EveStats {
    /// Redundant ratio `r_D = (|E(SPGᵘ_k)| − |E(SPG_k)|) / |E(SPG_k)|`
    /// (§6.6), given the final answer size. Returns `None` when the answer is
    /// empty.
    pub fn redundant_ratio(&self, answer_edges: usize) -> Option<f64> {
        if answer_edges == 0 {
            return None;
        }
        Some((self.upper_bound_edges as f64 - answer_edges as f64) / answer_edges as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_add_up() {
        let t = PhaseTimings {
            distance: Duration::from_millis(1),
            propagation: Duration::from_millis(2),
            labeling: Duration::from_millis(3),
            verification: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        assert_eq!(t.phase1_propagation(), Duration::from_millis(3));
        assert_eq!(t.phase2_upper_bound(), Duration::from_millis(3));
        assert_eq!(t.phase3_verification(), Duration::from_millis(4));
    }

    #[test]
    fn memory_peak_is_sum_of_phases() {
        let m = MemoryEstimate {
            distance_bytes: 10,
            propagation_bytes: 20,
            upper_bound_bytes: 30,
            verification_bytes: 40,
            // Retained workspace capacity is reported but never double
            // counted into the per-query peak.
            workspace_arena_bytes: 1000,
        };
        assert_eq!(m.peak_bytes(), 100);
    }

    #[test]
    fn record_verification_formula() {
        let mut m = MemoryEstimate::default();
        m.record_verification(5, 6);
        assert_eq!(
            m.verification_bytes,
            5 * std::mem::size_of::<(u32, u32)>() + 8 * 2 * std::mem::size_of::<u32>()
        );
    }

    #[test]
    fn merge_max_is_field_wise() {
        let mut a = MemoryEstimate {
            distance_bytes: 10,
            propagation_bytes: 200,
            upper_bound_bytes: 3,
            verification_bytes: 40,
            workspace_arena_bytes: 500,
        };
        let b = MemoryEstimate {
            distance_bytes: 100,
            propagation_bytes: 20,
            upper_bound_bytes: 30,
            verification_bytes: 4,
            workspace_arena_bytes: 5000,
        };
        a.merge_max(&b);
        assert_eq!(a.distance_bytes, 100);
        assert_eq!(a.propagation_bytes, 200);
        assert_eq!(a.upper_bound_bytes, 30);
        assert_eq!(a.verification_bytes, 40);
        assert_eq!(a.workspace_arena_bytes, 5000);
        // Merging with an empty estimate is the identity.
        let before = a;
        a.merge_max(&MemoryEstimate::default());
        assert_eq!(a, before);
    }

    #[test]
    fn redundant_ratio_formula() {
        let stats = EveStats {
            upper_bound_edges: 105,
            ..Default::default()
        };
        let r = stats.redundant_ratio(100).unwrap();
        assert!((r - 0.05).abs() < 1e-12);
        assert_eq!(stats.redundant_ratio(0), None);
    }
}
