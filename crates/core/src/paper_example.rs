//! The running example of the paper (Figure 1), reusable from tests,
//! examples and documentation.
//!
//! The paper illustrates every phase of EVE on one small directed graph with
//! eight vertices `s, a, b, c, h, i, j, t`. This module encodes that graph
//! once, with stable vertex ids, together with the ground-truth artefacts the
//! paper states for it:
//!
//! * all 4-hop-constrained s-t simple paths (Figure 1(b)),
//! * the 4-hop-constrained simple path graph (Figure 1(c)),
//! * the edge labels of the upper-bound graph for `k = 7` (Figure 6(c)),
//! * the departure/arrival sets for `k = 7` (Figure 7(b)).
//!
//! Unit tests across the crate assert against these values, which makes the
//! implementation directly traceable to the paper.

use spg_graph::{DiGraph, VertexId};

/// Stable vertex ids for the Figure 1 graph.
pub mod names {
    use super::VertexId;
    /// Source vertex `s`.
    pub const S: VertexId = 0;
    /// Vertex `a`.
    pub const A: VertexId = 1;
    /// Vertex `c`.
    pub const C: VertexId = 2;
    /// Target vertex `t`.
    pub const T: VertexId = 3;
    /// Vertex `h`.
    pub const H: VertexId = 4;
    /// Vertex `b`.
    pub const B: VertexId = 5;
    /// Vertex `i`.
    pub const I: VertexId = 6;
    /// Vertex `j`.
    pub const J: VertexId = 7;

    /// Human-readable label of a Figure 1 vertex (useful in examples).
    pub fn label(v: VertexId) -> &'static str {
        match v {
            S => "s",
            A => "a",
            C => "c",
            T => "t",
            H => "h",
            B => "b",
            I => "i",
            J => "j",
            _ => "?",
        }
    }
}

use names::*;

/// Builds the directed graph of Figure 1(a).
pub fn figure1_graph() -> DiGraph {
    DiGraph::from_edges(8, figure1_edges())
}

/// The edge list of Figure 1(a).
pub fn figure1_edges() -> Vec<(VertexId, VertexId)> {
    vec![
        (S, A),
        (S, C),
        (A, C),
        (A, H),
        (A, I),
        (C, T),
        (C, B),
        (H, B),
        (B, T),
        (B, A),
        (B, J),
        (I, J),
        (J, H),
    ]
}

/// All 4-hop-constrained s-t simple paths of Figure 1(b), as vertex
/// sequences.
pub fn figure1b_paths() -> Vec<Vec<VertexId>> {
    vec![
        vec![S, C, T],
        vec![S, A, C, T],
        vec![S, C, B, T],
        vec![S, A, C, B, T],
        vec![S, A, H, B, T],
    ]
}

/// The edge set of the 4-hop-constrained s-t simple path graph of
/// Figure 1(c).
pub fn figure1c_spg4_edges() -> Vec<(VertexId, VertexId)> {
    vec![
        (S, A),
        (S, C),
        (A, C),
        (A, H),
        (C, T),
        (C, B),
        (H, B),
        (B, T),
    ]
}

/// The departures `D` with their valid in-neighbours `In_D` for `k = 7`
/// (Figure 7(b), left table).
pub fn figure7b_departures() -> Vec<(VertexId, Vec<VertexId>)> {
    vec![(B, vec![C]), (C, vec![A]), (H, vec![A]), (I, vec![A])]
}

/// The arrivals `A` with their valid out-neighbours `Out_A` for `k = 7`
/// (Figure 7(b), right table).
pub fn figure7b_arrivals() -> Vec<(VertexId, Vec<VertexId>)> {
    vec![(A, vec![C]), (C, vec![B]), (H, vec![B])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_graph_has_expected_shape() {
        let g = figure1_graph();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 13);
        for (u, v) in figure1_edges() {
            assert!(g.has_edge(u, v), "missing edge ({u},{v})");
        }
    }

    #[test]
    fn figure1b_paths_are_valid_simple_paths() {
        let g = figure1_graph();
        for p in figure1b_paths() {
            assert!(p.len() <= 5, "hop constraint 4 means at most 5 vertices");
            assert_eq!(p.first(), Some(&S));
            assert_eq!(p.last(), Some(&T));
            let mut seen = std::collections::HashSet::new();
            for v in &p {
                assert!(seen.insert(*v), "path {p:?} repeats vertex {v}");
            }
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "edge ({}, {}) missing", w[0], w[1]);
            }
        }
    }

    #[test]
    fn figure1c_is_exactly_the_union_of_figure1b() {
        let mut union: Vec<(VertexId, VertexId)> = figure1b_paths()
            .iter()
            .flat_map(|p| p.windows(2).map(|w| (w[0], w[1])).collect::<Vec<_>>())
            .collect();
        union.sort_unstable();
        union.dedup();
        let mut expected = figure1c_spg4_edges();
        expected.sort_unstable();
        assert_eq!(union, expected);
    }

    #[test]
    fn labels_cover_all_vertices() {
        let g = figure1_graph();
        for v in g.vertices() {
            assert_ne!(names::label(v), "?");
        }
        assert_eq!(names::label(99), "?");
    }
}
