//! Propagating computation of essential vertices (§3.2, Algorithm 1) with the
//! forward-looking pruning strategy (§3.3, Theorem 3.6).
//!
//! Forward propagation computes `EV_l(s, y)` for every vertex `y` and level
//! `1 ≤ l ≤ k−1` by the recursion of Equation (4):
//!
//! ```text
//! EV_l(s, y) = ⋂_{x ∈ In(y), P_{l−1}(s,x) ≠ ∅} ( EV_{l−1}(s, x) ∪ {y} )
//! ```
//!
//! Backward propagation runs the same recursion on the reversed graph from
//! `t`. By Theorem 3.5 the result equals the essential vertex sets defined
//! over *simple* paths, which is what the edge-labeling phase consumes.
//!
//! ### Storage
//!
//! Only the levels at which a vertex's set actually *changes* are stored
//! (the paper's "we only store the first one since the others can refer to
//! it" optimisation); [`Propagation::ev`] resolves a `(level, vertex)` lookup
//! to the latest stored level `≤ level`, which implements the inheritance of
//! Algorithm 1 line 12 implicitly.
//!
//! ### Deviation from the paper's pseudo-code
//!
//! Algorithm 1 as printed re-initialises `EV_l(s, y)` from the first frontier
//! in-neighbour alone (its line 7) and never intersects with `EV_{l−1}(s, y)`
//! itself. When a vertex has an in-neighbour that was reached at an earlier
//! level but is *not* part of the current frontier, that in-neighbour's
//! contribution would be lost and the computed set could become a strict
//! superset of Equation (4) — which would make Theorem 3.4 discard edges that
//! actually belong to `SPG_k`. This implementation therefore additionally
//! intersects with the vertex's previous-level set, which provably yields
//! exactly the Equation (4) value (see the module tests, which compare
//! against a brute-force evaluation of Definition 3.1 on enumerated simple
//! paths, and against the paper's Figure 5 table).

use spg_graph::hash::FxHashMap;
use spg_graph::{DiGraph, Direction, DistanceIndex, VertexId, INF_DIST};

use crate::evset::EvSet;
use crate::query::Query;

/// Work counters for one propagation run (one direction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropagationStats {
    /// Number of adjacency entries scanned.
    pub edge_scans: usize,
    /// Number of visits skipped by the forward-looking pruning rule.
    pub pruned_visits: usize,
    /// Number of essential-vertex sets materialised (changed levels only).
    pub sets_stored: usize,
    /// Number of levels actually expanded before the frontier emptied.
    pub levels_run: u32,
}

/// Essential vertex sets for one endpoint of the query.
///
/// A *forward* propagation holds `EV_l(s, ·)`; a *backward* propagation holds
/// `EV_l(·, t)` (computed over the reversed adjacency).
#[derive(Debug, Clone)]
pub struct Propagation {
    /// `s` for forward propagation, `t` for backward propagation.
    origin: VertexId,
    /// The opposite query endpoint, never visited (Definition 3.1 excludes
    /// paths through it).
    excluded: VertexId,
    k: u32,
    /// `levels[l]` maps a vertex to its set if the set changed at level `l`.
    levels: Vec<FxHashMap<VertexId, EvSet>>,
    stats: PropagationStats,
}

impl Propagation {
    /// Forward propagation from `query.source` on `g`, producing
    /// `EV_l(s, y)` for `1 ≤ l ≤ k−1`.
    ///
    /// When `forward_looking` is enabled, propagation into `y` at level `l`
    /// is skipped whenever `l + Δ(y, t) > k` (Theorem 3.6), using the
    /// backward distances of `index`.
    pub fn forward(
        g: &DiGraph,
        query: Query,
        index: &DistanceIndex,
        forward_looking: bool,
    ) -> Propagation {
        Self::run(
            g,
            Direction::Forward,
            query.source,
            query.target,
            query.k,
            |y| index.dist_to_t(y),
            forward_looking,
        )
    }

    /// Backward propagation from `query.target` on the reversed adjacency,
    /// producing `EV_l(v, t)` for `1 ≤ l ≤ k−1`.
    pub fn backward(
        g: &DiGraph,
        query: Query,
        index: &DistanceIndex,
        forward_looking: bool,
    ) -> Propagation {
        Self::run(
            g,
            Direction::Backward,
            query.target,
            query.source,
            query.k,
            |y| index.dist_from_s(y),
            forward_looking,
        )
    }

    fn run<F>(
        g: &DiGraph,
        dir: Direction,
        origin: VertexId,
        excluded: VertexId,
        k: u32,
        remaining_dist: F,
        forward_looking: bool,
    ) -> Propagation
    where
        F: Fn(VertexId) -> u32,
    {
        let mut prop = Propagation {
            origin,
            excluded,
            k,
            levels: vec![FxHashMap::default(); k as usize],
            stats: PropagationStats::default(),
        };
        prop.levels[0].insert(origin, EvSet::singleton(origin));
        prop.stats.sets_stored = 1;

        let mut frontier: Vec<VertexId> = vec![origin];
        for l in 1..k {
            if frontier.is_empty() {
                break;
            }
            prop.stats.levels_run = l;
            let mut updated: FxHashMap<VertexId, EvSet> = FxHashMap::default();
            // Stats are accumulated locally so `ev_x` can borrow `prop`
            // immutably across the inner loop instead of cloning one EvSet
            // per frontier vertex.
            let mut edge_scans = 0usize;
            let mut pruned_visits = 0usize;
            for &x in &frontier {
                // The frontier only ever contains vertices with a set at the
                // previous level (the origin at level 0, or updated vertices).
                let ev_x = prop
                    .ev(l - 1, x)
                    .expect("frontier vertex must have an essential vertex set"); // spg-analyze: allow(no-panic) — frontier vertices are inserted with their sets
                for &y in g.neighbors(x, dir) {
                    edge_scans += 1;
                    if y == origin || y == excluded {
                        continue;
                    }
                    if forward_looking {
                        let rest = remaining_dist(y);
                        if rest == INF_DIST || l + rest > k {
                            pruned_visits += 1;
                            continue;
                        }
                    }
                    match updated.get_mut(&y) {
                        Some(current) => {
                            *current = current.intersect_with_added(ev_x, y);
                        }
                        None => {
                            // Seed with the previous-level set of `y` itself
                            // when it exists (see the module-level deviation
                            // note), otherwise with the contribution of `x`.
                            let seeded = match prop.ev(l - 1, y) {
                                Some(prev) => prev.intersect_with_added(ev_x, y),
                                None => ev_x.with(y),
                            };
                            updated.insert(y, seeded);
                        }
                    }
                }
            }
            prop.stats.edge_scans += edge_scans;
            prop.stats.pruned_visits += pruned_visits;

            let mut next_frontier: Vec<VertexId> = Vec::with_capacity(updated.len());
            let mut level_map: FxHashMap<VertexId, EvSet> = FxHashMap::default();
            for (y, set) in updated {
                next_frontier.push(y);
                let unchanged = prop.ev(l - 1, y).map(|prev| prev == &set).unwrap_or(false);
                if !unchanged {
                    prop.stats.sets_stored += 1;
                    level_map.insert(y, set);
                }
            }
            prop.levels[l as usize] = level_map;
            frontier = next_frontier;
        }
        prop
    }

    /// The endpoint this propagation started from (`s` or `t`).
    pub fn origin(&self) -> VertexId {
        self.origin
    }

    /// The opposite endpoint, excluded from all paths.
    pub fn excluded(&self) -> VertexId {
        self.excluded
    }

    /// Hop constraint `k` the propagation was run with (levels go up to `k−1`).
    pub fn hop_constraint(&self) -> u32 {
        self.k
    }

    /// Work counters.
    pub fn stats(&self) -> PropagationStats {
        self.stats
    }

    /// `EV_l(origin, v)` (forward) or `EV_l(v, origin)` (backward): the set
    /// stored at the latest level `≤ l`, or `None` if `v` was never reached
    /// by level `l`.
    ///
    /// Note: under forward-looking pruning a `None` here does not necessarily
    /// mean "no simple path of length ≤ l exists" — existence must be decided
    /// from the [`DistanceIndex`] (Theorem 3.6 guarantees the pruned lookups
    /// are never needed).
    pub fn ev(&self, l: u32, v: VertexId) -> Option<&EvSet> {
        let top = l.min(self.k.saturating_sub(1));
        for level in (0..=top).rev() {
            if let Some(set) = self.levels[level as usize].get(&v) {
                return Some(set);
            }
        }
        None
    }

    /// Number of essential-vertex sets materialised across all levels.
    pub fn stored_sets(&self) -> usize {
        self.levels.iter().map(|m| m.len()).sum()
    }

    /// Approximate heap footprint in bytes: every stored set plus map
    /// overhead. Used for the space accounting of Figures 9 / 10(a).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.levels.capacity() * std::mem::size_of::<FxHashMap<VertexId, EvSet>>();
        for level in &self.levels {
            bytes +=
                level.len() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<EvSet>() + 8);
            bytes += level.values().map(EvSet::memory_bytes).sum::<usize>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};
    use spg_graph::DistanceStrategy;

    fn index(g: &DiGraph, q: Query) -> DistanceIndex {
        DistanceIndex::compute(g, q.source, q.target, q.k, DistanceStrategy::Single)
    }

    fn ev_vec(p: &Propagation, l: u32, v: VertexId) -> Option<Vec<VertexId>> {
        p.ev(l, v).map(|s| s.as_slice().to_vec())
    }

    fn sorted(mut v: Vec<VertexId>) -> Vec<VertexId> {
        v.sort_unstable();
        v
    }

    /// Figure 5(a): forward essential vertices of the running example (the
    /// non-parenthesised entries, i.e. those the paper reports as computed).
    #[test]
    fn figure5a_forward_essential_vertices() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 8);
        let idx = index(&g, q);
        let p = Propagation::forward(&g, q, &idx, false);

        // l = 1
        assert_eq!(ev_vec(&p, 1, A), Some(sorted(vec![S, A])));
        assert_eq!(ev_vec(&p, 1, C), Some(sorted(vec![S, C])));
        assert_eq!(ev_vec(&p, 1, B), None);
        assert_eq!(ev_vec(&p, 1, J), None);
        // l = 2
        assert_eq!(ev_vec(&p, 2, B), Some(sorted(vec![S, C, B])));
        assert_eq!(ev_vec(&p, 2, H), Some(sorted(vec![S, A, H])));
        assert_eq!(ev_vec(&p, 2, I), Some(sorted(vec![S, A, I])));
        assert_eq!(ev_vec(&p, 2, A), Some(sorted(vec![S, A])));
        // l = 3
        assert_eq!(ev_vec(&p, 3, B), Some(sorted(vec![S, B])));
        assert_eq!(ev_vec(&p, 3, J), Some(sorted(vec![S, J])));
        assert_eq!(ev_vec(&p, 3, H), Some(sorted(vec![S, A, H])));
        // l = 4
        assert_eq!(ev_vec(&p, 4, H), Some(sorted(vec![S, H])));
        assert_eq!(ev_vec(&p, 4, C), Some(sorted(vec![S, C])));
        assert_eq!(ev_vec(&p, 4, B), Some(sorted(vec![S, B])));
    }

    /// Figure 5(b): backward essential vertices of the running example.
    #[test]
    fn figure5b_backward_essential_vertices() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 8);
        let idx = index(&g, q);
        let p = Propagation::backward(&g, q, &idx, false);

        // l = 1
        assert_eq!(ev_vec(&p, 1, B), Some(sorted(vec![B, T])));
        assert_eq!(ev_vec(&p, 1, C), Some(sorted(vec![C, T])));
        assert_eq!(ev_vec(&p, 1, A), None);
        // l = 2
        assert_eq!(ev_vec(&p, 2, A), Some(sorted(vec![A, C, T])));
        assert_eq!(ev_vec(&p, 2, H), Some(sorted(vec![H, B, T])));
        assert_eq!(ev_vec(&p, 2, I), None);
        // l = 3
        assert_eq!(ev_vec(&p, 3, A), Some(sorted(vec![A, T])));
        assert_eq!(ev_vec(&p, 3, J), Some(sorted(vec![J, H, B, T])));
        // l = 4
        assert_eq!(ev_vec(&p, 4, I), Some(sorted(vec![I, J, H, B, T])));
        assert_eq!(ev_vec(&p, 4, H), Some(sorted(vec![H, B, T])));
    }

    /// Example 3.2 of the paper: EV*_2(s,b) = {s,c,b} and EV*_3(s,b) = {s,b}.
    #[test]
    fn example_3_2_matches() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 6);
        let idx = index(&g, q);
        let p = Propagation::forward(&g, q, &idx, false);
        assert_eq!(ev_vec(&p, 2, B), Some(sorted(vec![S, C, B])));
        assert_eq!(ev_vec(&p, 3, B), Some(sorted(vec![S, B])));
    }

    /// Essential vertex sets shrink (or stay equal) as the level grows.
    #[test]
    fn levels_are_monotonically_shrinking() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 8);
        let idx = index(&g, q);
        for p in [
            Propagation::forward(&g, q, &idx, false),
            Propagation::backward(&g, q, &idx, false),
        ] {
            for v in g.vertices() {
                for l in 1..q.k {
                    if let (Some(prev), Some(curr)) = (p.ev(l - 1, v), p.ev(l, v)) {
                        assert!(
                            curr.is_subset_of(prev),
                            "EV_{l}({v}) = {curr} must be ⊆ EV_{}({v}) = {prev}",
                            l - 1
                        );
                    }
                }
            }
        }
    }

    /// Brute force check of Theorem 3.5 / Definition 3.1: the propagated sets
    /// equal the intersection of the vertex sets of all enumerated simple
    /// paths (not passing through the excluded endpoint).
    #[test]
    fn propagation_matches_bruteforce_definition_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2023);
        for case in 0..25 {
            let n: usize = rng.gen_range(5..11);
            let m = rng.gen_range(n..(n * (n - 1)).min(3 * n));
            let g = spg_graph::generators::gnm_random(n, m, 100 + case);
            let s = 0u32;
            let t = (n as u32) - 1;
            let k = rng.gen_range(3..7) as u32;
            let q = Query::new(s, t, k);
            let idx = index(&g, q);
            let p = Propagation::forward(&g, q, &idx, false);
            for v in g.vertices() {
                if v == s || v == t {
                    continue;
                }
                for l in 1..k {
                    let expected = brute_force_ev(&g, s, v, t, l);
                    let got = p.ev(l, v).cloned();
                    match (expected, got) {
                        (None, None) => {}
                        (None, Some(set)) => {
                            panic!("case {case}: EV_{l}(s,{v}) should not exist, got {set}")
                        }
                        (Some(exp), None) => {
                            panic!("case {case}: EV_{l}(s,{v}) should be {exp:?}, got none")
                        }
                        (Some(exp), Some(set)) => {
                            assert_eq!(
                                set.as_slice(),
                                exp.as_slice(),
                                "case {case}: EV_{l}(s,{v})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Definition 3.1 evaluated literally: enumerate all simple paths from
    /// `s` to `v` of length ≤ l avoiding `t` and intersect their vertex sets.
    fn brute_force_ev(g: &DiGraph, s: VertexId, v: VertexId, t: VertexId, l: u32) -> Option<EvSet> {
        let mut paths: Vec<Vec<VertexId>> = Vec::new();
        let mut stack = vec![s];
        dfs_collect(g, v, t, l, &mut stack, &mut paths);
        if paths.is_empty() {
            return None;
        }
        let mut iter = paths.into_iter();
        let first: EvSet = iter.next().unwrap().into_iter().collect();
        Some(iter.fold(first, |acc, p| acc.intersect(&p.into_iter().collect())))
    }

    fn dfs_collect(
        g: &DiGraph,
        goal: VertexId,
        excluded: VertexId,
        budget: u32,
        stack: &mut Vec<VertexId>,
        out: &mut Vec<Vec<VertexId>>,
    ) {
        let cur = *stack.last().unwrap();
        if cur == goal {
            out.push(stack.clone());
            // Do not return: longer simple paths through `goal` are not
            // relevant because a path ending at `goal` is what we collect.
            return;
        }
        if budget == 0 {
            return;
        }
        for &nxt in g.out_neighbors(cur) {
            if nxt == excluded || stack.contains(&nxt) {
                continue;
            }
            stack.push(nxt);
            dfs_collect(g, goal, excluded, budget - 1, stack, out);
            stack.pop();
        }
    }

    /// Forward-looking pruning must not change any essential vertex set that
    /// is still relevant for edge labeling: for every vertex `u` and level
    /// `l` with `l + Δ(u,t) ≤ k`, the pruned and unpruned propagations agree.
    #[test]
    fn pruning_preserves_relevant_sets() {
        let g = paper_example::figure1_graph();
        for k in 4..=8u32 {
            let q = Query::new(S, T, k);
            let idx = index(&g, q);
            let full = Propagation::forward(&g, q, &idx, false);
            let pruned = Propagation::forward(&g, q, &idx, true);
            assert!(pruned.stats().pruned_visits + pruned.stats().edge_scans > 0);
            for v in g.vertices() {
                let dv = idx.dist_to_t(v);
                if dv == INF_DIST {
                    continue;
                }
                for l in 1..k {
                    if l + dv <= k {
                        assert_eq!(
                            full.ev(l, v),
                            pruned.ev(l, v),
                            "k={k} l={l} v={v}: pruning changed a relevant set"
                        );
                    }
                }
            }
        }
    }

    /// Example 3.7: with k = 7, EV_l(s, i) for l > 3 is not computed because
    /// Δ(i, t) = 4 (the pruned propagation never updates vertex i past its
    /// level-2 set).
    #[test]
    fn example_3_7_pruning_skips_vertex_i() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 7);
        let idx = index(&g, q);
        assert_eq!(idx.dist_to_t(I), 4);
        let pruned = Propagation::forward(&g, q, &idx, true);
        // The stored set for i stays the level-2 value {s, a, i}; the
        // unpruned run would eventually shrink it at level 5.
        assert_eq!(ev_vec(&pruned, 6, I), Some(sorted(vec![S, A, I])));
        assert!(pruned.stats().pruned_visits > 0);
    }

    #[test]
    fn stats_and_memory_are_reported() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 6);
        let idx = index(&g, q);
        let p = Propagation::forward(&g, q, &idx, true);
        assert!(p.stats().edge_scans > 0);
        assert!(p.stored_sets() >= 1);
        assert!(p.memory_bytes() > 0);
        assert_eq!(p.origin(), S);
        assert_eq!(p.excluded(), T);
        assert_eq!(p.hop_constraint(), 6);
    }

    #[test]
    fn excluded_endpoint_is_never_part_of_a_set() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 8);
        let idx = index(&g, q);
        let p = Propagation::forward(&g, q, &idx, false);
        for v in g.vertices() {
            if let Some(set) = p.ev(q.k - 1, v) {
                assert!(!set.contains(T), "forward EV of {v} must not contain t");
            }
        }
        let b = Propagation::backward(&g, q, &idx, false);
        for v in g.vertices() {
            if let Some(set) = b.ev(q.k - 1, v) {
                assert!(!set.contains(S), "backward EV of {v} must not contain s");
            }
        }
    }
}
