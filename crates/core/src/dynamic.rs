//! Delta-aware updates with scoped cache invalidation.
//!
//! A graph swap re-stamps the version and makes *every* cache entry
//! unreachable; a streaming [`EdgeDelta`] batch keeps the version and pairs
//! the mutation with a **scoped purge**: only entries the batch could have
//! affected are dropped, the rest keep serving hits. The hop budget is what
//! makes this scopable — a `(s, t, k)` answer only sees the part of the
//! graph within `k` hops of the query pair, so a delta far away provably
//! cannot change it.
//!
//! [`InvalidationScope`] encodes two sound (conservative) affect tests:
//!
//! * **Removals** — the pipeline records each answer's *witness*: the sorted
//!   vertex set of its search space `G^k_st` ([`SimplePathGraph::witness`]).
//!   Every `G^k_st` distance is realised by paths inside the space, so an
//!   edge with an endpoint outside the witness is not a space edge and its
//!   removal leaves the space — and therefore the bit-exact answer and
//!   upper bound — untouched. Purge iff **both** endpoints are in the
//!   witness; witness-less entries (baseline-built answers) purge
//!   pessimistically.
//! * **Additions** — tested on the *post-delta* graph with two depth-bounded
//!   multi-source BFS sweeps: `ds(x)` = distance from `x` to the nearest
//!   added-edge source (backward sweep), `dt(x)` = distance from the nearest
//!   added-edge target to `x` (forward sweep). If
//!   `ds(s) + 1 + dt(t) > k`, no added edge lies on any ≤ `k`-hop `s → t`
//!   walk, no search-space distance can have changed, and the entry
//!   survives. Mixing sources and targets of *different* added edges only
//!   over-purges, never under-purges.
//!
//! [`apply_delta_scoped`] is the one-call orchestration the server uses:
//! apply the batch ([`VersionedGraph::apply_delta`] — version unchanged,
//! overlay folds past its threshold), size the BFS depth by the largest
//! resident `k` for this version, build the scope, purge. Callers must
//! serialise it with concurrent cached readers the same way `replace` is
//! serialised (the server runs it under its graph write lock).

use spg_graph::{
    DeltaError, DeltaVersion, DiGraph, Direction, EdgeDelta, VersionedGraph, VertexId,
};

use crate::cache::SpgCache;
use crate::spg::SimplePathGraph;

/// Unreachable / beyond-depth sentinel shared with the traversal layer.
const INF: u32 = u32::MAX;

/// Pre-computed affect test for one delta batch (see the module docs).
#[derive(Debug, Clone)]
pub struct InvalidationScope {
    /// Removed edges of the batch (endpoints of `Remove` deltas).
    removed: Vec<(VertexId, VertexId)>,
    /// Addition reachability, present only when the batch adds edges.
    additions: Option<AdditionReach>,
}

/// The two bounded multi-source BFS distance maps of the addition test.
#[derive(Debug, Clone)]
struct AdditionReach {
    /// `ds[x]` = hops from `x` to the nearest added-edge *source*.
    to_sources: Vec<u32>,
    /// `dt[x]` = hops from the nearest added-edge *target* to `x`.
    from_targets: Vec<u32>,
}

impl InvalidationScope {
    /// Builds the scope for `deltas` against the **post-delta** graph.
    /// `max_k` bounds the BFS depth — pass the largest hop constraint
    /// resident in the cache for this graph's version
    /// ([`SpgCache::max_resident_k`]); entries with larger `k` cannot exist,
    /// so deeper exploration would be wasted.
    pub fn build(graph: &DiGraph, deltas: &[EdgeDelta], max_k: u32) -> Self {
        let mut removed = Vec::new();
        let mut add_sources = Vec::new();
        let mut add_targets = Vec::new();
        for d in deltas {
            match d.op {
                spg_graph::DeltaOp::Remove => removed.push((d.source, d.target)),
                spg_graph::DeltaOp::Add => {
                    add_sources.push(d.source);
                    add_targets.push(d.target);
                }
            }
        }
        let additions = (!add_sources.is_empty() && max_k > 0).then(|| AdditionReach {
            to_sources: spg_graph::multi_source_distances(
                graph,
                &add_sources,
                Direction::Backward,
                max_k,
            ),
            from_targets: spg_graph::multi_source_distances(
                graph,
                &add_targets,
                Direction::Forward,
                max_k,
            ),
        });
        InvalidationScope { removed, additions }
    }

    /// `true` when the batch could change the answer of `(source, target,
    /// k)` computed before it was applied. `witness` is the entry's recorded
    /// search-space vertex set, if any (see [`SimplePathGraph::witness`] —
    /// `None` forces a purge whenever the batch removes edges).
    pub fn affects(
        &self,
        source: VertexId,
        target: VertexId,
        k: u32,
        witness: Option<&[VertexId]>,
    ) -> bool {
        if let Some(reach) = &self.additions {
            let ds = reach
                .to_sources
                .get(source as usize)
                .copied()
                .unwrap_or(INF);
            let dt = reach
                .from_targets
                .get(target as usize)
                .copied()
                .unwrap_or(INF);
            if ds != INF && dt != INF && ds.saturating_add(1).saturating_add(dt) <= k {
                return true;
            }
        }
        if !self.removed.is_empty() {
            match witness {
                None => return true,
                Some(w) => {
                    for &(u, v) in &self.removed {
                        if w.binary_search(&u).is_ok() && w.binary_search(&v).is_ok() {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// `true` when the scope can never match anything (an all-no-op batch).
    pub fn is_vacuous(&self) -> bool {
        self.removed.is_empty() && self.additions.is_none()
    }
}

/// Receipt of one [`apply_delta_scoped`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaUpdate {
    /// The (unchanged-version) delta receipt from the graph layer.
    pub delta: DeltaVersion,
    /// Cache entries dropped by the scoped purge.
    pub purged: usize,
}

/// Applies `deltas` to `graph` and purges exactly the cache entries the
/// batch could have affected (see the module docs for the soundness
/// argument). On `Err` neither the graph nor the cache changed. The caller
/// serialises this against concurrent cached readers of the same graph —
/// `&mut VersionedGraph` already excludes same-thread readers, and the
/// server performs it under its graph write lock.
pub fn apply_delta_scoped(
    graph: &mut VersionedGraph,
    cache: &SpgCache,
    deltas: &[EdgeDelta],
) -> Result<DeltaUpdate, DeltaError> {
    let delta = graph.apply_delta(deltas)?;
    let version = graph.version();
    // Depth-bound the BFS sweeps by the deepest entry that could be hit;
    // an empty cache (max k = 0) skips the sweeps and the purge outright.
    let max_k = cache.max_resident_k(version);
    let purged = if max_k == 0 && deltas.iter().all(|d| d.op == spg_graph::DeltaOp::Add) {
        0
    } else {
        let scope = InvalidationScope::build(graph.graph(), deltas, max_k);
        if scope.is_vacuous() {
            0
        } else {
            cache.purge_scoped(version, &scope)
        }
    };
    Ok(DeltaUpdate { delta, purged })
}

/// Convenience for harnesses: the witness an answer would need for the
/// removal test when the pipeline did not attach one — the sorted incident
/// vertex set of the answer edges (hash-free via
/// [`spg_graph::EdgeSubgraph::sorted_vertices`]). Note this is **not** a
/// sound substitute for the search-space witness (the recorded upper bound
/// can depend on vertices outside the answer); it exists for experiments
/// that only compare answer edges.
pub fn answer_vertices(spg: &SimplePathGraph) -> Vec<VertexId> {
    spg.as_subgraph().sorted_vertices()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEve;
    use crate::paper_example::{self, names::*};
    use crate::query::Query;

    #[test]
    fn additions_far_from_the_pair_do_not_affect_it() {
        // Path 0 -> 1 -> 2 plus a far-away pair 3 -> 4.
        let mut g = DiGraph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        g.apply_delta(&[EdgeDelta::add(4, 5)]).unwrap();
        let scope = InvalidationScope::build(&g, &[EdgeDelta::add(4, 5)], 4);
        assert!(
            !scope.affects(0, 2, 4, None),
            "added edge unreachable from the (0, 2) pair"
        );
        assert!(scope.affects(3, 5, 2, None), "pair that crosses the edge");
        assert!(
            !scope.affects(3, 5, 1, None),
            "k too small to cross the added edge"
        );
    }

    #[test]
    fn removals_consult_the_witness() {
        let scope = InvalidationScope::build(
            &DiGraph::from_edges(8, [(0, 1)]),
            &[EdgeDelta::remove(5, 6)],
            4,
        );
        assert!(scope.affects(0, 1, 4, None), "no witness: pessimistic");
        assert!(
            scope.affects(0, 1, 4, Some(&[0, 1, 5, 6])),
            "both endpoints"
        );
        assert!(!scope.affects(0, 1, 4, Some(&[0, 1, 5])), "target outside");
        assert!(!scope.affects(0, 1, 4, Some(&[0, 1])), "both outside");
        assert!(!scope.is_vacuous());
        assert!(InvalidationScope::build(&DiGraph::empty(2), &[], 4).is_vacuous());
    }

    /// End-to-end: survivors keep serving hits, affected entries recompute
    /// to the post-delta answer.
    #[test]
    fn apply_delta_scoped_purges_only_affected_entries() {
        let mut vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        {
            let cached = CachedEve::with_defaults(&vg, &cache);
            cached.query(Query::new(S, T, 4)).unwrap();
            cached.query(Query::new(I, J, 1)).unwrap(); // i -> j, disjoint from (s,t,4) space
        }
        assert_eq!(cache.len(), 2);
        // Remove c -> t: inside the (S,T,4) space, outside the (I,J,1) one.
        let up = apply_delta_scoped(&mut vg, &cache, &[EdgeDelta::remove(C, T)]).unwrap();
        assert_eq!(up.purged, 1, "only the affected entry is dropped");
        assert_eq!(cache.len(), 1);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let hits_before = cache.stats().hits;
        cached.query(Query::new(I, J, 1)).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "survivor still hits");
        // The recomputed answer matches a full rebuild.
        let recomputed = cached.query(Query::new(S, T, 4)).unwrap();
        let mut edges: Vec<_> = paper_example::figure1_graph().edges().collect();
        edges.retain(|&e| e != (C, T));
        let rebuilt = VersionedGraph::from_edges(8, edges);
        let reference = crate::Eve::with_defaults(rebuilt.graph())
            .query(Query::new(S, T, 4))
            .unwrap();
        assert_eq!(recomputed.edges(), reference.edges());
    }

    #[test]
    fn empty_cache_skips_the_sweep_and_errors_pass_through() {
        let mut vg = VersionedGraph::from_edges(4, [(0, 1), (1, 2)]);
        let cache = SpgCache::new(1 << 16);
        let up = apply_delta_scoped(&mut vg, &cache, &[EdgeDelta::add(2, 3)]).unwrap();
        assert_eq!(up.purged, 0);
        assert_eq!(up.delta.seq, 1);
        assert!(apply_delta_scoped(&mut vg, &cache, &[EdgeDelta::add(0, 9)]).is_err());
        assert_eq!(vg.delta_seq(), 1, "rejected batch left the graph alone");
    }

    #[test]
    fn answer_vertices_are_sorted() {
        let g = paper_example::figure1_graph();
        let spg = crate::Eve::with_defaults(&g)
            .query(Query::new(S, T, 4))
            .unwrap();
        let verts = answer_vertices(&spg);
        assert!(verts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(verts.len(), spg.vertex_count());
    }
}
