//! Query definition and validation.
//!
//! A query is the triple `⟨s, t, k⟩` of the problem statement (§2.1): find
//! the simple path graph `SPG_k(s, t)` containing every edge that lies on at
//! least one simple path from `s` to `t` of length at most `k`.

use spg_graph::{BudgetExhausted, DiGraph, VertexId};

/// A hop-constrained s-t simple path graph query `⟨s, t, k⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t` (must differ from `s`).
    pub target: VertexId,
    /// Hop constraint `k ≥ 1`: only simple paths with at most `k` edges count.
    pub k: u32,
}

impl Query {
    /// Creates a query. Validation against a concrete graph happens in
    /// [`Query::validate`].
    pub fn new(source: VertexId, target: VertexId, k: u32) -> Self {
        Query { source, target, k }
    }

    /// Checks that the query is well-formed for graph `g`.
    pub fn validate(&self, g: &DiGraph) -> Result<(), QueryError> {
        let n = g.vertex_count();
        if (self.source as usize) >= n {
            return Err(QueryError::VertexOutOfRange {
                vertex: self.source,
                vertices: n,
            });
        }
        if (self.target as usize) >= n {
            return Err(QueryError::VertexOutOfRange {
                vertex: self.target,
                vertices: n,
            });
        }
        if self.source == self.target {
            return Err(QueryError::SourceEqualsTarget(self.source));
        }
        if self.k == 0 {
            return Err(QueryError::ZeroHopConstraint);
        }
        Ok(())
    }

    /// Returns the query with its hop constraint clamped to `min(k, n − 1)`
    /// for a graph with `n` vertices.
    ///
    /// A simple path visits every vertex at most once, so no simple path in
    /// `g` has more than `n − 1` edges and any larger `k` produces the same
    /// `SPG_k(s, t)`. Clamping at query entry keeps the per-level structures
    /// of propagation and the workspace proportional to the graph instead of
    /// an adversarial `k` (a `Query` with `k = u32::MAX` would otherwise
    /// drive `k`-sized allocations and `O(k)` per-edge labeling loops).
    /// Every [`crate::Eve`] entry point applies this clamp after
    /// [`Query::validate`].
    pub fn clamped_to(&self, g: &DiGraph) -> Query {
        let max_useful = g.vertex_count().saturating_sub(1).min(u32::MAX as usize) as u32;
        Query {
            k: self.k.min(max_useful.max(1)),
            ..*self
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨s={}, t={}, k={}⟩", self.source, self.target, self.k)
    }
}

/// Reasons a query can be rejected — before any computation starts
/// (validation) or mid-flight (budget cancellation, fault isolation).
///
/// The [`std::fmt::Display`] impl below is the **one canonical formatting
/// path** for these errors: the server's wire protocol promises that every
/// `status: error` response carries the exact Display string of the
/// `QueryError` a local [`crate::Eve::query`] would return
/// (`spg_server::protocol::query_error_response` builds responses from the
/// variant, never from a free-form string), so changing a string here *is*
/// a wire-protocol change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// A query endpoint does not exist in the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// `s == t`; the problem statement requires distinct endpoints.
    SourceEqualsTarget(VertexId),
    /// `k == 0`; no edge can lie on a path of length zero.
    ZeroHopConstraint,
    /// The query's wall-clock deadline passed mid-flight; the engine stopped
    /// cooperatively at the next phase/level boundary.
    DeadlineExceeded,
    /// The query's deterministic work ceiling was reached mid-flight.
    BudgetExceeded,
    /// The query panicked inside the executor and was isolated to its slot
    /// (its workspace was discarded; neighbouring slots are unaffected).
    ExecutionPanicked,
}

impl From<BudgetExhausted> for QueryError {
    fn from(e: BudgetExhausted) -> Self {
        match e {
            BudgetExhausted::Deadline => QueryError::DeadlineExceeded,
            BudgetExhausted::Work => QueryError::BudgetExceeded,
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::VertexOutOfRange { vertex, vertices } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {vertices} vertices)"
                )
            }
            QueryError::SourceEqualsTarget(v) => {
                write!(f, "source and target must be distinct (both are {v})")
            }
            QueryError::ZeroHopConstraint => write!(f, "hop constraint k must be at least 1"),
            // The budget variants delegate to the traversal layer's
            // [`BudgetExhausted`] strings so the two layers cannot drift.
            QueryError::DeadlineExceeded => write!(f, "{}", BudgetExhausted::Deadline),
            QueryError::BudgetExceeded => write!(f, "{}", BudgetExhausted::Work),
            QueryError::ExecutionPanicked => {
                write!(f, "internal error: query execution panicked")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_query_passes() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(Query::new(0, 2, 3).validate(&g).is_ok());
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let err = Query::new(0, 9, 3).validate(&g).unwrap_err();
        assert_eq!(
            err,
            QueryError::VertexOutOfRange {
                vertex: 9,
                vertices: 3
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn equal_endpoints_are_rejected() {
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let err = Query::new(1, 1, 3).validate(&g).unwrap_err();
        assert_eq!(err, QueryError::SourceEqualsTarget(1));
    }

    #[test]
    fn zero_k_is_rejected() {
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let err = Query::new(0, 1, 0).validate(&g).unwrap_err();
        assert_eq!(err, QueryError::ZeroHopConstraint);
    }

    #[test]
    fn display_formats() {
        let q = Query::new(3, 7, 5);
        assert_eq!(q.to_string(), "⟨s=3, t=7, k=5⟩");
    }

    #[test]
    fn budget_errors_map_and_display_canonically() {
        assert_eq!(
            QueryError::from(BudgetExhausted::Deadline),
            QueryError::DeadlineExceeded
        );
        assert_eq!(
            QueryError::from(BudgetExhausted::Work),
            QueryError::BudgetExceeded
        );
        // The wire contract: these exact strings are what the server sends.
        assert_eq!(
            QueryError::DeadlineExceeded.to_string(),
            "query deadline exceeded"
        );
        assert_eq!(
            QueryError::BudgetExceeded.to_string(),
            "query work budget exceeded"
        );
        assert_eq!(
            QueryError::ExecutionPanicked.to_string(),
            "internal error: query execution panicked"
        );
        // ... and they delegate to the traversal layer, so the two layers
        // cannot drift apart.
        assert_eq!(
            QueryError::DeadlineExceeded.to_string(),
            BudgetExhausted::Deadline.to_string()
        );
        assert_eq!(
            QueryError::BudgetExceeded.to_string(),
            BudgetExhausted::Work.to_string()
        );
    }

    #[test]
    fn clamp_caps_k_at_vertex_count_minus_one() {
        let g = DiGraph::from_edges(10, [(0, 1), (1, 2)]);
        assert_eq!(Query::new(0, 2, u32::MAX).clamped_to(&g).k, 9);
        assert_eq!(Query::new(0, 2, 9).clamped_to(&g).k, 9);
        // Smaller hop constraints are untouched.
        assert_eq!(Query::new(0, 2, 3).clamped_to(&g), Query::new(0, 2, 3));
        // Degenerate hosts never clamp below 1 (validate rejects k = 0).
        let tiny = DiGraph::empty(1);
        assert_eq!(Query::new(0, 0, 5).clamped_to(&tiny).k, 1);
    }
}
