//! Edge labeling and the essential-vertex based upper-bound graph
//! (§4, Algorithm 2).
//!
//! Every edge inside the adaptive bidirectional search space is assigned one
//! of three labels:
//!
//! * [`EdgeLabel::Failing`] (`0`) — provably not in `SPG_k(s,t)`
//!   (Theorem 3.4),
//! * [`EdgeLabel::Undetermined`] (`1`) — passes the essential-vertex test but
//!   still needs verification,
//! * [`EdgeLabel::Definite`] (`2`) — provably in `SPG_k(s,t)` (Lemmas 4.4 and
//!   4.6: edges within the first or last two hops).
//!
//! The non-failing edges form the upper-bound graph `SPGᵘ_k(s,t)`
//! (Definition 4.1); Theorem 4.8 guarantees `SPGᵘ_k = SPG_k` whenever
//! `k ≤ 4`. While labeling, the departure and arrival vertex sets (§5.1) and
//! their valid in/out neighbours are collected for the verification phase;
//! by Theorem 5.8 at most `k − 2` valid neighbours are retained per vertex.

use spg_graph::hash::{FxHashMap, FxHashSet};
use spg_graph::{DiGraph, DistanceIndex, EdgeSubgraph, VertexId};

use crate::propagation::Propagation;
use crate::query::Query;

/// Label assigned to an edge by Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Definitely not contained in `SPG_k(s, t)` (label "0").
    Failing,
    /// Possibly contained, must be verified (label "1").
    Undetermined,
    /// Definitely contained in `SPG_k(s, t)` (label "2").
    Definite,
}

/// Counters describing one labeling pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelingStats {
    /// Edges examined (= edges inside the bidirectional search space).
    pub edges_examined: usize,
    /// Edges labeled failing.
    pub failing: usize,
    /// Edges labeled undetermined.
    pub undetermined: usize,
    /// Edges labeled definite.
    pub definite: usize,
}

/// Sparse adjacency restricted to `SPGᵘ_k` (vertex → neighbour list).
pub(crate) type AdjacencyMap = FxHashMap<VertexId, Vec<VertexId>>;

/// The upper-bound graph `SPGᵘ_k(s, t)` together with the bookkeeping the
/// verification phase needs (adjacency restricted to `SPGᵘ_k`, departures,
/// arrivals and their valid neighbours).
#[derive(Debug, Clone)]
pub struct UpperBoundGraph {
    query: Query,
    definite: Vec<(VertexId, VertexId)>,
    undetermined: Vec<(VertexId, VertexId)>,
    edge_set: FxHashSet<(VertexId, VertexId)>,
    out_adj: AdjacencyMap,
    in_adj: AdjacencyMap,
    /// Departure vertex set `D`, mapped to `In_D` (≤ k−2 entries each).
    departures: AdjacencyMap,
    /// Arrival vertex set `A`, mapped to `Out_A` (≤ k−2 entries each).
    arrivals: AdjacencyMap,
    stats: LabelingStats,
}

impl UpperBoundGraph {
    /// Runs Algorithm 2 over every edge of the search space and assembles the
    /// upper-bound graph.
    pub fn build(
        g: &DiGraph,
        query: Query,
        index: &DistanceIndex,
        forward: &Propagation,
        backward: &Propagation,
    ) -> UpperBoundGraph {
        let mut ub = UpperBoundGraph {
            query,
            definite: Vec::new(),
            undetermined: Vec::new(),
            edge_set: FxHashSet::default(),
            out_adj: FxHashMap::default(),
            in_adj: FxHashMap::default(),
            departures: FxHashMap::default(),
            arrivals: FxHashMap::default(),
            stats: LabelingStats::default(),
        };
        if !index.is_feasible() {
            return ub;
        }
        let labeler = EdgeLabeler {
            query,
            index,
            forward,
            backward,
        };
        let cap = (query.k.saturating_sub(2)).max(1) as usize;
        // Deterministic iteration order: sorted space vertices.
        let mut space: Vec<VertexId> = index.space_vertices().collect();
        space.sort_unstable();
        for &u in &space {
            for &v in g.out_neighbors(u) {
                if !index.edge_in_space(u, v) {
                    continue;
                }
                ub.stats.edges_examined += 1;
                let outcome = labeler.label(u, v);
                match outcome.label {
                    EdgeLabel::Failing => ub.stats.failing += 1,
                    EdgeLabel::Undetermined => {
                        ub.stats.undetermined += 1;
                        ub.undetermined.push((u, v));
                        ub.insert_edge(u, v);
                    }
                    EdgeLabel::Definite => {
                        ub.stats.definite += 1;
                        ub.definite.push((u, v));
                        ub.insert_edge(u, v);
                        if outcome.departure {
                            let entry = ub.departures.entry(v).or_default();
                            if entry.len() < cap && !entry.contains(&u) {
                                entry.push(u);
                            }
                        }
                        if outcome.arrival {
                            let entry = ub.arrivals.entry(u).or_default();
                            if entry.len() < cap && !entry.contains(&v) {
                                entry.push(v);
                            }
                        }
                    }
                }
            }
        }
        ub.definite.sort_unstable();
        ub.undetermined.sort_unstable();
        ub
    }

    fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        self.edge_set.insert((u, v));
        self.out_adj.entry(u).or_default().push(v);
        self.in_adj.entry(v).or_default().push(u);
    }

    /// The query this upper bound was built for.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Labeling counters.
    pub fn stats(&self) -> LabelingStats {
        self.stats
    }

    /// Number of edges in `SPGᵘ_k` (definite + undetermined).
    pub fn edge_count(&self) -> usize {
        self.definite.len() + self.undetermined.len()
    }

    /// Definite edges (label "2"), sorted.
    pub fn definite_edges(&self) -> &[(VertexId, VertexId)] {
        &self.definite
    }

    /// Undetermined edges (label "1"), sorted.
    pub fn undetermined_edges(&self) -> &[(VertexId, VertexId)] {
        &self.undetermined
    }

    /// `true` if `(u, v)` belongs to the upper-bound graph.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_set.contains(&(u, v))
    }

    /// Out-neighbours of `v` within `SPGᵘ_k`.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out_adj.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// In-neighbours of `v` within `SPGᵘ_k`.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.in_adj.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mutable access used by the verification phase to re-order adjacency
    /// lists according to the search-ordering strategy (§5.3).
    pub(crate) fn adjacency_mut(&mut self) -> (&mut AdjacencyMap, &mut AdjacencyMap) {
        (&mut self.out_adj, &mut self.in_adj)
    }

    /// The departure vertex set `D`.
    pub fn departures(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.departures.keys().copied()
    }

    /// The arrival vertex set `A`.
    pub fn arrivals(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.arrivals.keys().copied()
    }

    /// `true` if `v` is a departure vertex.
    pub fn is_departure(&self, v: VertexId) -> bool {
        self.departures.contains_key(&v)
    }

    /// `true` if `v` is an arrival vertex.
    pub fn is_arrival(&self, v: VertexId) -> bool {
        self.arrivals.contains_key(&v)
    }

    /// Valid in-neighbours `In_D(v)` of a departure (≤ k−2 entries).
    pub fn in_d(&self, v: VertexId) -> &[VertexId] {
        self.departures.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Valid out-neighbours `Out_A(v)` of an arrival (≤ k−2 entries).
    pub fn out_a(&self, v: VertexId) -> &[VertexId] {
        self.arrivals.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All edges of `SPGᵘ_k` as an [`EdgeSubgraph`].
    pub fn to_edge_subgraph(&self) -> EdgeSubgraph {
        EdgeSubgraph::from_edges(
            self.definite
                .iter()
                .copied()
                .chain(self.undetermined.iter().copied()),
        )
    }

    /// Approximate heap footprint in bytes (space accounting for §6.2).
    pub fn memory_bytes(&self) -> usize {
        let edge = std::mem::size_of::<(VertexId, VertexId)>();
        let mut bytes = (self.definite.len() + self.undetermined.len()) * edge;
        bytes += self.edge_set.len() * (edge + 8);
        for adj in [
            &self.out_adj,
            &self.in_adj,
            &self.departures,
            &self.arrivals,
        ] {
            bytes += adj.len()
                * (std::mem::size_of::<VertexId>() + 8 + std::mem::size_of::<Vec<VertexId>>());
            bytes += adj
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>();
        }
        bytes
    }
}

/// Outcome of labeling one edge.
struct LabelOutcome {
    label: EdgeLabel,
    /// The head of the edge qualified as a departure vertex (Definition 5.1),
    /// with the tail as a valid in-neighbour.
    departure: bool,
    /// The tail of the edge qualified as an arrival vertex (Definition 5.3),
    /// with the head as a valid out-neighbour.
    arrival: bool,
}

impl LabelOutcome {
    fn plain(label: EdgeLabel) -> Self {
        LabelOutcome {
            label,
            departure: false,
            arrival: false,
        }
    }
}

/// Per-edge implementation of Algorithm 2.
struct EdgeLabeler<'a> {
    query: Query,
    index: &'a DistanceIndex,
    forward: &'a Propagation,
    backward: &'a Propagation,
}

impl<'a> EdgeLabeler<'a> {
    /// `EV*_l(s, u)` exists iff there is a simple path `s → u` of length ≤ l
    /// not passing through `t`, which is equivalent to `Δ(s, u) ≤ l` on the
    /// t-avoiding forward distances.
    fn forward_exists(&self, l: u32, u: VertexId) -> bool {
        self.index.dist_from_s(u) <= l
    }

    /// `EV*_l(v, t)` exists iff `Δ(v, t) ≤ l` on the s-avoiding backward
    /// distances.
    fn backward_exists(&self, l: u32, v: VertexId) -> bool {
        self.index.dist_to_t(v) <= l
    }

    fn label(&self, u: VertexId, v: VertexId) -> LabelOutcome {
        let Query {
            source: s,
            target: t,
            k,
        } = self.query;

        // Edges entering s or leaving t can never lie on a simple s-t path.
        if v == s || u == t {
            return LabelOutcome::plain(EdgeLabel::Failing);
        }
        // First-hop edges (Lemma 4.4): e(s, v) ∈ SPG_k ⇔ EV*_{k−1}(v, t)
        // exists; symmetrically for e(u, t).
        if u == s {
            let label = if self.backward_exists(k - 1, v) {
                EdgeLabel::Definite
            } else {
                EdgeLabel::Failing
            };
            return LabelOutcome::plain(label);
        }
        if v == t {
            let label = if self.forward_exists(k - 1, u) {
                EdgeLabel::Definite
            } else {
                EdgeLabel::Failing
            };
            return LabelOutcome::plain(label);
        }

        // Second-hop edges (Lemma 4.6). Unlike the paper's pseudo-code we
        // evaluate both the from-s and the to-t condition before returning,
        // so that an edge qualifying as both records both its departure and
        // its arrival information.
        let mut definite = false;
        let mut departure = false;
        let mut arrival = false;
        if k >= 2 {
            if self.forward_exists(1, u) && self.backward_exists(k - 2, v) {
                let ev_vt = self
                    .backward
                    .ev(k - 2, v)
                    .expect("EV(v,t) must be materialised when it exists"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
                if !ev_vt.contains(u) {
                    definite = true;
                    departure = true;
                }
            }
            if self.backward_exists(1, v) && self.forward_exists(k - 2, u) {
                let ev_su = self
                    .forward
                    .ev(k - 2, u)
                    .expect("EV(s,u) must be materialised when it exists"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
                if !ev_su.contains(v) {
                    definite = true;
                    arrival = true;
                }
            }
        }
        if definite {
            return LabelOutcome {
                label: EdgeLabel::Definite,
                departure,
                arrival,
            };
        }

        // Remaining split points: 2 ≤ k_f ≤ k−3 with k_b = k − k_f − 1
        // (Theorem 4.3 shows checking the extremal k_b suffices).
        if k >= 5 {
            for kf in 2..=(k - 3) {
                let kb = k - kf - 1;
                if !self.forward_exists(kf, u) || !self.backward_exists(kb, v) {
                    continue;
                }
                let ev_su = self
                    .forward
                    .ev(kf, u)
                    .expect("forward EV must exist for an in-space vertex"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
                let ev_vt = self
                    .backward
                    .ev(kb, v)
                    .expect("backward EV must exist for an in-space vertex"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
                if ev_su.is_disjoint(ev_vt) {
                    return LabelOutcome::plain(EdgeLabel::Undetermined);
                }
            }
        }
        LabelOutcome::plain(EdgeLabel::Failing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};
    use spg_graph::DistanceStrategy;

    fn build(k: u32) -> (DiGraph, UpperBoundGraph) {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, k);
        let idx = DistanceIndex::compute(&g, S, T, k, DistanceStrategy::AdaptiveBidirectional);
        let fwd = Propagation::forward(&g, q, &idx, true);
        let bwd = Propagation::backward(&g, q, &idx, true);
        let ub = UpperBoundGraph::build(&g, q, &idx, &fwd, &bwd);
        (g, ub)
    }

    /// Figure 6(c): edge labels of the running example for k = 7.
    #[test]
    fn figure6c_labels_for_k7() {
        let (_, ub) = build(7);
        let definite: Vec<(VertexId, VertexId)> = vec![
            (S, A),
            (S, C),
            (A, C),
            (A, H),
            (A, I),
            (C, T),
            (C, B),
            (H, B),
            (B, T),
        ]
        .into_iter()
        .collect();
        let mut expected_definite = definite.clone();
        expected_definite.sort_unstable();
        assert_eq!(ub.definite_edges(), expected_definite.as_slice());

        let mut expected_undetermined = vec![(B, A), (I, J), (J, H)];
        expected_undetermined.sort_unstable();
        assert_eq!(ub.undetermined_edges(), expected_undetermined.as_slice());

        // (B, J) is the failing edge of Example 4.2.
        assert!(!ub.contains_edge(B, J));
        assert_eq!(ub.stats().failing, 1);
        assert_eq!(ub.stats().edges_examined, 13);
        assert_eq!(ub.edge_count(), 12);
    }

    /// Figure 7(b): departures, arrivals and their valid neighbours for k = 7.
    #[test]
    fn figure7b_departures_and_arrivals() {
        let (_, ub) = build(7);
        let mut deps: Vec<VertexId> = ub.departures().collect();
        deps.sort_unstable();
        let mut expected_deps: Vec<VertexId> = paper_example::figure7b_departures()
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        expected_deps.sort_unstable();
        assert_eq!(deps, expected_deps);
        for (v, in_d) in paper_example::figure7b_departures() {
            let mut got = ub.in_d(v).to_vec();
            got.sort_unstable();
            assert_eq!(got, in_d, "In_D({})", paper_example::names::label(v));
        }

        let mut arrs: Vec<VertexId> = ub.arrivals().collect();
        arrs.sort_unstable();
        let mut expected_arrs: Vec<VertexId> = paper_example::figure7b_arrivals()
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        expected_arrs.sort_unstable();
        assert_eq!(arrs, expected_arrs);
        for (v, out_a) in paper_example::figure7b_arrivals() {
            let mut got = ub.out_a(v).to_vec();
            got.sort_unstable();
            assert_eq!(got, out_a, "Out_A({})", paper_example::names::label(v));
        }
        assert!(ub.is_departure(B));
        assert!(!ub.is_departure(A));
        assert!(ub.is_arrival(A));
        assert!(!ub.is_arrival(I));
    }

    /// Theorem 4.8: for k ≤ 4 the upper bound is exact — for the running
    /// example, SPGᵘ_4 must equal the Figure 1(c) simple path graph.
    #[test]
    fn upper_bound_is_exact_for_k4_on_figure1() {
        let (_, ub) = build(4);
        let mut expected = paper_example::figure1c_spg4_edges();
        expected.sort_unstable();
        let got = ub.to_edge_subgraph();
        assert_eq!(got.edges(), expected.as_slice());
        // Everything within two hops of both endpoints is definite; nothing
        // needs verification for k ≤ 4.
        assert_eq!(ub.undetermined_edges().len(), 0);
    }

    /// Example 4.5 and 4.7 of the paper.
    #[test]
    fn examples_4_5_and_4_7() {
        let (_, ub) = build(7);
        assert!(ub.definite_edges().contains(&(S, A)));
        assert!(ub.definite_edges().contains(&(A, I)));
    }

    #[test]
    fn infeasible_query_produces_empty_upper_bound() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let q = Query::new(0, 3, 4);
        let idx = DistanceIndex::compute(&g, 0, 3, 4, DistanceStrategy::AdaptiveBidirectional);
        let fwd = Propagation::forward(&g, q, &idx, true);
        let bwd = Propagation::backward(&g, q, &idx, true);
        let ub = UpperBoundGraph::build(&g, q, &idx, &fwd, &bwd);
        assert_eq!(ub.edge_count(), 0);
        assert_eq!(ub.stats().edges_examined, 0);
        assert!(ub.to_edge_subgraph().is_empty());
    }

    #[test]
    fn adjacency_of_upper_bound_graph_is_consistent() {
        let (_, ub) = build(7);
        for &(u, v) in ub.definite_edges().iter().chain(ub.undetermined_edges()) {
            assert!(ub.out_neighbors(u).contains(&v));
            assert!(ub.in_neighbors(v).contains(&u));
            assert!(ub.contains_edge(u, v));
        }
        assert!(ub.out_neighbors(T).is_empty());
        assert!(ub.memory_bytes() > 0);
        assert_eq!(ub.query().k, 7);
    }

    #[test]
    fn in_d_and_out_a_are_capped_by_theorem_5_8() {
        // A graph where s has many out-neighbours all pointing at the same
        // departure vertex d, which then reaches t: In_D(d) must be capped at
        // k − 2 entries.
        let fan = 20u32;
        let mut edges = Vec::new();
        let s = 0u32;
        let d = fan + 1;
        let t = fan + 2;
        for x in 1..=fan {
            edges.push((s, x));
            edges.push((x, d));
        }
        edges.push((d, t));
        let g = DiGraph::from_edges((fan + 3) as usize, edges);
        let k = 6u32;
        let q = Query::new(s, t, k);
        let idx = DistanceIndex::compute(&g, s, t, k, DistanceStrategy::AdaptiveBidirectional);
        let fwd = Propagation::forward(&g, q, &idx, true);
        let bwd = Propagation::backward(&g, q, &idx, true);
        let ub = UpperBoundGraph::build(&g, q, &idx, &fwd, &bwd);
        assert!(ub.is_departure(d));
        assert!(ub.in_d(d).len() <= (k - 2) as usize);
    }
}
