//! Fault-injection (chaos) hooks, compiled in only with `--features
//! failpoints`.
//!
//! A *failpoint* is a named site in the query pipeline where a test can
//! inject a fault: a panic (exercises the executor's per-slot isolation), a
//! delay (exercises deadlines and queue-wait shedding), or a synthetic
//! budget exhaustion (exercises the cooperative-cancellation paths without
//! needing an adversarial graph). The production binary pays nothing for
//! this: without the feature, [`check`] is a `const`-foldable `Ok(())` and
//! the registry does not exist.
//!
//! Sites are identified by the `&'static str` names in [`sites`]. Faults are
//! configured either programmatically ([`set`] / [`clear`] / [`clear_all`],
//! used by in-process tests) or from the `SPG_FAILPOINTS` environment
//! variable ([`init_from_env`], used by the server binary so a chaos harness
//! can inject faults into a separate release process):
//!
//! ```text
//! SPG_FAILPOINTS="phase1=panic;verify=delay:50;phase2=budget"
//! ```
//!
//! Each action may carry an optional hit budget `*N` (e.g. `panic*3`):
//! after firing `N` times the failpoint disarms itself, which lets a chaos
//! run recover and prove the server still answers afterwards.

/// Canonical failpoint site names, one per instrumented pipeline stage.
pub mod sites {
    /// Phase 1a: hop-bounded bidirectional distance search.
    pub const PHASE1: &str = "phase1";
    /// Phase 1b: essential-vertex propagation.
    pub const PHASE1B: &str = "phase1b";
    /// Phase 2: upper-bound edge labeling.
    pub const PHASE2: &str = "phase2";
    /// Phase 3: verification DFS.
    pub const VERIFY: &str = "verify";
    /// Singleflight leader just before it computes (executor phase B).
    pub const FLIGHT_LEADER: &str = "flight_leader";
    /// Batch executor entry, before any slot runs.
    pub const BATCH_DRAIN: &str = "batch_drain";
    /// Every site, in the order a query traverses them.
    pub const ALL: [&str; 6] = [BATCH_DRAIN, FLIGHT_LEADER, PHASE1, PHASE1B, PHASE2, VERIFY];
}

#[cfg(not(feature = "failpoints"))]
pub use disabled::*;

#[cfg(not(feature = "failpoints"))]
mod disabled {
    use crate::query::QueryError;

    /// No-op: the `failpoints` feature is off, nothing ever fires.
    #[inline(always)]
    pub fn check(_site: &'static str) -> Result<(), QueryError> {
        Ok(())
    }
}

#[cfg(feature = "failpoints")]
pub use enabled::*;

#[cfg(feature = "failpoints")]
mod enabled {
    use crate::query::QueryError;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed failpoint does when its site is reached.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FailAction {
        /// Panic with a recognisable message (tests slot isolation).
        Panic,
        /// Sleep for the given number of milliseconds (tests deadlines).
        Delay(u64),
        /// Return [`QueryError::BudgetExceeded`] (tests cancellation paths).
        Budget,
    }

    struct Armed {
        action: FailAction,
        /// Remaining hits before the point disarms; `None` = unbounded.
        remaining: Option<u64>,
    }

    fn registry() -> &'static Mutex<HashMap<&'static str, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn site_key(site: &str) -> Option<&'static str> {
        super::sites::ALL.iter().find(|s| **s == site).copied()
    }

    /// Arms `site` with `action`, firing at most `hits` times (`None` =
    /// every time). Panics on an unknown site name so harness typos fail
    /// loudly instead of silently injecting nothing.
    pub fn set(site: &str, action: FailAction, hits: Option<u64>) {
        let key = site_key(site).unwrap_or_else(|| panic!("unknown failpoint site {site:?}"));
        registry().lock().unwrap().insert(
            key,
            Armed {
                action,
                remaining: hits,
            },
        );
    }

    /// Disarms `site` (unknown names are ignored: already disarmed).
    pub fn clear(site: &str) {
        if let Some(key) = site_key(site) {
            registry().lock().unwrap().remove(key);
        }
    }

    /// Disarms every failpoint.
    pub fn clear_all() {
        registry().lock().unwrap().clear();
    }

    /// Arms failpoints from a spec string like
    /// `"phase1=panic;verify=delay:50;phase2=budget*2"`. Returns the number
    /// of failpoints armed. Panics on malformed specs (a chaos harness must
    /// not silently run without its faults).
    pub fn init_from_spec(spec: &str) -> usize {
        let mut armed = 0;
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (site, action) = part
                .split_once('=')
                .unwrap_or_else(|| panic!("malformed failpoint spec {part:?} (want site=action)"));
            let (action, hits) =
                match action.split_once('*') {
                    Some((a, n)) => (
                        a,
                        Some(n.parse::<u64>().unwrap_or_else(|_| {
                            panic!("malformed failpoint hit budget in {part:?}")
                        })),
                    ),
                    None => (action, None),
                };
            let parsed = if action == "panic" {
                FailAction::Panic
            } else if action == "budget" {
                FailAction::Budget
            } else if let Some(ms) = action.strip_prefix("delay:") {
                FailAction::Delay(
                    ms.parse()
                        .unwrap_or_else(|_| panic!("malformed delay in {part:?}")),
                )
            } else {
                panic!("unknown failpoint action {action:?} in {part:?}");
            };
            set(site, parsed, hits);
            armed += 1;
        }
        armed
    }

    /// Arms failpoints from the `SPG_FAILPOINTS` environment variable, if
    /// set. Returns the number armed.
    pub fn init_from_env() -> usize {
        match std::env::var("SPG_FAILPOINTS") {
            Ok(spec) => init_from_spec(&spec),
            Err(_) => 0,
        }
    }

    /// Serializes tests that arm the process-global registry — hold the
    /// guard for the whole test so concurrent tests cannot observe each
    /// other's injected faults.
    pub fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The instrumented sites call this; fires the armed action, if any.
    pub fn check(site: &'static str) -> Result<(), QueryError> {
        let action = {
            let mut reg = registry().lock().unwrap();
            match reg.get_mut(site) {
                None => return Ok(()),
                Some(armed) => {
                    if let Some(remaining) = &mut armed.remaining {
                        if *remaining == 0 {
                            return Ok(());
                        }
                        *remaining -= 1;
                    }
                    armed.action
                }
            }
        };
        match action {
            FailAction::Panic => panic!("failpoint {site} fired: injected panic"),
            FailAction::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            FailAction::Budget => Err(QueryError::BudgetExceeded),
        }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::query::QueryError;

    // The registry is process-global, so these assertions share one #[test]
    // rather than racing each other across the parallel test harness.
    #[test]
    fn armed_sites_fire_and_disarm() {
        let _guard = serial_guard();
        clear_all();

        // Unarmed sites are free.
        assert_eq!(check(sites::PHASE1), Ok(()));

        // Budget injection surfaces as the canonical error.
        set(sites::PHASE2, FailAction::Budget, None);
        assert_eq!(check(sites::PHASE2), Err(QueryError::BudgetExceeded));
        clear(sites::PHASE2);
        assert_eq!(check(sites::PHASE2), Ok(()));

        // Hit budgets disarm after N firings.
        set(sites::VERIFY, FailAction::Budget, Some(2));
        assert_eq!(check(sites::VERIFY), Err(QueryError::BudgetExceeded));
        assert_eq!(check(sites::VERIFY), Err(QueryError::BudgetExceeded));
        assert_eq!(check(sites::VERIFY), Ok(()));

        // Panic injection actually panics.
        set(sites::PHASE1, FailAction::Panic, Some(1));
        let caught =
            std::panic::catch_unwind(|| check(sites::PHASE1)).expect_err("must have panicked");
        let msg = caught.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("failpoint phase1 fired"), "got {msg:?}");
        assert_eq!(check(sites::PHASE1), Ok(()), "hit budget spent");

        // Spec parsing arms the right sites.
        clear_all();
        assert_eq!(init_from_spec("phase1b=delay:0; verify=budget*1"), 2);
        assert_eq!(check(sites::PHASE1B), Ok(()), "delay:0 just sleeps 0ms");
        assert_eq!(check(sites::VERIFY), Err(QueryError::BudgetExceeded));
        assert_eq!(check(sites::VERIFY), Ok(()));

        clear_all();
    }
}
