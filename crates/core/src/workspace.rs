//! Reusable per-query workspace for the EVE hot path.
//!
//! Answering a query needs a handful of data structures whose size is
//! proportional to the (small) search space, not the graph: the compacted
//! [`SearchSpace`], two propagation tables, the flat upper-bound graph and
//! the verification scratch. Allocating them afresh per query dominates the
//! cost of cheap queries — exactly the regime of batch workloads that issue
//! thousands of queries against one graph. [`QueryWorkspace`] owns all of
//! them as reusable buffers: pass the same workspace to
//! [`crate::Eve::query_with`] repeatedly and, after warm-up, a query performs
//! (amortised) zero heap allocation outside of building its answer.
//!
//! A workspace is independent of any particular graph or query — it is safe
//! (and supported) to reuse one across different graphs and hop constraints;
//! every buffer is re-sized and re-stamped per query, and the reuse property
//! test in `tests/workspace_reuse.rs` checks that answers are bit-identical
//! to fresh single-shot queries.

use spg_graph::{
    FlatDistances, Lanes128, Lanes256, Lanes64, MsBfsEngine, SearchSpace, SpaceScratch,
};

use crate::compact::{FlatPropagation, FlatUpperBound, OrderScratch, VerifyScratch};

/// Reusable buffers for the whole EVE pipeline (see the module docs).
///
/// ```
/// use spg_core::{Eve, Query, QueryWorkspace};
/// use spg_core::paper_example::{figure1_graph, names};
///
/// let g = figure1_graph();
/// let eve = Eve::with_defaults(&g);
/// let mut ws = QueryWorkspace::new();
/// for k in 2..=8 {
///     let spg = eve.query_with(&mut ws, Query::new(names::S, names::T, k)).unwrap();
///     assert_eq!(spg.edges(), eve.query(Query::new(names::S, names::T, k)).unwrap().edges());
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryWorkspace {
    /// Epoch-stamped flat distance engine (phase 1a).
    pub(crate) dist: FlatDistances,
    /// Bit-parallel bidirectional MS-BFS engines for cohort-shared phase 1,
    /// one per lane-block width (each empty — zero retained bytes — until
    /// the first shared batch needing that width). `run_cohort` picks the
    /// narrowest engine that fits a cohort, so small cohorts never pay
    /// wide-word overhead and the unused widths cost nothing.
    pub(crate) msbfs64: MsBfsEngine<Lanes64>,
    /// 128-lane engine (see `msbfs64`).
    pub(crate) msbfs128: MsBfsEngine<Lanes128>,
    /// 256-lane engine (see `msbfs64`).
    pub(crate) msbfs256: MsBfsEngine<Lanes256>,
    /// Epoch-stamped global→local vertex translation (graph-sized).
    pub(crate) scratch: SpaceScratch,
    /// Compacted search space of the current query.
    pub(crate) space: SearchSpace,
    /// Forward essential-vertex propagation table.
    pub(crate) fwd: FlatPropagation,
    /// Backward essential-vertex propagation table.
    pub(crate) bwd: FlatPropagation,
    /// Flat upper-bound graph (edge labeling output).
    pub(crate) ub: FlatUpperBound,
    /// Search-ordering distance buffers.
    pub(crate) order: OrderScratch,
    /// Verification stacks and result bitmap.
    pub(crate) verify: VerifyScratch,
}

impl QueryWorkspace {
    /// Creates an empty workspace. Buffers grow on first use and are then
    /// retained across queries.
    pub fn new() -> Self {
        QueryWorkspace::default()
    }

    /// Total bytes of buffer capacity currently retained by the workspace —
    /// the steady-state footprint a long-lived workspace pays to make
    /// queries allocation-free. Reported per query as
    /// [`crate::MemoryEstimate::workspace_arena_bytes`].
    pub fn retained_bytes(&self) -> usize {
        self.dist.retained_bytes()
            + self.msbfs64.retained_bytes()
            + self.msbfs128.retained_bytes()
            + self.msbfs256.retained_bytes()
            + self.scratch.memory_bytes()
            + self.space.retained_bytes()
            + self.fwd.retained_bytes()
            + self.bwd.retained_bytes()
            + self.ub.retained_bytes()
            + self.order.retained_bytes()
            + self.verify.retained_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};
    use crate::{Eve, Query};

    #[test]
    fn workspace_grows_then_retains_capacity() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let mut ws = QueryWorkspace::new();
        assert_eq!(ws.retained_bytes(), 0);
        let first = eve.query_with(&mut ws, Query::new(S, T, 7)).unwrap();
        let after_first = ws.retained_bytes();
        assert!(after_first > 0);
        // A smaller query must not shrink the retained capacity.
        let _ = eve.query_with(&mut ws, Query::new(S, T, 2)).unwrap();
        assert!(ws.retained_bytes() >= after_first);
        // Re-running the first query in the warmed workspace reproduces the
        // answer exactly.
        let again = eve.query_with(&mut ws, Query::new(S, T, 7)).unwrap();
        assert_eq!(first.edges(), again.edges());
    }
}
