//! The EVE pipeline: Essential Vertices based Examination (§2.3, Figure 4(b)).
//!
//! [`Eve`] wires the three phases together:
//!
//! 1. **Distance + propagation** — adaptive bidirectional distance search
//!    followed by forward/backward essential-vertex propagation with
//!    forward-looking pruning;
//! 2. **Upper-bound graph** — edge labeling into failing / undetermined /
//!    definite edges;
//! 3. **Verification** — DFS-oriented search with ordered adjacency for every
//!    undetermined edge.
//!
//! Every pruning technique the paper ablates in Figure 11 is an explicit
//! switch on [`EveConfig`], so the benchmark harness can reproduce the
//! ablation, and `EveConfig::naive()` reproduces the paper's "Naive EVE".

use std::time::Instant;

use spg_graph::{DiGraph, DistanceIndex, DistanceStrategy, EdgeSubgraph};

use crate::labeling::UpperBoundGraph;
use crate::propagation::Propagation;
use crate::query::{Query, QueryError};
use crate::spg::SimplePathGraph;
use crate::stats::{EveStats, MemoryEstimate, PhaseTimings};
use crate::verification::{apply_search_ordering, verify_undetermined};

/// Configuration switches for the EVE pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EveConfig {
    /// How the per-query distance index is computed (§3.3, Figure 6(a)).
    pub distance_strategy: DistanceStrategy,
    /// Enable the forward-looking pruning of Theorem 3.6 during propagation.
    pub forward_looking_pruning: bool,
    /// Enable the §5.3 search-ordering strategy before verification.
    pub search_ordering: bool,
}

impl Default for EveConfig {
    fn default() -> Self {
        EveConfig {
            distance_strategy: DistanceStrategy::AdaptiveBidirectional,
            forward_looking_pruning: true,
            search_ordering: true,
        }
    }
}

impl EveConfig {
    /// The full configuration used throughout the paper's evaluation
    /// (adaptive bidirectional search, forward-looking pruning, search
    /// ordering). Same as `Default`.
    pub fn full() -> Self {
        EveConfig::default()
    }

    /// "Naive EVE" of Figure 11: single-directional BFS, no forward-looking
    /// pruning, no search ordering. The answer is identical, only slower.
    pub fn naive() -> Self {
        EveConfig {
            distance_strategy: DistanceStrategy::Single,
            forward_looking_pruning: false,
            search_ordering: false,
        }
    }

    /// Human-readable name used by the ablation harness.
    pub fn describe(&self) -> String {
        format!(
            "{} search, pruning={}, ordering={}",
            self.distance_strategy.name(),
            if self.forward_looking_pruning {
                "on"
            } else {
                "off"
            },
            if self.search_ordering { "on" } else { "off" },
        )
    }
}

/// Intermediate artefacts of a query, exposed for experiments that need more
/// than the final answer (e.g. Table 3 compares `SPGᵘ_k` against `SPG_k`).
#[derive(Debug, Clone)]
pub struct EveOutput {
    /// The exact answer.
    pub spg: SimplePathGraph,
    /// The edges of the upper-bound graph `SPGᵘ_k`.
    pub upper_bound: EdgeSubgraph,
}

/// The EVE algorithm bound to a graph.
///
/// The struct is cheap to construct (it only borrows the graph); all state is
/// per-query.
#[derive(Debug, Clone, Copy)]
pub struct Eve<'g> {
    graph: &'g DiGraph,
    config: EveConfig,
}

impl<'g> Eve<'g> {
    /// Binds EVE to `graph` with an explicit configuration.
    pub fn new(graph: &'g DiGraph, config: EveConfig) -> Self {
        Eve { graph, config }
    }

    /// Binds EVE to `graph` with the default (full) configuration.
    pub fn with_defaults(graph: &'g DiGraph) -> Self {
        Eve::new(graph, EveConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> EveConfig {
        self.config
    }

    /// The graph this instance answers queries on.
    pub fn graph(&self) -> &'g DiGraph {
        self.graph
    }

    /// Answers a query, returning the exact simple path graph.
    pub fn query(&self, query: Query) -> Result<SimplePathGraph, QueryError> {
        Ok(self.query_detailed(query)?.spg)
    }

    /// Answers a query, additionally returning the upper-bound graph
    /// `SPGᵘ_k(s, t)` computed on the way (Table 3 / §6.6).
    pub fn query_detailed(&self, query: Query) -> Result<EveOutput, QueryError> {
        query.validate(self.graph)?;
        let mut timings = PhaseTimings::default();
        let mut memory = MemoryEstimate::default();

        // Phase 1a: distance index.
        let start = Instant::now();
        let index = DistanceIndex::compute(
            self.graph,
            query.source,
            query.target,
            query.k,
            self.config.distance_strategy,
        );
        timings.distance = start.elapsed();
        memory.distance_bytes = index.memory_bytes();

        // Phase 1b: essential-vertex propagation.
        let start = Instant::now();
        let forward = Propagation::forward(
            self.graph,
            query,
            &index,
            self.config.forward_looking_pruning,
        );
        let backward = Propagation::backward(
            self.graph,
            query,
            &index,
            self.config.forward_looking_pruning,
        );
        timings.propagation = start.elapsed();
        memory.propagation_bytes = forward.memory_bytes() + backward.memory_bytes();

        // Phase 2: upper-bound graph via edge labeling.
        let start = Instant::now();
        let mut upper = UpperBoundGraph::build(self.graph, query, &index, &forward, &backward);
        timings.labeling = start.elapsed();
        memory.upper_bound_bytes = upper.memory_bytes();

        // Phase 3: verification of undetermined edges.
        let start = Instant::now();
        if self.config.search_ordering && query.k >= 5 {
            apply_search_ordering(&mut upper);
        }
        let outcome = verify_undetermined(&upper, query);
        timings.verification = start.elapsed();
        memory.verification_bytes = outcome.edges.len() * std::mem::size_of::<(u32, u32)>()
            + (query.k as usize + 2) * 2 * std::mem::size_of::<u32>();

        let stats = EveStats {
            timings,
            memory,
            search_space: index.stats(),
            forward_propagation: forward.stats(),
            backward_propagation: backward.stats(),
            labeling: upper.stats(),
            verification: outcome.stats,
            upper_bound_edges: upper.edge_count(),
        };
        let spg =
            SimplePathGraph::from_parts(query, EdgeSubgraph::from_edges(outcome.edges), stats);
        Ok(EveOutput {
            spg,
            upper_bound: upper.to_edge_subgraph(),
        })
    }

    /// Computes only the upper-bound graph `SPGᵘ_k(s, t)` (phases 1 and 2),
    /// skipping verification. Useful as a fast approximate answer: by
    /// Theorem 4.8 it is exact whenever `k ≤ 4`, and Table 3 shows it carries
    /// well under 0.05% redundant edges on most graphs.
    pub fn upper_bound(&self, query: Query) -> Result<EdgeSubgraph, QueryError> {
        query.validate(self.graph)?;
        let index = DistanceIndex::compute(
            self.graph,
            query.source,
            query.target,
            query.k,
            self.config.distance_strategy,
        );
        let forward = Propagation::forward(
            self.graph,
            query,
            &index,
            self.config.forward_looking_pruning,
        );
        let backward = Propagation::backward(
            self.graph,
            query,
            &index,
            self.config.forward_looking_pruning,
        );
        let upper = UpperBoundGraph::build(self.graph, query, &index, &forward, &backward);
        Ok(upper.to_edge_subgraph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};

    #[test]
    fn figure1c_answer_for_k4() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let spg = eve.query(Query::new(S, T, 4)).unwrap();
        let mut expected = paper_example::figure1c_spg4_edges();
        expected.sort_unstable();
        assert_eq!(spg.edges(), expected.as_slice());
        assert_eq!(spg.vertex_count(), 6);
        // For k ≤ 4 the upper bound is already exact (Theorem 4.8).
        assert_eq!(spg.stats().upper_bound_edges, spg.edge_count());
        assert_eq!(spg.stats().verification.searches, 0);
    }

    #[test]
    fn k7_answer_excludes_ba_and_bj() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let out = eve.query_detailed(Query::new(S, T, 7)).unwrap();
        assert_eq!(out.spg.edge_count(), 11);
        assert!(!out.spg.contains_edge(B, A));
        assert!(!out.spg.contains_edge(B, J));
        assert!(out.spg.contains_edge(I, J));
        // The upper bound keeps (B, A) — the redundant edge of Lemma 3.3.
        assert!(out.upper_bound.contains(B, A));
        assert_eq!(out.upper_bound.edge_count(), 13 - 1);
        let r = out
            .spg
            .stats()
            .redundant_ratio(out.spg.edge_count())
            .unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn all_configurations_agree_on_the_answer() {
        let g = paper_example::figure1_graph();
        let configs = [
            EveConfig::full(),
            EveConfig::naive(),
            EveConfig {
                distance_strategy: spg_graph::DistanceStrategy::Bidirectional,
                forward_looking_pruning: true,
                search_ordering: false,
            },
            EveConfig {
                distance_strategy: spg_graph::DistanceStrategy::Single,
                forward_looking_pruning: true,
                search_ordering: true,
            },
        ];
        for k in 1..=8u32 {
            let reference = Eve::new(&g, configs[0]).query(Query::new(S, T, k)).unwrap();
            for cfg in &configs[1..] {
                let other = Eve::new(&g, *cfg).query(Query::new(S, T, k)).unwrap();
                assert_eq!(
                    reference.edges(),
                    other.edges(),
                    "k={k}, config {}",
                    cfg.describe()
                );
            }
        }
    }

    #[test]
    fn infeasible_and_invalid_queries() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        // t cannot be reached from j-side vertex within 1 hop.
        let spg = eve.query(Query::new(J, T, 1)).unwrap();
        assert!(spg.is_empty());
        assert!(eve.query(Query::new(S, S, 3)).is_err());
        assert!(eve.query(Query::new(S, 99, 3)).is_err());
        assert!(eve.query(Query::new(S, T, 0)).is_err());
    }

    #[test]
    fn k1_and_k2_answers() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        // k = 1: there is no direct edge s -> t.
        assert!(eve.query(Query::new(S, T, 1)).unwrap().is_empty());
        // k = 2: only s -> c -> t.
        let spg = eve.query(Query::new(S, T, 2)).unwrap();
        assert_eq!(spg.edges(), &[(S, C), (C, T)]);
    }

    #[test]
    fn upper_bound_shortcut_matches_detailed_output() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        for k in 2..=8u32 {
            let ub = eve.upper_bound(Query::new(S, T, k)).unwrap();
            let detailed = eve.query_detailed(Query::new(S, T, k)).unwrap();
            assert_eq!(ub, detailed.upper_bound, "k = {k}");
            // Upper bound must contain the exact answer.
            assert!(detailed.spg.as_subgraph().is_subgraph_of(&ub));
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let spg = eve.query(Query::new(S, T, 7)).unwrap();
        let stats = spg.stats();
        assert!(stats.memory.peak_bytes() > 0);
        assert!(stats.search_space.space_vertices > 0);
        assert!(stats.labeling.edges_examined > 0);
        assert!(stats.forward_propagation.edge_scans > 0);
        assert!(stats.upper_bound_edges >= spg.edge_count());
        assert_eq!(eve.config(), EveConfig::full());
        assert_eq!(eve.graph().edge_count(), 13);
        assert!(!EveConfig::naive().describe().is_empty());
    }
}
