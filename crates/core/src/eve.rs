//! The EVE pipeline: Essential Vertices based Examination (§2.3, Figure 4(b)).
//!
//! [`Eve`] wires the three phases together:
//!
//! 1. **Distance + propagation** — adaptive bidirectional distance search
//!    followed by forward/backward essential-vertex propagation with
//!    forward-looking pruning;
//! 2. **Upper-bound graph** — edge labeling into failing / undetermined /
//!    definite edges;
//! 3. **Verification** — DFS-oriented search with ordered adjacency for every
//!    undetermined edge.
//!
//! Every pruning technique the paper ablates in Figure 11 is an explicit
//! switch on [`EveConfig`], so the benchmark harness can reproduce the
//! ablation, and `EveConfig::naive()` reproduces the paper's "Naive EVE".

use std::time::Instant;

use spg_graph::{
    DiGraph, Direction, DistanceIndex, DistanceStrategy, EdgeSubgraph, FlatDistances, LaneBlock,
    MsBfsEngine, QueryBudget, VertexId,
};

use crate::compact::{apply_search_ordering_flat, verify_flat_budgeted};
use crate::failpoints::{self, sites};
use crate::labeling::UpperBoundGraph;
use crate::propagation::Propagation;
use crate::query::{Query, QueryError};
use crate::spg::SimplePathGraph;
use crate::stats::{EveStats, MemoryEstimate, PhaseTimings};
use crate::verification::{apply_search_ordering, verify_undetermined};
use crate::workspace::QueryWorkspace;

/// Configuration switches for the EVE pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EveConfig {
    /// How the per-query distance index is computed (§3.3, Figure 6(a)).
    pub distance_strategy: DistanceStrategy,
    /// Enable the forward-looking pruning of Theorem 3.6 during propagation.
    ///
    /// The answer is identical either way. Note that the workspace pipeline
    /// ([`Eve::query_with`]) propagates over the compacted `G^k_st` CSR,
    /// whose space restriction structurally subsumes most of the rule —
    /// there this flag only toggles the residual per-level check. Ablation
    /// harnesses that want the paper's full "Naive EVE" work profile
    /// (Figure 11) should measure [`Eve::query_reference`], which honours
    /// the flag over the whole graph.
    pub forward_looking_pruning: bool,
    /// Enable the §5.3 search-ordering strategy before verification.
    pub search_ordering: bool,
}

impl Default for EveConfig {
    fn default() -> Self {
        EveConfig {
            distance_strategy: DistanceStrategy::AdaptiveBidirectional,
            forward_looking_pruning: true,
            search_ordering: true,
        }
    }
}

impl EveConfig {
    /// The full configuration used throughout the paper's evaluation
    /// (adaptive bidirectional search, forward-looking pruning, search
    /// ordering). Same as `Default`.
    pub fn full() -> Self {
        EveConfig::default()
    }

    /// "Naive EVE" of Figure 11: single-directional BFS, no forward-looking
    /// pruning, no search ordering. The answer is identical, only slower.
    pub fn naive() -> Self {
        EveConfig {
            distance_strategy: DistanceStrategy::Single,
            forward_looking_pruning: false,
            search_ordering: false,
        }
    }

    /// Human-readable name used by the ablation harness.
    pub fn describe(&self) -> String {
        format!(
            "{} search, pruning={}, ordering={}",
            self.distance_strategy.name(),
            if self.forward_looking_pruning {
                "on"
            } else {
                "off"
            },
            if self.search_ordering { "on" } else { "off" },
        )
    }
}

/// How Phase 1a obtains its raw distances.
enum DistInput<'a> {
    /// Run the per-query epoch-stamped BFS (the default path; also the
    /// fallback for singleton queries and the uncached [`Eve::query`]).
    Compute,
    /// Materialise one lane of a cohort's bidirectional MS-BFS run — the
    /// batch-shared Phase 1 of [`crate::BatchExecutor`]. The loader closure
    /// (built by [`Eve::query_shared`]) pushes the lane's forward + backward
    /// distances into the freshly `begin_load`ed [`FlatDistances`]; holding
    /// the engine behind `dyn Fn` keeps the whole pipeline monomorphic in
    /// the engine's lane-block width, so three widths don't triple the
    /// compiled pipeline.
    Shared {
        load: &'a dyn Fn(&mut FlatDistances),
    },
    /// The workspace's `dist` and `space` already hold exactly this query's
    /// Phase-1a output (the previous cohort member was the same `(s, t, k)`
    /// triple; phases 1b–3 never mutate them) — skip Phase 1a entirely.
    Reuse,
}

/// Intermediate artefacts of a query, exposed for experiments that need more
/// than the final answer (e.g. Table 3 compares `SPGᵘ_k` against `SPG_k`).
#[derive(Debug, Clone)]
pub struct EveOutput {
    /// The exact answer.
    pub spg: SimplePathGraph,
    /// The edges of the upper-bound graph `SPGᵘ_k`.
    pub upper_bound: EdgeSubgraph,
}

/// The EVE algorithm bound to a graph.
///
/// The struct is cheap to construct (it only borrows the graph); all state is
/// per-query.
#[derive(Debug, Clone, Copy)]
pub struct Eve<'g> {
    graph: &'g DiGraph,
    config: EveConfig,
}

impl<'g> Eve<'g> {
    /// Binds EVE to `graph` with an explicit configuration.
    pub fn new(graph: &'g DiGraph, config: EveConfig) -> Self {
        Eve { graph, config }
    }

    /// Binds EVE to `graph` with the default (full) configuration.
    pub fn with_defaults(graph: &'g DiGraph) -> Self {
        Eve::new(graph, EveConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> EveConfig {
        self.config
    }

    /// The graph this instance answers queries on.
    pub fn graph(&self) -> &'g DiGraph {
        self.graph
    }

    /// Answers a query, returning the exact simple path graph.
    ///
    /// Allocates a fresh [`QueryWorkspace`] per call; batch callers should
    /// hold one workspace and use [`Eve::query_with`] instead.
    pub fn query(&self, query: Query) -> Result<SimplePathGraph, QueryError> {
        let mut ws = QueryWorkspace::new();
        self.query_with(&mut ws, query)
    }

    /// Answers a query on a reusable [`QueryWorkspace`]. After warm-up the
    /// pipeline performs (amortised) zero heap allocation besides the answer
    /// itself, which makes this the entry point for batch workloads.
    ///
    /// The effective hop constraint is clamped to `min(k, n − 1)`
    /// ([`Query::clamped_to`]): the answer is unchanged, and the recorded
    /// query/stats reflect the clamped value.
    pub fn query_with(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
    ) -> Result<SimplePathGraph, QueryError> {
        self.query_budgeted(ws, query, &QueryBudget::unlimited())
    }

    /// [`Eve::query_with`] under a cooperative [`QueryBudget`]: the pipeline
    /// polls the budget at phase-internal boundaries (BFS levels,
    /// propagation levels, labeling rows, verification DFS chunks) and
    /// returns [`QueryError::DeadlineExceeded`] / [`QueryError::BudgetExceeded`]
    /// when it trips. A cancelled query leaves the workspace fully reusable:
    /// the very next query on it produces bit-identical answers to a fresh
    /// workspace. Work-limited cancellation is deterministic — the budget is
    /// charged with the engine's own work counters, so the same query dies
    /// at the same boundary on every run.
    pub fn query_budgeted(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
        budget: &QueryBudget,
    ) -> Result<SimplePathGraph, QueryError> {
        query.validate(self.graph)?;
        self.run_flat_pipeline(ws, query.clamped_to(self.graph), DistInput::Compute, budget)
    }

    /// Answers an already-validated, already-clamped query whose Phase-1
    /// distances come from lane `lane` of a cohort's bidirectional MS-BFS
    /// run. Phases 1b–3 are byte-for-byte the same code as
    /// [`Eve::query_with`]; the answer is bit-identical because the
    /// search-space filter `Δ(s,v) + Δ(v,t) ≤ k` maps the (possibly deeper)
    /// shared raw distances onto exactly the per-query values.
    pub(crate) fn query_shared<B: LaneBlock>(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
        engine: &MsBfsEngine<B>,
        lane: usize,
        budget: &QueryBudget,
    ) -> Result<SimplePathGraph, QueryError> {
        // Only this thin loader is generic over the lane-block width; the
        // pipeline behind it is compiled once.
        let load = |dist: &mut FlatDistances| {
            engine.for_each_lane_distance_to_depth(Direction::Forward, lane, query.k, |v, d| {
                dist.push_forward(v, d)
            });
            engine.for_each_lane_distance_to_depth(Direction::Backward, lane, query.k, |v, d| {
                dist.push_backward(v, d)
            });
        };
        self.run_flat_pipeline(ws, query, DistInput::Shared { load: &load }, budget)
    }

    /// Answers a cohort member whose `(s, t, k)` triple equals the member
    /// answered immediately before on this workspace: `ws.dist` and
    /// `ws.space` still hold exactly its Phase-1a output (phases 1b–3 only
    /// read them), so the materialisation and space compaction are skipped
    /// wholesale. Phases 1b–3 still run, so the answer is assembled exactly
    /// as on the other paths.
    pub(crate) fn query_shared_reused(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
        budget: &QueryBudget,
    ) -> Result<SimplePathGraph, QueryError> {
        self.run_flat_pipeline(ws, query, DistInput::Reuse, budget)
    }

    /// Answers a whole batch sequentially on one internally reused
    /// [`QueryWorkspace`], returning one result slot per query in input
    /// order. Errors are per-slot: an invalid query never affects its
    /// neighbours. Like [`crate::BatchExecutor::run`] (the multi-threaded
    /// counterpart, bit-identical at any thread count), the batch is grouped
    /// into cohorts of queries whose Phase-1 distance work is shared through
    /// one MS-BFS pass per direction; singleton and invalid queries fall
    /// back to the per-query path.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<SimplePathGraph, QueryError>> {
        let mut ws = QueryWorkspace::new();
        // One worker: uncapped cohorts, maximum traversal dedup.
        let plan = crate::cohort::CohortPlan::build(
            self.graph,
            queries,
            1,
            crate::cohort::LaneWidth::default(),
        );
        let mut results: Vec<Option<Result<SimplePathGraph, QueryError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut stats = crate::executor::ThreadBatchStats::default();
        for unit in &plan.units {
            match unit {
                crate::cohort::Unit::Single(i) => {
                    results[*i] = Some(self.query_with(&mut ws, queries[*i]));
                }
                crate::cohort::Unit::Cohort(cohort) => {
                    crate::cohort::run_cohort(
                        self,
                        &mut ws,
                        cohort,
                        spg_graph::FrontierMode::default(),
                        spg_graph::FrontierPolicy::default(),
                        &[],
                        &mut stats,
                        |index, result| results[index] = Some(result),
                    );
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("the cohort plan covers every query index exactly once")) // spg-analyze: allow(no-panic) — the cohort planner is exhaustive over query indices
            .collect()
    }

    /// Answers a query, additionally returning the upper-bound graph
    /// `SPGᵘ_k(s, t)` computed on the way (Table 3 / §6.6).
    pub fn query_detailed(&self, query: Query) -> Result<EveOutput, QueryError> {
        let mut ws = QueryWorkspace::new();
        self.query_detailed_with(&mut ws, query)
    }

    /// [`Eve::query_detailed`] on a reusable workspace: the compacted-search-
    /// space pipeline (phase 1 additionally emits the dense [`spg_graph::SearchSpace`];
    /// phases 1b–3 run entirely on flat local-id arrays).
    pub fn query_detailed_with(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
    ) -> Result<EveOutput, QueryError> {
        query.validate(self.graph)?;
        let spg = self.run_flat_pipeline(
            ws,
            query.clamped_to(self.graph),
            DistInput::Compute,
            &QueryBudget::unlimited(),
        )?;
        // The workspace still holds the phase-2 output; only the detailed
        // entry point pays for materialising it (`query_with` does not).
        let upper_bound = Self::upper_bound_subgraph(ws);
        Ok(EveOutput { spg, upper_bound })
    }

    /// Phases 1a–2 on the workspace: distance search, space compaction,
    /// both propagations and edge labeling. Shared by the query and
    /// upper-bound entry points; phase timings/memory are recorded when the
    /// caller provides accumulators.
    fn run_phases_1_2(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
        timings: &mut PhaseTimings,
        memory: &mut MemoryEstimate,
        input: DistInput<'_>,
        budget: &QueryBudget,
    ) -> Result<(), QueryError> {
        // Phase 1a: raw distances (computed per query, materialised from a
        // cohort's shared MS-BFS lane, or reused verbatim from the previous
        // identical member) + compacted search space.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (Phase 1a entry)
        failpoints::check(sites::PHASE1)?;
        match input {
            DistInput::Compute => {
                ws.dist.compute_budgeted(
                    self.graph,
                    query.source,
                    query.target,
                    query.k,
                    self.config.distance_strategy,
                    budget,
                )?;
                ws.space
                    .rebuild_from_flat(self.graph, &ws.dist, &mut ws.scratch);
            }
            DistInput::Shared { load } => {
                ws.dist.begin_load(
                    self.graph.vertex_count(),
                    query.source,
                    query.target,
                    query.k,
                );
                load(&mut ws.dist);
                ws.space
                    .rebuild_from_flat(self.graph, &ws.dist, &mut ws.scratch);
                // The engine's work was charged to the cohort-level budget;
                // here only a deadline poll after the materialisation.
                budget.check()?;
            }
            DistInput::Reuse => {}
        }
        timings.distance = start.elapsed();
        memory.distance_bytes = ws.dist.memory_bytes() + ws.space.memory_bytes();

        // Phase 1b: essential-vertex propagation on flat per-level rows.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (Phase 1b entry)
        failpoints::check(sites::PHASE1B)?;
        ws.fwd.run_budgeted(
            &ws.space,
            Direction::Forward,
            self.config.forward_looking_pruning,
            budget,
        )?;
        ws.bwd.run_budgeted(
            &ws.space,
            Direction::Backward,
            self.config.forward_looking_pruning,
            budget,
        )?;
        timings.propagation = start.elapsed();
        memory.propagation_bytes = ws.fwd.memory_bytes() + ws.bwd.memory_bytes();

        // Phase 2: upper-bound graph via edge labeling.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (Phase 2 entry)
        failpoints::check(sites::PHASE2)?;
        ws.ub.build_budgeted(&ws.space, &ws.fwd, &ws.bwd, budget)?;
        timings.labeling = start.elapsed();
        memory.upper_bound_bytes = ws.ub.memory_bytes();
        Ok(())
    }

    /// Phases 1a–3 on the workspace, assembling the answer (but not the
    /// upper-bound subgraph). The query must already be validated.
    fn run_flat_pipeline(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
        input: DistInput<'_>,
        budget: &QueryBudget,
    ) -> Result<SimplePathGraph, QueryError> {
        let mut timings = PhaseTimings::default();
        let mut memory = MemoryEstimate::default();
        self.run_phases_1_2(ws, query, &mut timings, &mut memory, input, budget)?;

        // Phase 3: verification of undetermined edges.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (Phase 3 entry)
        failpoints::check(sites::VERIFY)?;
        if self.config.search_ordering && query.k >= 5 {
            apply_search_ordering_flat(&mut ws.ub, &mut ws.order);
        }
        let verification = verify_flat_budgeted(&ws.ub, &mut ws.verify, budget)?;
        let mut answer: Vec<(VertexId, VertexId)> = Vec::with_capacity(ws.ub.edge_count());
        for (eid, &(u, v)) in ws.ub.edges().iter().enumerate() {
            if ws.verify.result()[eid] {
                answer.push((ws.space.global(u), ws.space.global(v)));
            }
        }
        timings.verification = start.elapsed();
        memory.record_verification(answer.len(), query.k);
        memory.workspace_arena_bytes = ws.retained_bytes();

        let mut search_space = ws.dist.stats();
        search_space.space_vertices = ws.space.vertex_count();
        let stats = EveStats {
            timings,
            memory,
            search_space,
            forward_propagation: ws.fwd.stats(),
            backward_propagation: ws.bwd.stats(),
            labeling: ws.ub.stats(),
            verification,
            upper_bound_edges: ws.ub.edge_count(),
        };
        // The space vertex set doubles as the scoped-invalidation witness:
        // any edge whose removal could perturb this answer lives inside the
        // space, so the cache can skip purging on unrelated removals.
        Ok(
            SimplePathGraph::from_parts(query, EdgeSubgraph::from_edges(answer), stats)
                .with_witness(ws.space.vertices()),
        )
    }

    /// Materialises the `SPGᵘ_k` edges currently held by the workspace.
    fn upper_bound_subgraph(ws: &QueryWorkspace) -> EdgeSubgraph {
        EdgeSubgraph::from_edges(
            ws.ub
                .edges()
                .iter()
                .map(|&(u, v)| (ws.space.global(u), ws.space.global(v))),
        )
    }

    /// Computes only the upper-bound graph `SPGᵘ_k(s, t)` (phases 1 and 2),
    /// skipping verification. Useful as a fast approximate answer: by
    /// Theorem 4.8 it is exact whenever `k ≤ 4`, and Table 3 shows it carries
    /// well under 0.05% redundant edges on most graphs.
    pub fn upper_bound(&self, query: Query) -> Result<EdgeSubgraph, QueryError> {
        let mut ws = QueryWorkspace::new();
        self.upper_bound_with(&mut ws, query)
    }

    /// [`Eve::upper_bound`] on a reusable workspace.
    pub fn upper_bound_with(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
    ) -> Result<EdgeSubgraph, QueryError> {
        query.validate(self.graph)?;
        self.run_phases_1_2(
            ws,
            query.clamped_to(self.graph),
            &mut PhaseTimings::default(),
            &mut MemoryEstimate::default(),
            DistInput::Compute,
            &QueryBudget::unlimited(),
        )?;
        Ok(Self::upper_bound_subgraph(ws))
    }

    /// Answers a query with the hash-map reference pipeline (the pre-
    /// compaction implementation). Retained for differential testing and as
    /// the baseline the `query_workspace` benchmark compares against; the
    /// answer is always identical to [`Eve::query`].
    pub fn query_reference(&self, query: Query) -> Result<SimplePathGraph, QueryError> {
        Ok(self.query_detailed_reference(query)?.spg)
    }

    /// [`Eve::query_detailed`] via the hash-map reference pipeline
    /// ([`Propagation`], [`UpperBoundGraph`], [`verify_undetermined`]).
    pub fn query_detailed_reference(&self, query: Query) -> Result<EveOutput, QueryError> {
        query.validate(self.graph)?;
        let query = query.clamped_to(self.graph);
        let mut timings = PhaseTimings::default();
        let mut memory = MemoryEstimate::default();

        // Phase 1a: distance index.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (legacy phase 1)
        let index = DistanceIndex::compute(
            self.graph,
            query.source,
            query.target,
            query.k,
            self.config.distance_strategy,
        );
        timings.distance = start.elapsed();
        memory.distance_bytes = index.memory_bytes();

        // Phase 1b: essential-vertex propagation.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (legacy phase 1b)
        let forward = Propagation::forward(
            self.graph,
            query,
            &index,
            self.config.forward_looking_pruning,
        );
        let backward = Propagation::backward(
            self.graph,
            query,
            &index,
            self.config.forward_looking_pruning,
        );
        timings.propagation = start.elapsed();
        memory.propagation_bytes = forward.memory_bytes() + backward.memory_bytes();

        // Phase 2: upper-bound graph via edge labeling.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (legacy phase 2)
        let mut upper = UpperBoundGraph::build(self.graph, query, &index, &forward, &backward);
        timings.labeling = start.elapsed();
        memory.upper_bound_bytes = upper.memory_bytes();

        // Phase 3: verification of undetermined edges.
        let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (legacy phase 3)
        if self.config.search_ordering && query.k >= 5 {
            apply_search_ordering(&mut upper);
        }
        let outcome = verify_undetermined(&upper, query);
        timings.verification = start.elapsed();
        memory.record_verification(outcome.edges.len(), query.k);

        let stats = EveStats {
            timings,
            memory,
            search_space: index.stats(),
            forward_propagation: forward.stats(),
            backward_propagation: backward.stats(),
            labeling: upper.stats(),
            verification: outcome.stats,
            upper_bound_edges: upper.edge_count(),
        };
        let spg =
            SimplePathGraph::from_parts(query, EdgeSubgraph::from_edges(outcome.edges), stats);
        Ok(EveOutput {
            spg,
            upper_bound: upper.to_edge_subgraph(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};

    #[test]
    fn figure1c_answer_for_k4() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let spg = eve.query(Query::new(S, T, 4)).unwrap();
        let mut expected = paper_example::figure1c_spg4_edges();
        expected.sort_unstable();
        assert_eq!(spg.edges(), expected.as_slice());
        assert_eq!(spg.vertex_count(), 6);
        // For k ≤ 4 the upper bound is already exact (Theorem 4.8).
        assert_eq!(spg.stats().upper_bound_edges, spg.edge_count());
        assert_eq!(spg.stats().verification.searches, 0);
    }

    #[test]
    fn k7_answer_excludes_ba_and_bj() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let out = eve.query_detailed(Query::new(S, T, 7)).unwrap();
        assert_eq!(out.spg.edge_count(), 11);
        assert!(!out.spg.contains_edge(B, A));
        assert!(!out.spg.contains_edge(B, J));
        assert!(out.spg.contains_edge(I, J));
        // The upper bound keeps (B, A) — the redundant edge of Lemma 3.3.
        assert!(out.upper_bound.contains(B, A));
        assert_eq!(out.upper_bound.edge_count(), 13 - 1);
        let r = out
            .spg
            .stats()
            .redundant_ratio(out.spg.edge_count())
            .unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn all_configurations_agree_on_the_answer() {
        let g = paper_example::figure1_graph();
        let configs = [
            EveConfig::full(),
            EveConfig::naive(),
            EveConfig {
                distance_strategy: spg_graph::DistanceStrategy::Bidirectional,
                forward_looking_pruning: true,
                search_ordering: false,
            },
            EveConfig {
                distance_strategy: spg_graph::DistanceStrategy::Single,
                forward_looking_pruning: true,
                search_ordering: true,
            },
        ];
        for k in 1..=8u32 {
            let reference = Eve::new(&g, configs[0]).query(Query::new(S, T, k)).unwrap();
            for cfg in &configs[1..] {
                let other = Eve::new(&g, *cfg).query(Query::new(S, T, k)).unwrap();
                assert_eq!(
                    reference.edges(),
                    other.edges(),
                    "k={k}, config {}",
                    cfg.describe()
                );
            }
        }
    }

    #[test]
    fn infeasible_and_invalid_queries() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        // t cannot be reached from j-side vertex within 1 hop.
        let spg = eve.query(Query::new(J, T, 1)).unwrap();
        assert!(spg.is_empty());
        assert!(eve.query(Query::new(S, S, 3)).is_err());
        assert!(eve.query(Query::new(S, 99, 3)).is_err());
        assert!(eve.query(Query::new(S, T, 0)).is_err());
    }

    #[test]
    fn k1_and_k2_answers() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        // k = 1: there is no direct edge s -> t.
        assert!(eve.query(Query::new(S, T, 1)).unwrap().is_empty());
        // k = 2: only s -> c -> t.
        let spg = eve.query(Query::new(S, T, 2)).unwrap();
        assert_eq!(spg.edges(), &[(S, C), (C, T)]);
    }

    #[test]
    fn upper_bound_shortcut_matches_detailed_output() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        for k in 2..=8u32 {
            let ub = eve.upper_bound(Query::new(S, T, k)).unwrap();
            let detailed = eve.query_detailed(Query::new(S, T, k)).unwrap();
            assert_eq!(ub, detailed.upper_bound, "k = {k}");
            // Upper bound must contain the exact answer.
            assert!(detailed.spg.as_subgraph().is_subgraph_of(&ub));
        }
    }

    /// The flat workspace pipeline and the hash-map reference pipeline must
    /// produce identical answers and upper bounds under every configuration.
    #[test]
    fn compact_and_reference_pipelines_agree_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(777);
        let mut ws = crate::QueryWorkspace::new();
        for case in 0..30 {
            let n = rng.gen_range(6..20);
            let m = rng.gen_range(n..4 * n);
            let g = spg_graph::generators::gnm_random(n, m, 9000 + case);
            let s = 0u32;
            let t = (n - 1) as u32;
            let k = rng.gen_range(2..9);
            let q = Query::new(s, t, k);
            for cfg in [EveConfig::full(), EveConfig::naive()] {
                let eve = Eve::new(&g, cfg);
                let reference = eve.query_detailed_reference(q).unwrap();
                let compact = eve.query_detailed_with(&mut ws, q).unwrap();
                assert_eq!(
                    compact.spg.edges(),
                    reference.spg.edges(),
                    "case {case} k={k} cfg {}",
                    cfg.describe()
                );
                assert_eq!(
                    compact.upper_bound,
                    reference.upper_bound,
                    "case {case} k={k} cfg {}",
                    cfg.describe()
                );
                assert_eq!(
                    compact.spg.stats().upper_bound_edges,
                    reference.spg.stats().upper_bound_edges
                );
            }
        }
    }

    #[test]
    fn reference_query_matches_compact_query() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        for k in 1..=8u32 {
            let compact = eve.query(Query::new(S, T, k)).unwrap();
            let reference = eve.query_reference(Query::new(S, T, k)).unwrap();
            assert_eq!(compact.edges(), reference.edges(), "k={k}");
        }
    }

    /// Regression test for the unbounded-`k` allocation bug: a query with
    /// `k = u32::MAX` used to drive `k`-proportional per-level allocations
    /// (e.g. the reference propagation's `vec![map; k]` level table) and
    /// `O(k)` per-edge labeling loops. With the entry-point clamp it must
    /// answer instantly and produce exactly the `k = n − 1` SPG.
    #[test]
    fn huge_k_is_clamped_to_simple_path_bound() {
        let g = spg_graph::generators::gnm_random(10, 40, 4242);
        let eve = Eve::with_defaults(&g);
        let start = Instant::now();
        let huge = eve.query(Query::new(0, 9, u32::MAX)).unwrap();
        let reference = eve.query_reference(Query::new(0, 9, u32::MAX)).unwrap();
        let clamped = eve.query(Query::new(0, 9, 9)).unwrap();
        assert_eq!(huge.edges(), clamped.edges());
        assert_eq!(reference.edges(), clamped.edges());
        assert_eq!(huge.query().k, 9, "recorded query reflects the clamp");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "huge-k queries must terminate promptly"
        );

        // The detailed and upper-bound entry points clamp identically.
        let mut ws = QueryWorkspace::new();
        let detailed = eve
            .query_detailed_with(&mut ws, Query::new(0, 9, u32::MAX))
            .unwrap();
        assert_eq!(detailed.spg.edges(), clamped.edges());
        let ub_huge = eve.upper_bound(Query::new(0, 9, u32::MAX)).unwrap();
        let ub_clamped = eve.upper_bound(Query::new(0, 9, 9)).unwrap();
        assert_eq!(ub_huge, ub_clamped);

        // The paper's example graph agrees between huge and exact clamp too.
        let fig = paper_example::figure1_graph();
        let fig_eve = Eve::with_defaults(&fig);
        assert_eq!(
            fig_eve.query(Query::new(S, T, u32::MAX)).unwrap().edges(),
            fig_eve.query(Query::new(S, T, 7)).unwrap().edges()
        );
    }

    #[test]
    fn stats_are_populated() {
        let g = paper_example::figure1_graph();
        let eve = Eve::with_defaults(&g);
        let spg = eve.query(Query::new(S, T, 7)).unwrap();
        let stats = spg.stats();
        assert!(stats.memory.peak_bytes() > 0);
        assert!(stats.search_space.space_vertices > 0);
        assert!(stats.labeling.edges_examined > 0);
        assert!(stats.forward_propagation.edge_scans > 0);
        assert!(stats.upper_bound_edges >= spg.edge_count());
        assert_eq!(eve.config(), EveConfig::full());
        assert_eq!(eve.graph().edge_count(), 13);
        assert!(!EveConfig::naive().describe().is_empty());
    }
}
