//! Versioned result cache for hot `(s, t, k)` queries.
//!
//! Fraud and investigation workloads repeat a small set of hot `(s, t, k)`
//! triples (the hub skew `spg_workloads::batch::skewed_queries` models), and
//! the batch-query literature (Yuan et al., *Batch Hop-Constrained s-t
//! Simple Path Query Processing in Large Graphs*) identifies inter-query
//! overlap as the next win after per-query optimisation. [`SpgCache`] is a
//! memoising layer over [`SimplePathGraph`] answers that is **provably
//! invisible**:
//!
//! * **Keying** — entries are keyed by `(graph version, s, t, clamped k)`.
//!   The version comes from [`VersionedGraph`]: a process-unique monotone
//!   stamp per graph snapshot, so a stale entry is *unreachable* (its key can
//!   never be constructed again) rather than merely expired, and one shared
//!   cache can serve many graphs at once. `k` is stored clamped to
//!   `min(k, n − 1)` ([`Query::clamped_to`]) exactly as the pipeline
//!   executes it, so `k = u32::MAX` and `k = n − 1` share one entry.
//! * **Eager reclamation** — unreachable is not free: stale bytes still
//!   compete with live entries for the budget until evicted. Binding a
//!   [`CachedEve`] therefore sweeps the graph's retired-snapshot list out of
//!   the cache ([`SpgCache::purge_versions`], deduped so re-binding costs
//!   one mutex probe), list-driven so other live graphs sharing the cache
//!   keep their entries.
//! * **Scoped invalidation** — an [`spg_graph::EdgeDelta`] batch keeps the
//!   version (the graph mutates in place via the CSR overlay) and purges
//!   only the entries it could have affected: [`SpgCache::purge_scoped`]
//!   applies an [`InvalidationScope`]'s conservative affect tests against
//!   each key and its recorded search-space witness
//!   ([`SimplePathGraph::witness`]). See [`crate::dynamic`] for the
//!   soundness argument.
//! * **Bit-identity** — a hit returns a clone of the stored answer, which was
//!   produced by the deterministic EVE pipeline; edges, upper-bound counts
//!   and every other stats-relevant field match an uncached run exactly
//!   (`tests/cache_differential.rs` proves this property end to end).
//!   Validation errors are never cached: [`CachedEve`] validates before the
//!   lookup, so per-slot error behaviour is untouched.
//! * **Bounded memory** — the cache is a sharded (lock-striped) LRU with a
//!   byte budget. Each shard owns `budget / shards` bytes and evicts its
//!   least-recently-used entries until it fits, so the global footprint never
//!   exceeds the budget after any insert/evict sequence. Entry cost is fed by
//!   the pipeline's [`MemoryEstimate`] (the recorded answer footprint) plus
//!   fixed per-entry overhead.
//!
//! Concurrent readers/writers take one shard mutex per operation; counters
//! are atomics shared by all shards. A miss computes outside any lock and
//! then publishes (`compute-then-publish`), so two threads racing on the same
//! key at worst compute the answer twice and publish identical values —
//! never a torn entry.

use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spg_graph::hash::{FxHashMap, FxHashSet, FxHasher};
use spg_graph::{GraphVersion, QueryBudget, VersionedGraph, VertexId};

use crate::dynamic::InvalidationScope;
use crate::eve::{Eve, EveConfig};
use crate::query::{Query, QueryError};
use crate::spg::SimplePathGraph;
use crate::workspace::QueryWorkspace;

/// Slab-index sentinel terminating the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Cache key: one graph snapshot plus one clamped query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    version: GraphVersion,
    source: VertexId,
    target: VertexId,
    k: u32,
}

impl CacheKey {
    fn new(version: GraphVersion, query: Query) -> Self {
        CacheKey {
            version,
            source: query.source,
            target: query.target,
            k: query.k,
        }
    }

    fn hash64(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

/// One cached answer inside a shard's slab, threaded on the LRU list.
/// `value` is `None` only while the slot sits on the free list. Answers are
/// held behind an [`Arc`] so the shard lock is only ever held for O(1)
/// pointer work — the deep copy a hit hands out happens outside the lock.
#[derive(Debug, Clone)]
struct Slot {
    key: CacheKey,
    value: Option<Arc<SimplePathGraph>>,
    cost: usize,
    /// Towards most-recently-used.
    prev: u32,
    /// Towards least-recently-used.
    next: u32,
}

/// One lock stripe: an index map plus a slab-backed intrusive LRU list.
#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<CacheKey, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Most-recently-used slot (`NIL` when empty).
    head: u32,
    /// Least-recently-used slot (`NIL` when empty).
    tail: u32,
    /// Sum of slot costs currently held.
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, idx: u32) {
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = self.head;
        }
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h as usize].prev = idx,
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: u32) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Removes the least-recently-used entry, returning its cost.
    fn evict_tail(&mut self) -> usize {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict_tail on an empty shard");
        self.unlink(idx);
        let slot = &mut self.slots[idx as usize];
        let cost = slot.cost;
        // Drop the answer now; only the slab slot itself is recycled.
        slot.value = None;
        let key = slot.key;
        self.map.remove(&key);
        self.free.push(idx);
        self.bytes -= cost;
        cost
    }

    /// Inserts or refreshes `key` (the value's deep copy was made by the
    /// caller outside the lock; only O(1) `Arc` clones happen here).
    /// Returns the number of evictions performed to fit the shard budget,
    /// or `None` if the entry alone exceeds it.
    fn insert(
        &mut self,
        key: CacheKey,
        value: &Arc<SimplePathGraph>,
        budget: usize,
    ) -> Option<usize> {
        let cost = entry_cost(value);
        if cost > budget {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Replace in place (identical answer by determinism, but honour
            // the newest value and cost anyway) and refresh recency.
            let old_cost = self.slots[idx as usize].cost;
            self.slots[idx as usize].value = Some(Arc::clone(value));
            self.slots[idx as usize].cost = cost;
            self.bytes = self.bytes - old_cost + cost;
            self.touch(idx);
        } else {
            let idx = match self.free.pop() {
                Some(idx) => {
                    let slot = &mut self.slots[idx as usize];
                    slot.key = key;
                    slot.value = Some(Arc::clone(value));
                    slot.cost = cost;
                    idx
                }
                None => {
                    let idx = self.slots.len() as u32;
                    self.slots.push(Slot {
                        key,
                        value: Some(Arc::clone(value)),
                        cost,
                        prev: NIL,
                        next: NIL,
                    });
                    idx
                }
            };
            self.map.insert(key, idx);
            self.bytes += cost;
            self.push_front(idx);
        }
        let mut evictions = 0;
        while self.bytes > budget {
            self.evict_tail();
            evictions += 1;
        }
        Some(evictions)
    }

    /// O(1) under the lock: recency bump plus an `Arc` clone.
    fn get(&mut self, key: &CacheKey) -> Option<Arc<SimplePathGraph>> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(
            self.slots[idx as usize]
                .value
                .clone()
                .expect("a mapped slot always holds a value"), // spg-analyze: allow(no-panic) — invariant: the slot map never points at an empty slot
        )
    }

    /// Drops every resident entry matching `pred` (which sees the key and
    /// the entry's invalidation witness, if one was recorded), returning the
    /// number removed.
    fn purge_matching(&mut self, pred: impl Fn(&CacheKey, Option<&[VertexId]>) -> bool) -> usize {
        let stale: Vec<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(idx, s)| {
                self.map.get(&s.key) == Some(&(*idx as u32))
                    && pred(&s.key, s.value.as_deref().and_then(|v| v.witness()))
            })
            .map(|(idx, _)| idx as u32)
            .collect();
        for idx in &stale {
            self.unlink(*idx);
            let slot = &mut self.slots[*idx as usize];
            slot.value = None;
            let key = slot.key;
            let cost = slot.cost;
            self.map.remove(&key);
            self.free.push(*idx);
            self.bytes -= cost;
        }
        stale.len()
    }

    /// Drops every entry whose version differs from `keep`, returning the
    /// number removed.
    fn purge_other_versions(&mut self, keep: GraphVersion) -> usize {
        self.purge_matching(|key, _| key.version != keep)
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }
}

/// Bytes charged per entry on top of the answer payload: the slab slot, the
/// index-map entry and the map's load-factor slack.
const ENTRY_OVERHEAD_BYTES: usize = mem::size_of::<Slot>() + 2 * mem::size_of::<(CacheKey, u32)>();

/// Byte cost charged for caching `spg`: the per-entry overhead plus the
/// answer footprint the pipeline recorded in its [`MemoryEstimate`]
/// (`verification_bytes` — the answer edge list plus DFS-stack bound).
/// Answers whose stats were not populated (e.g. assembled by a baseline)
/// fall back to the edge-list size.
pub fn entry_cost(spg: &SimplePathGraph) -> usize {
    let answer_bytes = spg
        .stats()
        .memory
        .verification_bytes
        .max(spg.edge_count() * mem::size_of::<(VertexId, VertexId)>());
    let witness_bytes = spg.witness().map_or(0, mem::size_of_val);
    ENTRY_OVERHEAD_BYTES + answer_bytes + witness_bytes
}

/// Monotone counters shared by all shards of one [`SpgCache`].
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    oversize_rejections: AtomicU64,
    purged_stale: AtomicU64,
    purged_scoped: AtomicU64,
}

/// Point-in-time snapshot of a cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries published (including refreshes of an existing key).
    pub insertions: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Inserts rejected because a single entry exceeded its shard budget.
    pub oversize_rejections: u64,
    /// Entries of retired graph snapshots reclaimed by
    /// [`SpgCache::purge_versions`] (eagerly, on version observation).
    pub purged_stale: u64,
    /// Entries dropped by a delta batch's scoped purge
    /// ([`SpgCache::purge_scoped`]).
    pub purged_scoped: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
    /// Configured global byte budget.
    pub budget_bytes: usize,
    /// Number of lock stripes.
    pub shards: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`None` before the first
    /// lookup).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Sharded, byte-budgeted LRU cache of [`SimplePathGraph`] answers (see the
/// module docs for the keying / invalidation / budget contract).
///
/// ```
/// use spg_core::{CachedEve, Query, SpgCache};
/// use spg_core::paper_example::{figure1_graph, names};
/// use spg_graph::VersionedGraph;
///
/// let vg = VersionedGraph::new(figure1_graph());
/// let cache = SpgCache::new(1 << 20);
/// let eve = CachedEve::with_defaults(&vg, &cache);
///
/// let first = eve.query(Query::new(names::S, names::T, 4)).unwrap();
/// let again = eve.query(Query::new(names::S, names::T, 4)).unwrap();
/// assert_eq!(first.edges(), again.edges());
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct SpgCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (`total / shards`, rounded down — no floor, so
    /// a budget below `shards × entry cost` rejects every insert as
    /// oversize; see [`SpgCache::with_shards`]).
    shard_budget: usize,
    budget_bytes: usize,
    counters: Counters,
    /// Versions already swept by [`SpgCache::purge_versions`], so repeated
    /// observation of the same retired list (every [`CachedEve::new`] bind)
    /// is a dedup probe, not a full shard sweep.
    purged_versions: Mutex<FxHashSet<GraphVersion>>,
}

// The whole point of the cache is cross-thread sharing; keep that a
// compile-time fact alongside the executor's other concurrency asserts.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpgCache>();
    assert_send_sync::<CacheStats>();
};

/// Default number of lock stripes ([`SpgCache::new`]).
pub const DEFAULT_SHARDS: usize = 16;

impl SpgCache {
    /// Creates a cache with `budget_bytes` of total capacity across
    /// [`DEFAULT_SHARDS`] lock stripes.
    pub fn new(budget_bytes: usize) -> Self {
        SpgCache::with_shards(budget_bytes, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit stripe count (rounded up to a power
    /// of two, at least 1). Each stripe owns `budget_bytes / shards`, so the
    /// global footprint never exceeds `budget_bytes`; a single-stripe cache
    /// enforces the budget exactly and is the configuration the LRU-order
    /// tests script against.
    ///
    /// There is deliberately no per-stripe floor: a budget smaller than
    /// `shards ×` the typical entry cost rejects most inserts as oversize
    /// (the bound is never blown, and
    /// [`CacheStats::oversize_rejections`] makes the degradation
    /// observable). Size the budget for at least a few entries per stripe,
    /// or reduce the stripe count along with the budget.
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        SpgCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: budget_bytes / shards,
            budget_bytes,
            counters: Counters::default(),
            purged_versions: Mutex::new(FxHashSet::default()),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        // High bits of the Fx hash: the final multiply mixes them best.
        let bits = self.shards.len().trailing_zeros();
        let idx = (key.hash64() >> (64 - bits as u64).min(63)) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Looks up the answer for `query` (already clamped) on graph snapshot
    /// `version`, refreshing its recency. Counts a hit or a miss. The shard
    /// lock is held only for the O(1) probe + recency bump; the deep copy
    /// handed to the caller happens after it is released.
    pub fn get(&self, version: GraphVersion, query: Query) -> Option<SimplePathGraph> {
        let key = CacheKey::new(version, query);
        let hit = self.shard_for(&key).lock().expect("cache shard").get(&key); // lock: cache.shard
        match &hit {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed), // spg-analyze: allow(hot-loop) — one bump per cache probe, not an inner loop
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed), // spg-analyze: allow(hot-loop) — one bump per cache probe, not an inner loop
        };
        hit.map(|arc| (*arc).clone())
    }

    /// [`SpgCache::get`] without touching the hit/miss counters. The
    /// singleflight drain uses this for the leader's double-check probe
    /// (between its counted miss and its flight claim another leader may
    /// have published) — re-counting there would double-book the slot.
    pub(crate) fn get_quiet(&self, version: GraphVersion, query: Query) -> Option<SimplePathGraph> {
        let key = CacheKey::new(version, query);
        self.shard_for(&key)
            .lock() // lock: cache.shard
            .expect("cache shard")
            .get(&key)
            .map(|arc| (*arc).clone())
    }

    /// Publishes `answer` for `query` (already clamped) on graph snapshot
    /// `version`, evicting least-recently-used entries until the shard fits
    /// its budget. An entry larger than the shard budget is rejected (and
    /// counted) rather than blowing the bound. Re-publishing an existing key
    /// refreshes the stored value and its recency. The answer's deep copy is
    /// taken before the shard lock; the locked section is O(evictions).
    pub fn insert(&self, version: GraphVersion, query: Query, answer: &SimplePathGraph) {
        let key = CacheKey::new(version, query);
        let value = Arc::new(answer.clone());
        // lock: cache.shard
        let evicted = self.shard_for(&key).lock().expect("cache shard").insert(
            key,
            &value,
            self.shard_budget,
        );
        match evicted {
            Some(evictions) => {
                self.counters.insertions.fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per insert, not an inner loop
                if evictions > 0 {
                    self.counters
                        .evictions
                        .fetch_add(evictions as u64, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per insert, not an inner loop
                }
            }
            None => {
                self.counters
                    .oversize_rejections
                    .fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per insert, not an inner loop
            }
        }
    }

    /// Eagerly reclaims entries of every snapshot except `keep`. Stale
    /// entries are already unreachable through [`SpgCache::get`] (their
    /// version can never be issued again); this frees their bytes without
    /// waiting for LRU pressure. Returns the number of entries removed.
    ///
    /// This is the keep-one sledgehammer (it also drops entries of *other
    /// live graphs* sharing the cache); the serving stack instead purges the
    /// explicit retired list of the graph it binds
    /// ([`SpgCache::purge_versions`], driven by [`CachedEve::new`]), which
    /// preserves the one-cache-many-graphs story.
    pub fn purge_other_versions(&self, keep: GraphVersion) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").purge_other_versions(keep)) // lock: cache.shard
            .sum()
    }

    /// Eagerly reclaims entries of the given retired snapshots, returning
    /// the number removed. Versions already swept are skipped via a dedup
    /// set, so the steady-state cost of re-observing the same retired list
    /// is one short mutex probe and no shard locks — cheap enough to run on
    /// every [`CachedEve`] bind. Unlike [`SpgCache::purge_other_versions`]
    /// this is list-driven: entries of other live graphs sharing the cache
    /// are untouched.
    pub fn purge_versions(&self, versions: &[GraphVersion]) -> usize {
        if versions.is_empty() {
            return 0;
        }
        // Collect the not-yet-swept versions, then release before touching
        // any shard: cache.retired is never held across cache.shard.
        let fresh: Vec<GraphVersion> = {
            let mut seen = self
                .purged_versions
                .lock() // lock: cache.retired
                .expect("cache retired-version set");
            versions
                .iter()
                .copied()
                .filter(|v| seen.insert(*v))
                .collect()
        };
        if fresh.is_empty() {
            return 0;
        }
        let removed: usize = self
            .shards
            .iter()
            .map(|s| {
                s.lock() // lock: cache.shard
                    .expect("cache shard")
                    .purge_matching(|key, _| fresh.contains(&key.version))
            })
            .sum();
        if removed > 0 {
            self.counters
                .purged_stale
                .fetch_add(removed as u64, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per retired-version sweep, not an inner loop
        }
        removed
    }

    /// Drops exactly the entries of snapshot `version` that a delta batch
    /// could have affected, per `scope`'s conservative tests
    /// ([`InvalidationScope::affects`] — addition reachability plus
    /// witness-scoped removals). Entries of other versions and out-of-scope
    /// entries survive and keep serving hits. Returns the number removed.
    pub fn purge_scoped(&self, version: GraphVersion, scope: &InvalidationScope) -> usize {
        let removed: usize = self
            .shards
            .iter()
            .map(|s| {
                s.lock() // lock: cache.shard
                    .expect("cache shard")
                    .purge_matching(|key, witness| {
                        key.version == version
                            && scope.affects(key.source, key.target, key.k, witness)
                    })
            })
            .sum();
        if removed > 0 {
            self.counters
                .purged_scoped
                .fetch_add(removed as u64, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per delta batch, not an inner loop
        }
        removed
    }

    /// The largest clamped hop constraint among resident entries of
    /// snapshot `version` (0 when none are resident). Bounds the BFS depth
    /// of a delta batch's addition-reachability sweep — entries with a
    /// larger `k` cannot exist, so no deeper exploration can matter.
    pub fn max_resident_k(&self, version: GraphVersion) -> u32 {
        self.shards
            .iter()
            .map(|s| {
                s.lock() // lock: cache.shard
                    .expect("cache shard")
                    .map
                    .keys()
                    .filter(|key| key.version == version)
                    .map(|key| key.k)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Drops every entry (counters are retained — they are monotone).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard").clear(); // lock: cache.shard
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len()) // lock: cache.shard
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").bytes) // lock: cache.shard
            .sum()
    }

    /// The configured global byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Evictions performed since construction: a single `Relaxed` atomic
    /// load, cheap enough to sample around every batch — unlike the full
    /// [`SpgCache::stats`] snapshot, which locks every shard to count
    /// occupancy.
    pub fn eviction_count(&self) -> u64 {
        self.counters.evictions.load(Ordering::Relaxed)
    }

    /// Snapshot of counters and occupancy. Counter reads are `Relaxed`; under
    /// concurrent traffic the snapshot is a consistent-enough point-in-time
    /// view (each counter individually monotone).
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard"); // lock: cache.shard
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            oversize_rejections: self.counters.oversize_rejections.load(Ordering::Relaxed),
            purged_stale: self.counters.purged_stale.load(Ordering::Relaxed),
            purged_scoped: self.counters.purged_scoped.load(Ordering::Relaxed),
            entries,
            bytes,
            budget_bytes: self.budget_bytes,
            shards: self.shards.len(),
        }
    }
}

/// Whether a cached query was served from the cache or computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache; the EVE pipeline never ran.
    Hit,
    /// Computed by the pipeline and published to the cache.
    Miss,
    /// Collapsed onto a concurrent in-flight computation of the same key by
    /// the singleflight layer ([`crate::FlightGroup`]): this slot neither
    /// probed a resident entry nor ran the pipeline — it received the
    /// leader's answer when the shared flight completed.
    Coalesced,
}

/// [`Eve`] bound to a [`VersionedGraph`] and a shared [`SpgCache`]: the
/// cached counterpart of [`Eve::query_with`]. Hits skip all three pipeline
/// phases; misses compute on the caller's workspace and publish. Cheap to
/// copy (two references and a version stamp), so batch workers each carry
/// their own copy against one shared cache.
///
/// ```
/// use spg_core::{BatchExecutor, CachedEve, Query, SpgCache};
/// use spg_core::paper_example::{figure1_graph, names};
/// use spg_graph::VersionedGraph;
///
/// let vg = VersionedGraph::new(figure1_graph());
/// let cache = SpgCache::new(1 << 20);
/// let cached = CachedEve::with_defaults(&vg, &cache);
/// let queries: Vec<Query> = (2..=8).map(|k| Query::new(names::S, names::T, k)).collect();
///
/// let cold = BatchExecutor::new(2).run_cached(&cached, &queries);
/// let warm = BatchExecutor::new(2).run_cached(&cached, &queries);
/// for (c, w) in cold.iter().zip(&warm) {
///     assert_eq!(c.as_ref().unwrap().edges(), w.as_ref().unwrap().edges());
/// }
/// assert!(cache.stats().hits >= queries.len() as u64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CachedEve<'g, 'c> {
    eve: Eve<'g>,
    version: GraphVersion,
    /// The graph's retired-snapshot list, borrowed so the binding stays
    /// `Copy`; swept on bind and by [`CachedEve::purge_retired`].
    retired: &'g [GraphVersion],
    cache: &'c SpgCache,
}

impl<'g, 'c> CachedEve<'g, 'c> {
    /// Binds EVE to `graph`'s current snapshot with an explicit
    /// configuration, sharing `cache`.
    ///
    /// The version stamp is captured here; replacing the graph requires
    /// `&mut VersionedGraph` and therefore ends this borrow, so a live
    /// `CachedEve` can never mix answers across snapshots. Binding also
    /// sweeps the bytes of snapshots this graph has retired
    /// ([`VersionedGraph::retired`]) out of the cache — stale entries were
    /// already unreachable, but until this sweep their bytes kept competing
    /// with live entries for the budget.
    pub fn new(graph: &'g VersionedGraph, config: EveConfig, cache: &'c SpgCache) -> Self {
        let cached = CachedEve {
            eve: Eve::new(graph.graph(), config),
            version: graph.version(),
            retired: graph.retired(),
            cache,
        };
        cached.purge_retired();
        cached
    }

    /// [`CachedEve::new`] with the default (full) configuration.
    pub fn with_defaults(graph: &'g VersionedGraph, cache: &'c SpgCache) -> Self {
        CachedEve::new(graph, EveConfig::default(), cache)
    }

    /// The underlying (uncached) EVE instance.
    pub fn eve(&self) -> Eve<'g> {
        self.eve
    }

    /// The shared cache.
    pub fn cache(&self) -> &'c SpgCache {
        self.cache
    }

    /// The graph snapshot version answers are keyed by.
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// Reclaims cache entries of snapshots the bound graph has retired.
    /// Runs automatically on bind; the batch drain re-invokes it per batch
    /// so long-lived bindings also converge. Deduped inside
    /// [`SpgCache::purge_versions`], so the steady-state cost is one short
    /// mutex probe. Returns the number of entries removed.
    pub fn purge_retired(&self) -> usize {
        self.cache.purge_versions(self.retired)
    }

    /// Answers `query` through the cache on a fresh workspace.
    pub fn query(&self, query: Query) -> Result<SimplePathGraph, QueryError> {
        let mut ws = QueryWorkspace::new();
        self.query_with(&mut ws, query)
    }

    /// Answers `query` through the cache on a reusable workspace: validate,
    /// clamp, look up; on a miss run the pipeline and publish. Invalid
    /// queries error exactly as [`Eve::query_with`] and never touch the
    /// cache.
    pub fn query_with(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
    ) -> Result<SimplePathGraph, QueryError> {
        self.query_with_outcome(ws, query).map(|(spg, _)| spg)
    }

    /// [`CachedEve::query_with`] additionally reporting whether the answer
    /// was a [`CacheOutcome::Hit`] or a computed [`CacheOutcome::Miss`].
    pub fn query_with_outcome(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
    ) -> Result<(SimplePathGraph, CacheOutcome), QueryError> {
        self.query_with_outcome_budgeted(ws, query, &QueryBudget::unlimited())
    }

    /// [`CachedEve::query_with_outcome`] under a caller-supplied
    /// [`QueryBudget`]. A hit costs nothing; a miss runs the pipeline
    /// cooperatively and a budget abort publishes nothing to the cache.
    pub fn query_with_outcome_budgeted(
        &self,
        ws: &mut QueryWorkspace,
        query: Query,
        budget: &QueryBudget,
    ) -> Result<(SimplePathGraph, CacheOutcome), QueryError> {
        query.validate(self.eve.graph())?;
        let clamped = query.clamped_to(self.eve.graph());
        if let Some(hit) = self.cache.get(self.version, clamped) {
            return Ok((hit, CacheOutcome::Hit));
        }
        // Compute outside any shard lock, then publish. A concurrent racer
        // on the same key publishes an identical (deterministic) answer.
        let spg = self.eve.query_budgeted(ws, clamped, budget)?;
        self.cache.insert(self.version, clamped, &spg);
        Ok((spg, CacheOutcome::Miss))
    }

    /// Answers a whole batch sequentially through the cache on one reused
    /// workspace — the cached counterpart of [`Eve::query_batch`]. Slots are
    /// bit-identical to the uncached entry points; see
    /// [`crate::BatchExecutor::run_cached`] for the parallel version.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<SimplePathGraph, QueryError>> {
        let mut ws = QueryWorkspace::new();
        queries
            .iter()
            .map(|&q| self.query_with(&mut ws, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};
    use spg_graph::EdgeSubgraph;

    /// A synthetic answer with `edges` edges, for budget scripting.
    fn answer(tag: u32, edges: usize) -> SimplePathGraph {
        let list: Vec<(u32, u32)> = (0..edges as u32).map(|i| (tag * 1000 + i, i + 1)).collect();
        SimplePathGraph::from_parts(
            Query::new(0, 1, 1),
            EdgeSubgraph::from_edges(list),
            crate::stats::EveStats::default(),
        )
    }

    fn q(s: u32, t: u32, k: u32) -> Query {
        Query::new(s, t, k)
    }

    #[test]
    fn hit_returns_the_stored_answer() {
        let cache = SpgCache::new(1 << 16);
        let a = answer(1, 4);
        assert!(cache.get(7, q(0, 1, 3)).is_none());
        cache.insert(7, q(0, 1, 3), &a);
        let hit = cache.get(7, q(0, 1, 3)).expect("hit");
        assert_eq!(hit.edges(), a.edges());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0 && stats.bytes <= stats.budget_bytes);
        assert_eq!(stats.hit_rate(), Some(0.5));
        assert!(!cache.is_empty());
    }

    #[test]
    fn version_is_part_of_the_key() {
        let cache = SpgCache::new(1 << 16);
        cache.insert(1, q(0, 1, 3), &answer(1, 2));
        assert!(cache.get(2, q(0, 1, 3)).is_none(), "other version misses");
        assert!(cache.get(1, q(0, 1, 3)).is_some());
        // Purging keeps only the requested version.
        cache.insert(2, q(0, 1, 3), &answer(2, 2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.purge_other_versions(2), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(2, q(0, 1, 3)).is_some());
    }

    #[test]
    fn lru_eviction_order_under_scripted_trace() {
        // Single shard => exact global LRU. Budget fits exactly two entries.
        let a = answer(1, 8);
        let budget = 2 * entry_cost(&a) + entry_cost(&a) / 2;
        let cache = SpgCache::with_shards(budget, 1);
        cache.insert(1, q(0, 1, 1), &a); // A
        cache.insert(1, q(0, 1, 2), &answer(2, 8)); // B
        assert_eq!(cache.len(), 2);
        // Touch A so B becomes the LRU victim.
        assert!(cache.get(1, q(0, 1, 1)).is_some());
        cache.insert(1, q(0, 1, 3), &answer(3, 8)); // C evicts B
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, q(0, 1, 1)).is_some(), "A survived");
        assert!(cache.get(1, q(0, 1, 2)).is_none(), "B was the LRU victim");
        assert!(cache.get(1, q(0, 1, 3)).is_some(), "C resident");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.eviction_count(), 1, "lock-free accessor agrees");
        assert!(cache.bytes() <= budget);
        // Inserting D now evicts A (B's miss refreshed nothing).
        cache.insert(1, q(0, 1, 4), &answer(4, 8)); // D evicts A
        assert!(cache.get(1, q(0, 1, 1)).is_none(), "A evicted second");
        assert!(cache.get(1, q(0, 1, 3)).is_some());
        assert!(cache.get(1, q(0, 1, 4)).is_some());
    }

    #[test]
    fn oversize_entries_are_rejected_not_stored() {
        let small = SpgCache::with_shards(64, 1);
        small.insert(1, q(0, 1, 1), &answer(1, 1000));
        assert_eq!(small.len(), 0);
        assert_eq!(small.bytes(), 0);
        assert_eq!(small.stats().oversize_rejections, 1);
        assert_eq!(small.stats().insertions, 0);
    }

    #[test]
    fn reinserting_a_key_refreshes_value_and_recency() {
        let a = answer(1, 8);
        let budget = 2 * entry_cost(&a) + entry_cost(&a) / 2;
        let cache = SpgCache::with_shards(budget, 1);
        cache.insert(1, q(0, 1, 1), &a); // A
        cache.insert(1, q(0, 1, 2), &answer(2, 8)); // B
        cache.insert(1, q(0, 1, 1), &answer(5, 8)); // refresh A -> MRU
        assert_eq!(cache.len(), 2, "refresh does not duplicate");
        cache.insert(1, q(0, 1, 3), &answer(3, 8)); // evicts B, not A
        assert!(cache.get(1, q(0, 1, 2)).is_none());
        let hit = cache.get(1, q(0, 1, 1)).expect("refreshed A resident");
        assert_eq!(hit.edges(), answer(5, 8).edges(), "newest value served");
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = SpgCache::new(1 << 16);
        for i in 0..32 {
            cache.insert(1, q(i, i + 1, 3), &answer(i, 3));
        }
        assert_eq!(cache.len(), 32);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats().insertions, 32, "counters are monotone");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SpgCache::with_shards(1024, 0).stats().shards, 1);
        assert_eq!(SpgCache::with_shards(1024, 3).stats().shards, 4);
        assert_eq!(SpgCache::new(1024).stats().shards, DEFAULT_SHARDS);
        assert_eq!(SpgCache::new(1024).budget_bytes(), 1024);
    }

    #[test]
    fn cached_eve_hits_skip_the_pipeline_and_match() {
        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let uncached = Eve::with_defaults(vg.graph());
        let mut ws = QueryWorkspace::new();

        // k runs to n − 1 = 7 only: k = 8 would clamp onto the k = 7 key.
        for k in 1..=7u32 {
            let (first, o1) = cached.query_with_outcome(&mut ws, q(S, T, k)).unwrap();
            let (second, o2) = cached.query_with_outcome(&mut ws, q(S, T, k)).unwrap();
            assert_eq!(o1, CacheOutcome::Miss);
            assert_eq!(o2, CacheOutcome::Hit);
            let reference = uncached.query(q(S, T, k)).unwrap();
            assert_eq!(first.edges(), reference.edges(), "k={k}");
            assert_eq!(second.edges(), reference.edges(), "k={k}");
            assert_eq!(
                second.stats().upper_bound_edges,
                reference.stats().upper_bound_edges
            );
        }
        // k = 8 clamps to 7 and is served by the k = 7 entry immediately.
        let (_, alias) = cached.query_with_outcome(&mut ws, q(S, T, 8)).unwrap();
        assert_eq!(alias, CacheOutcome::Hit);
        assert_eq!(cached.version(), vg.version());
        assert_eq!(cached.eve().graph().edge_count(), 13);
        assert_eq!(cached.cache().stats().hits, 8);
    }

    #[test]
    fn clamped_k_shares_one_entry() {
        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let n = vg.vertex_count() as u32;

        let full = cached.query(q(S, T, n - 1)).unwrap();
        let huge = cached.query(q(S, T, u32::MAX)).unwrap();
        assert_eq!(full.edges(), huge.edges());
        assert_eq!(huge.query().k, n - 1, "served answer records the clamp");
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "one entry for every clamped alias");
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn invalid_queries_error_and_never_touch_the_cache() {
        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        assert!(cached.query(q(S, S, 3)).is_err());
        assert!(cached.query(q(S, 99, 3)).is_err());
        assert!(cached.query(q(S, T, 0)).is_err());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (0, 0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn query_batch_matches_uncached_batch() {
        let vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let eve = Eve::with_defaults(vg.graph());
        // Repeats plus an invalid slot.
        let batch = vec![
            q(S, T, 4),
            q(A, B, 3),
            q(S, T, 4),
            q(S, S, 2),
            q(A, B, 3),
            q(S, T, 7),
        ];
        let got = cached.query_batch(&batch);
        let expected = eve.query_batch(&batch);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            match (g, e) {
                (Ok(a), Ok(b)) => assert_eq!(a.edges(), b.edges(), "slot {i}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "slot {i}"),
                other => panic!("slot {i}: Ok/Err mismatch {other:?}"),
            }
        }
        assert_eq!(cache.stats().hits, 2, "the two repeated slots hit");
    }

    #[test]
    fn binding_after_a_swap_reclaims_stale_bytes() {
        let mut vg = VersionedGraph::new(paper_example::figure1_graph());
        let cache = SpgCache::new(1 << 20);
        CachedEve::with_defaults(&vg, &cache)
            .query(q(S, T, 4))
            .unwrap();
        assert!(cache.bytes() > 0);
        let insertions = cache.stats().insertions;

        vg.replace(paper_example::figure1_graph());
        let cached = CachedEve::with_defaults(&vg, &cache); // bind sweeps retired
        assert_eq!(cache.bytes(), 0, "stale bytes reclaimed on bind");
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.insertions, insertions, "no new inserts were needed");
        assert_eq!(stats.purged_stale, 1);
        // Re-sweeping the same retired list is a deduped no-op.
        assert_eq!(cached.purge_retired(), 0);
        assert_eq!(cache.stats().purged_stale, 1);
    }

    #[test]
    fn purge_versions_is_list_driven() {
        let cache = SpgCache::new(1 << 16);
        cache.insert(1, q(0, 1, 3), &answer(1, 2));
        cache.insert(2, q(0, 1, 3), &answer(2, 2));
        cache.insert(3, q(0, 1, 3), &answer(3, 2));
        assert_eq!(cache.purge_versions(&[]), 0);
        assert_eq!(cache.purge_versions(&[2]), 1, "only the listed version");
        assert!(
            cache.get_quiet(1, q(0, 1, 3)).is_some(),
            "other graphs keep theirs"
        );
        assert!(cache.get_quiet(3, q(0, 1, 3)).is_some());
        assert_eq!(cache.purge_versions(&[2]), 0, "deduped re-sweep");
        assert_eq!(cache.stats().purged_stale, 1);
    }

    #[test]
    fn scoped_purge_checks_version_and_witness() {
        use spg_graph::{DiGraph, EdgeDelta};
        let cache = SpgCache::new(1 << 16);
        // Two versions share a key shape; only version 1 entries are swept.
        cache.insert(1, q(0, 1, 4), &answer(1, 2)); // witness-less
        cache.insert(
            1,
            q(2, 3, 4),
            &answer(2, 2).with_witness(&[2, 3]), // witness excludes 5 and 6
        );
        cache.insert(9, q(0, 1, 4), &answer(3, 2));
        assert_eq!(cache.max_resident_k(1), 4);
        assert_eq!(cache.max_resident_k(7), 0);
        let g = DiGraph::from_edges(8, [(0, 1), (5, 6)]);
        let scope = InvalidationScope::build(&g, &[EdgeDelta::remove(5, 6)], 4);
        assert_eq!(cache.purge_scoped(1, &scope), 1, "witness-less entry only");
        assert!(cache.get_quiet(1, q(0, 1, 4)).is_none());
        assert!(
            cache.get_quiet(1, q(2, 3, 4)).is_some(),
            "witness cleared it"
        );
        assert!(
            cache.get_quiet(9, q(0, 1, 4)).is_some(),
            "other version safe"
        );
        assert_eq!(cache.stats().purged_scoped, 1);
    }

    #[test]
    fn entry_cost_charges_the_witness() {
        let bare = answer(1, 4);
        let witnessed = answer(1, 4).with_witness(&[0, 1, 2, 3]);
        assert_eq!(
            entry_cost(&witnessed),
            entry_cost(&bare) + 4 * mem::size_of::<VertexId>()
        );
    }

    #[test]
    fn entry_cost_tracks_answer_size() {
        let small = answer(1, 2);
        let large = answer(1, 200);
        assert!(entry_cost(&large) > entry_cost(&small));
        assert!(entry_cost(&small) >= ENTRY_OVERHEAD_BYTES);
        // Pipeline-produced answers use the recorded MemoryEstimate.
        let g = paper_example::figure1_graph();
        let spg = Eve::with_defaults(&g).query(q(S, T, 7)).unwrap();
        assert!(entry_cost(&spg) >= ENTRY_OVERHEAD_BYTES + spg.stats().memory.verification_bytes);
    }
}
