//! Verification of undetermined edges (§5, Algorithm 3) with the
//! search-ordering strategies of §5.3.
//!
//! After labeling, every undetermined edge `e(u, v)` either lies on a
//! k-hop-constrained s-t simple path or it does not; Theorem 5.6 reduces the
//! question to finding a simple path `q*` of length ≤ `k − 4` inside the
//! upper-bound graph that starts at a *departure*, ends at an *arrival*,
//! passes through `e(u, v)`, and whose endpoints still have a valid
//! in-neighbour / out-neighbour pair distinct from everything on `q*`.
//! A DFS-oriented search looks for such a witness; when one is found, *every*
//! edge on it is added to the answer at once (they are all on the same
//! witness s-t simple path).
//!
//! The search-ordering strategy pre-sorts the adjacency lists of `SPGᵘ_k` so
//! that neighbours closer to an arrival (resp. departure) are explored first,
//! with ties broken towards vertices offering more valid neighbours — both
//! heuristics make a witness more likely to be found early (§5.3).

use std::collections::hash_map::Entry;
use std::collections::VecDeque;

use spg_graph::hash::{FxHashMap, FxHashSet};
use spg_graph::VertexId;

use crate::labeling::UpperBoundGraph;
use crate::query::Query;

/// Work counters for the verification phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerificationStats {
    /// Number of undetermined edges that required a DFS-oriented search.
    pub searches: usize,
    /// Undetermined edges confirmed to be part of `SPG_k`.
    pub confirmed: usize,
    /// Undetermined edges rejected (the redundant edges of Table 3).
    pub rejected: usize,
    /// Undetermined edges confirmed for free because an earlier witness path
    /// already covered them.
    pub covered_by_witness: usize,
    /// DFS expansions performed across all searches.
    pub dfs_steps: usize,
}

/// Result of verifying all undetermined edges.
#[derive(Debug, Clone)]
pub struct VerificationOutcome {
    /// Final edge set of `SPG_k(s, t)` (definite edges plus confirmed
    /// undetermined edges).
    pub edges: Vec<(VertexId, VertexId)>,
    /// Counters.
    pub stats: VerificationStats,
}

/// Applies the §5.3 search-ordering strategy to the adjacency lists of the
/// upper-bound graph:
///
/// * out-neighbours are sorted by ascending distance (within `SPGᵘ_k`) to the
///   closest arrival vertex, ties broken by larger `|Out_A|` first;
/// * in-neighbours are sorted by ascending distance from the closest
///   departure vertex, ties broken by larger `|In_D|` first.
pub fn apply_search_ordering(ub: &mut UpperBoundGraph) {
    let arrivals: Vec<VertexId> = ub.arrivals().collect();
    let departures: Vec<VertexId> = ub.departures().collect();
    // Distance from every vertex TO the nearest arrival, following SPGᵘ
    // edges forwards — computed as a multi-source BFS over in-neighbours.
    let dist_to_arrival = multi_source_bfs(&arrivals, |v| ub.in_neighbors(v).to_vec());
    // Distance from the nearest departure TO every vertex.
    let dist_from_departure = multi_source_bfs(&departures, |v| ub.out_neighbors(v).to_vec());

    let out_a_len: FxHashMap<VertexId, usize> =
        arrivals.iter().map(|&a| (a, ub.out_a(a).len())).collect();
    let in_d_len: FxHashMap<VertexId, usize> =
        departures.iter().map(|&d| (d, ub.in_d(d).len())).collect();

    let (out_adj, in_adj) = ub.adjacency_mut();
    for neighbors in out_adj.values_mut() {
        neighbors.sort_by_key(|v| {
            let dist = dist_to_arrival.get(v).copied().unwrap_or(u32::MAX);
            let fanout = out_a_len.get(v).copied().unwrap_or(0);
            (dist, usize::MAX - fanout, *v)
        });
    }
    for neighbors in in_adj.values_mut() {
        neighbors.sort_by_key(|v| {
            let dist = dist_from_departure.get(v).copied().unwrap_or(u32::MAX);
            let fanin = in_d_len.get(v).copied().unwrap_or(0);
            (dist, usize::MAX - fanin, *v)
        });
    }
}

fn multi_source_bfs<F>(sources: &[VertexId], neighbors: F) -> FxHashMap<VertexId, u32>
where
    F: Fn(VertexId) -> Vec<VertexId>,
{
    let mut dist: FxHashMap<VertexId, u32> = FxHashMap::default();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for &s in sources {
        dist.entry(s).or_insert(0);
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        for v in neighbors(u) {
            if let Entry::Vacant(slot) = dist.entry(v) {
                slot.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Verifies every undetermined edge of `ub` and returns the final edge set of
/// `SPG_k(s, t)` (Algorithm 3).
pub fn verify_undetermined(ub: &UpperBoundGraph, query: Query) -> VerificationOutcome {
    let mut result: FxHashSet<(VertexId, VertexId)> = ub.definite_edges().iter().copied().collect();
    let mut stats = VerificationStats::default();

    if query.k >= 5 {
        let mut verifier = Verifier {
            ub,
            query,
            result: &mut result,
            stack_vertices: Vec::with_capacity(query.k as usize + 2),
            stack_edges: Vec::with_capacity(query.k as usize),
            dfs_steps: 0,
        };
        for &(u, v) in ub.undetermined_edges() {
            if verifier.result.contains(&(u, v)) {
                stats.covered_by_witness += 1;
                stats.confirmed += 1;
                continue;
            }
            stats.searches += 1;
            if verifier.verify_edge(u, v) {
                stats.confirmed += 1;
            } else {
                stats.rejected += 1;
            }
        }
        stats.dfs_steps = verifier.dfs_steps;
    } else {
        // Theorem 4.8: k ≤ 4 means no undetermined edges can exist.
        debug_assert!(ub.undetermined_edges().is_empty());
    }

    let mut edges: Vec<(VertexId, VertexId)> = result.into_iter().collect();
    edges.sort_unstable();
    VerificationOutcome { edges, stats }
}

struct Verifier<'a> {
    ub: &'a UpperBoundGraph,
    query: Query,
    result: &'a mut FxHashSet<(VertexId, VertexId)>,
    stack_vertices: Vec<VertexId>,
    stack_edges: Vec<(VertexId, VertexId)>,
    dfs_steps: usize,
}

impl<'a> Verifier<'a> {
    /// Tries to find a witness for undetermined edge `e(u, v)`; if found, all
    /// stack edges are added to the result.
    fn verify_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.stack_vertices.clear();
        self.stack_edges.clear();
        self.stack_vertices
            .extend_from_slice(&[u, v, self.query.source, self.query.target]);
        self.stack_edges.push((u, v));
        let confirmed = self.forward(v, 1, u);
        if confirmed {
            debug_assert!(self.result.contains(&(u, v)));
        }
        confirmed
    }

    /// Grows the path forwards from `cur` towards an arrival vertex.
    fn forward(&mut self, cur: VertexId, len: u32, u: VertexId) -> bool {
        self.dfs_steps += 1;
        if self.ub.is_arrival(cur) && self.backward(u, len, cur) {
            return true;
        }
        if len < self.query.k - 4 {
            let neighbors = self.ub.out_neighbors(cur).to_vec();
            for nxt in neighbors {
                if self.stack_vertices.contains(&nxt) {
                    continue;
                }
                self.stack_vertices.push(nxt);
                self.stack_edges.push((cur, nxt));
                if self.forward(nxt, len + 1, u) {
                    return true;
                }
                self.stack_vertices.pop();
                self.stack_edges.pop();
            }
        }
        false
    }

    /// Grows the path backwards from `cur` towards a departure vertex.
    fn backward(&mut self, cur: VertexId, len: u32, arrival: VertexId) -> bool {
        self.dfs_steps += 1;
        if self.ub.is_departure(cur) && self.try_add_edges(cur, arrival) {
            return true;
        }
        if len < self.query.k - 4 {
            let neighbors = self.ub.in_neighbors(cur).to_vec();
            for nxt in neighbors {
                if self.stack_vertices.contains(&nxt) {
                    continue;
                }
                self.stack_vertices.push(nxt);
                self.stack_edges.push((nxt, cur));
                if self.backward(nxt, len + 1, arrival) {
                    return true;
                }
                self.stack_vertices.pop();
                self.stack_edges.pop();
            }
        }
        false
    }

    /// Final check of Theorem 5.6 condition (2): the departure must have a
    /// valid in-neighbour and the arrival a valid out-neighbour, distinct
    /// from each other and from every vertex on the witness path.
    fn try_add_edges(&mut self, departure: VertexId, arrival: VertexId) -> bool {
        let in_c: Vec<VertexId> = self
            .ub
            .in_d(departure)
            .iter()
            .copied()
            .filter(|x| !self.stack_vertices.contains(x))
            .collect();
        if in_c.is_empty() {
            return false;
        }
        let out_c: Vec<VertexId> = self
            .ub
            .out_a(arrival)
            .iter()
            .copied()
            .filter(|y| !self.stack_vertices.contains(y))
            .collect();
        if out_c.is_empty() {
            return false;
        }
        let pair_exists = in_c.len() > 1 || out_c.len() > 1 || in_c[0] != out_c[0];
        if !pair_exists {
            return false;
        }
        for &e in &self.stack_edges {
            self.result.insert(e);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};
    use crate::propagation::Propagation;
    use spg_graph::{DiGraph, DistanceIndex, DistanceStrategy};

    fn upper_bound(g: &DiGraph, q: Query, ordering: bool) -> UpperBoundGraph {
        let idx = DistanceIndex::compute(
            g,
            q.source,
            q.target,
            q.k,
            DistanceStrategy::AdaptiveBidirectional,
        );
        let fwd = Propagation::forward(g, q, &idx, true);
        let bwd = Propagation::backward(g, q, &idx, true);
        let mut ub = UpperBoundGraph::build(g, q, &idx, &fwd, &bwd);
        if ordering {
            apply_search_ordering(&mut ub);
        }
        ub
    }

    /// Example 5.7: verifying e(i, j) finds the witness q* = {i, j, h} and
    /// also adds e(j, h); the redundant upper-bound edge e(b, a) is rejected.
    #[test]
    fn example_5_7_and_redundant_edge_rejection() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 7);
        let ub = upper_bound(&g, q, false);
        let outcome = verify_undetermined(&ub, q);
        let edges: FxHashSet<(VertexId, VertexId)> = outcome.edges.iter().copied().collect();
        assert!(edges.contains(&(I, J)));
        assert!(edges.contains(&(J, H)));
        assert!(
            !edges.contains(&(B, A)),
            "e(b,a) is not on any simple s-t path (Lemma 3.3)"
        );
        assert!(!edges.contains(&(B, J)));
        assert_eq!(outcome.edges.len(), 11);
        assert_eq!(outcome.stats.rejected, 1);
        assert_eq!(outcome.stats.confirmed, 2);
        assert!(outcome.stats.covered_by_witness >= 1);
    }

    /// The search-ordering strategy must not change the answer, only the
    /// amount of work.
    #[test]
    fn ordering_is_answer_preserving() {
        let g = paper_example::figure1_graph();
        for k in 5..=8u32 {
            let q = Query::new(S, T, k);
            let plain = verify_undetermined(&upper_bound(&g, q, false), q);
            let ordered = verify_undetermined(&upper_bound(&g, q, true), q);
            assert_eq!(plain.edges, ordered.edges, "k = {k}");
        }
    }

    /// k = 5 performs no DFS expansion (the initial length already equals
    /// k − 4) yet still confirms edges whose endpoints are departure/arrival.
    #[test]
    fn k5_verification_without_expansion() {
        // s -> a -> b -> c -> d -> t plus shortcut edges making (b, c)
        // undetermined-ish; simply check correctness against brute force on a
        // small cyclic graph.
        let g = DiGraph::from_edges(
            6,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (1, 3),
                (2, 4),
                (3, 1),
            ],
        );
        let q = Query::new(0, 5, 5);
        let ub = upper_bound(&g, q, true);
        let outcome = verify_undetermined(&ub, q);
        // Brute force: union of all simple paths of length <= 5.
        let expected = brute_force_spg(&g, 0, 5, 5);
        assert_eq!(outcome.edges, expected);
    }

    /// Verification agrees with the brute-force oracle on random graphs.
    #[test]
    fn verification_matches_bruteforce_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        for case in 0..30 {
            let n = rng.gen_range(6..12);
            let m = rng.gen_range(n..3 * n);
            let g = spg_graph::generators::gnm_random(n, m, 500 + case);
            let s = 0u32;
            let t = (n - 1) as u32;
            let k = rng.gen_range(5..8);
            let q = Query::new(s, t, k);
            let ub = upper_bound(&g, q, case % 2 == 0);
            let outcome = verify_undetermined(&ub, q);
            let expected = brute_force_spg(&g, s, t, k);
            assert_eq!(outcome.edges, expected, "case {case} n={n} m={m} k={k}");
        }
    }

    /// Reference implementation: enumerate all simple paths by DFS and union
    /// their edges.
    fn brute_force_spg(g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> Vec<(VertexId, VertexId)> {
        let mut edges: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        let mut stack = vec![s];
        brute_dfs(g, t, k, &mut stack, &mut edges);
        let mut out: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn brute_dfs(
        g: &DiGraph,
        t: VertexId,
        budget: u32,
        stack: &mut Vec<VertexId>,
        edges: &mut FxHashSet<(VertexId, VertexId)>,
    ) {
        let cur = *stack.last().unwrap();
        if cur == t {
            for w in stack.windows(2) {
                edges.insert((w[0], w[1]));
            }
            return;
        }
        if budget == 0 {
            return;
        }
        for &nxt in g.out_neighbors(cur) {
            if stack.contains(&nxt) {
                continue;
            }
            stack.push(nxt);
            brute_dfs(g, t, budget - 1, stack, edges);
            stack.pop();
        }
    }
}
