//! Essential vertex sets (Definition 3.1).
//!
//! An essential vertex set `EV*_l(s, u)` is the intersection of the vertex
//! sets of *all* simple paths from `s` to `u` of length at most `l` that do
//! not pass through `t`. By Theorem 3.5 it can equivalently be computed over
//! all (not necessarily simple) paths, which is what the propagation phase
//! exploits.
//!
//! Sets are tiny — at most `l + 1 ≤ k` vertices, and the paper evaluates
//! `k ≤ 8` — so they are stored as short *sorted* vectors. Intersection and
//! disjointness are linear merges over the sorted representation; the
//! propagation step's operator `A ∩ (B ∪ {y})` is fused into a single pass so
//! no temporary union is ever materialised.

use spg_graph::VertexId;

/// A small sorted set of vertices: the essential vertices of some `P_l(s,u)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvSet {
    items: Vec<VertexId>,
}

impl EvSet {
    /// The empty set.
    pub fn new() -> Self {
        EvSet { items: Vec::new() }
    }

    /// Singleton set `{v}`.
    pub fn singleton(v: VertexId) -> Self {
        EvSet { items: vec![v] }
    }

    /// Builds a set from arbitrary (possibly unsorted, duplicated) vertices.
    pub fn from_vertices<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        let mut items: Vec<VertexId> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        EvSet { items }
    }

    /// Number of vertices in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted slice of the members.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.items
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Inserts `v`, keeping the representation sorted.
    pub fn insert(&mut self, v: VertexId) {
        if let Err(pos) = self.items.binary_search(&v) {
            self.items.insert(pos, v);
        }
    }

    /// Returns `self ∪ {v}` without mutating `self`.
    pub fn with(&self, v: VertexId) -> EvSet {
        let mut out = self.clone();
        out.insert(v);
        out
    }

    /// `true` if the two sets share no vertex (linear merge).
    pub fn is_disjoint(&self, other: &EvSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// `true` if every member of `self` is in `other` (linear merge over the
    /// sorted representations, like the other binary set operators).
    pub fn is_subset_of(&self, other: &EvSet) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        let mut j = 0usize;
        for &v in &self.items {
            while j < other.items.len() && other.items[j] < v {
                j += 1;
            }
            if j >= other.items.len() || other.items[j] != v {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Plain intersection `self ∩ other`.
    pub fn intersect(&self, other: &EvSet) -> EvSet {
        let mut out = Vec::with_capacity(self.items.len().min(other.items.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        EvSet { items: out }
    }

    /// The fused propagation operator `self ∩ (other ∪ {extra})`
    /// (Equation 4): intersects `self` with `other` while treating `extra` as
    /// an additional member of `other`, in a single merge pass.
    pub fn intersect_with_added(&self, other: &EvSet, extra: VertexId) -> EvSet {
        let mut out = Vec::with_capacity(self.items.len().min(other.items.len() + 1));
        let (mut i, mut j) = (0usize, 0usize);
        let mut extra_pending = true;
        while i < self.items.len() {
            let a = self.items[i];
            // Advance `other` below a.
            while j < other.items.len() && other.items[j] < a {
                j += 1;
            }
            let in_other = j < other.items.len() && other.items[j] == a;
            let is_extra = extra_pending && a == extra;
            if in_other || is_extra {
                out.push(a);
                if is_extra {
                    extra_pending = false;
                }
            }
            i += 1;
        }
        EvSet { items: out }
    }

    /// Heap bytes used by the set (for the space accounting of §6.2).
    pub fn memory_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<VertexId>()
    }
}

impl FromIterator<VertexId> for EvSet {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        EvSet::from_vertices(iter)
    }
}

impl std::fmt::Display for EvSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[VertexId]) -> EvSet {
        EvSet::from_vertices(items.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn membership_and_insert() {
        let mut s = set(&[2, 4]);
        assert!(s.contains(2));
        assert!(!s.contains(3));
        s.insert(3);
        s.insert(3);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let t = s.with(0);
        assert_eq!(t.as_slice(), &[0, 2, 3, 4]);
        assert_eq!(s.as_slice(), &[2, 3, 4], "with() must not mutate");
    }

    #[test]
    fn disjoint_and_subset() {
        assert!(set(&[1, 3]).is_disjoint(&set(&[2, 4])));
        assert!(!set(&[1, 3]).is_disjoint(&set(&[3, 4])));
        assert!(set(&[]).is_disjoint(&set(&[1])));
        assert!(set(&[1, 3]).is_subset_of(&set(&[0, 1, 2, 3])));
        assert!(!set(&[1, 5]).is_subset_of(&set(&[1, 2, 3])));
    }

    #[test]
    fn plain_intersection() {
        assert_eq!(set(&[1, 2, 3, 7]).intersect(&set(&[2, 3, 4])), set(&[2, 3]));
        assert_eq!(set(&[1]).intersect(&set(&[2])), set(&[]));
    }

    #[test]
    fn fused_operator_matches_naive_union_then_intersect() {
        let cases: Vec<(Vec<u32>, Vec<u32>, u32)> = vec![
            (vec![0, 2, 5, 9], vec![2, 9], 5),
            (vec![0, 2, 5, 9], vec![], 5),
            (vec![], vec![1, 2], 3),
            (vec![1, 2, 3], vec![1, 2, 3], 0),
            (vec![4, 6, 8], vec![1, 3, 5], 8),
            (vec![4, 6, 8], vec![1, 3, 5], 0),
        ];
        for (a, b, extra) in cases {
            let sa = set(&a);
            let sb = set(&b);
            let fused = sa.intersect_with_added(&sb, extra);
            let naive = sa.intersect(&sb.with(extra));
            assert_eq!(fused, naive, "a={a:?} b={b:?} extra={extra}");
        }
    }

    #[test]
    fn display_and_memory() {
        let s = set(&[3, 1]);
        assert_eq!(s.to_string(), "{1, 3}");
        assert!(s.memory_bytes() >= 2 * std::mem::size_of::<VertexId>());
        assert_eq!(EvSet::new().to_string(), "{}");
    }

    #[test]
    fn collect_from_iterator() {
        let s: EvSet = [9u32, 1, 9, 4].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 4, 9]);
        assert_eq!(EvSet::singleton(7).as_slice(), &[7]);
    }
}
