//! Cohort planning and execution for the batch-shared MS-BFS Phase 1.
//!
//! A batch's dominant cost is Phase 1 (hop-bounded distance search), and a
//! batch's queries repeat a lot of that traversal — in fraud-shaped
//! workloads most queries fan out from a handful of sources into a handful
//! of targets. [`CohortPlan`] groups a batch into **cohorts** of queries
//! whose Phase-1 work is computed by a single bit-parallel bidirectional
//! [`MsBfsEngine`](spg_graph::MsBfsEngine) traversal: one lane per
//! **distinct `(s, t)` endpoint pair** (up to [`LaneWidth::lanes`] — 256
//! with the default [`LaneWidth::W256`] — per cohort), so hub-skewed
//! batches pay once per distinct pair no matter how many queries repeat it.
//!
//! Lanes are keyed by the *pair* rather than the bare source/target because
//! EVE's distances are endpoint-avoiding (`Δ(s, v)` never routes through
//! `t`): two queries from the same source but different targets need
//! different avoid vertices, and merging them could change answers. A
//! lane's hop budget is the maximum clamped `k` among the queries that
//! share its pair; each member filters the (possibly deeper) shared raw
//! distances down to its own `k` when materialising its workspace, which
//! keeps every answer bit-identical to a per-query run.
//!
//! Three scheduling decisions shape the plan:
//!
//! * **Endpoint-locality order.** Valid queries are planned in sorted order
//!   — grouped by their *anchor* (the endpoint occurring in the most
//!   distinct pairs of the batch, i.e. the hub), anchor groups ordered by a
//!   hub hash — instead of arrival order. An adversarially interleaved
//!   batch (hub A, hub B, hub A, …) would otherwise fragment into
//!   half-empty cohorts mixing unrelated regions; after the sort each
//!   cohort's lanes share endpoints and traverse one region. Output slots
//!   are addressed by member index throughout, so planning order never
//!   affects where answers land.
//! * **Cost-based singleton fallback.** Sharing has to pay for itself: a
//!   shared traversal expands the *union* of its lanes' frontiers, so a
//!   cohort of pairwise-disjoint endpoint pairs does the same traversal
//!   work as per-query runs *plus* multi-word bookkeeping — the 0.93×
//!   uniform-batch regression of the first cohort engine. A sealed cohort
//!   therefore estimates whether sharing wins — repeated pairs (member
//!   dedup) always do; otherwise its lanes must overlap endpoints enough
//!   (≤ 1.5 distinct endpoints per pair on average) — and dissolves into
//!   per-query [`Unit::Single`]s when it cannot.
//! * **Worker caps.** Cohorts are indivisible scheduling units, so plans
//!   for multi-worker executors cap members per cohort to keep every
//!   worker busy (see [`CohortPlan::build`]).
//!
//! Invalid queries and queries that end up alone in their cohort skip the
//! shared machinery entirely: the plan emits them as [`Unit::Single`] and
//! the executors answer them on the classic per-query
//! [`Eve::query_with`](crate::Eve::query_with) path.

use std::time::Instant;

use spg_graph::hash::FxHashMap;
use spg_graph::{
    DiGraph, Direction, FrontierMode, FrontierPolicy, LaneBlock, Lanes128, Lanes256, Lanes64,
    MsBfsEngine, MsBfsLane, QueryBudget,
};

use crate::eve::Eve;
use crate::executor::{BatchResult, ThreadBatchStats};
use crate::query::{Query, QueryError};
use crate::workspace::QueryWorkspace;

/// Maximum lanes (distinct endpoint pairs) a single cohort may hold —
/// the lane-block width of the MS-BFS engine that runs it. Executors pick
/// the width via [`crate::BatchExecutor::phase1_lanes`]; the planner packs
/// up to this many pairs per cohort and `run_cohort` dispatches each cohort
/// to the narrowest engine that fits it, so a 40-pair cohort planned under
/// [`LaneWidth::W256`] still runs on the cheap single-word engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneWidth {
    /// One `u64` word per vertex: up to 64 pairs per cohort.
    W64,
    /// Two words: up to 128 pairs per cohort.
    W128,
    /// Four words: up to 256 pairs per cohort (the default).
    #[default]
    W256,
}

impl LaneWidth {
    /// Lane capacity of a cohort planned at this width.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W64 => Lanes64::LANES,
            LaneWidth::W128 => Lanes128::LANES,
            LaneWidth::W256 => Lanes256::LANES,
        }
    }
}

/// One cohort member: its slot in the batch, its validated + clamped query,
/// and the lane its endpoint pair maps to.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CohortMember {
    pub index: usize,
    pub query: Query,
    pub lane: u32,
}

/// A group of ≥ 2 queries whose Phase 1 runs as one bidirectional MS-BFS
/// traversal.
#[derive(Debug, Clone, Default)]
pub(crate) struct Cohort {
    /// One lane per distinct `(s, t)` pair; `depth` = max clamped `k`
    /// among the pair's members.
    pub lanes: Vec<MsBfsLane>,
    /// Member queries, ordered by `(lane, k)` once sealed.
    pub members: Vec<CohortMember>,
}

/// One schedulable unit of a batch.
#[derive(Debug, Clone)]
pub(crate) enum Unit {
    /// A shared-Phase-1 cohort.
    Cohort(Cohort),
    /// A query answered on the per-query path: invalid (fails validation
    /// identically to the sequential run), alone in its cohort, or part of
    /// a cohort the cost model dissolved.
    Single(usize),
}

/// The cohort decomposition of one batch (see the module docs).
#[derive(Debug, Clone, Default)]
pub(crate) struct CohortPlan {
    pub units: Vec<Unit>,
}

/// Deterministic hub hash used to order anchor groups: same multiplier as
/// the workspace Fx hasher, so anchor groups interleave pseudo-randomly
/// instead of by vertex id (consecutive hub ids would otherwise cluster
/// deep regions into the same cohorts).
fn hub_hash(v: u32) -> u64 {
    (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl CohortPlan {
    /// Groups `queries` into cohorts: invalid queries fall out as
    /// [`Unit::Single`] first, valid ones are ordered by endpoint locality
    /// (see the module docs) and then packed linearly — distinct endpoint
    /// pairs fill the current cohort's lanes until all `width.lanes()` are
    /// taken, then a new cohort opens. Slot order is preserved through the
    /// member indices.
    ///
    /// `parallel_units` is the number of workers that should stay busy.
    /// Cohorts are indivisible scheduling units, so without a cap a
    /// fraud-ring batch (few distinct pairs) would collapse into a single
    /// cohort and serialize the whole batch onto one worker. With
    /// `parallel_units > 1` the member count per cohort is capped at about
    /// `len / (2 × parallel_units)`, trading some traversal dedup (a pair
    /// recurring across cohorts is traversed once per cohort) for at least
    /// two units per worker; a single worker gets the uncapped plan and
    /// the maximum dedup.
    pub fn build(
        graph: &DiGraph,
        queries: &[Query],
        parallel_units: usize,
        width: LaneWidth,
    ) -> CohortPlan {
        let member_cap = if parallel_units <= 1 {
            usize::MAX
        } else {
            queries.len().div_ceil(parallel_units * 2).max(2)
        };
        let lane_cap = width.lanes();
        let mut plan = CohortPlan::default();

        // Validation pass: invalid queries fail identically to the
        // sequential run and never join a cohort.
        let mut valid: Vec<(usize, Query)> = Vec::with_capacity(queries.len());
        for (index, query) in queries.iter().enumerate() {
            if query.validate(graph).is_err() {
                plan.units.push(Unit::Single(index));
            } else {
                valid.push((index, query.clamped_to(graph)));
            }
        }

        // Endpoint-locality order: count how many *distinct* pairs each
        // vertex anchors, pick each query's higher-frequency endpoint as
        // its anchor (source on ties) and sort anchor groups by hub hash.
        // Repeated (s, t, k) land adjacent, which also maximises the
        // run-time distance reuse between identical members.
        let mut pair_seen: FxHashMap<(u32, u32), ()> = FxHashMap::default();
        let mut endpoint_freq: FxHashMap<u32, u32> = FxHashMap::default();
        for &(_, q) in &valid {
            if pair_seen.insert((q.source, q.target), ()).is_none() {
                *endpoint_freq.entry(q.source).or_insert(0) += 1;
                *endpoint_freq.entry(q.target).or_insert(0) += 1;
            }
        }
        let freq = |v: u32| endpoint_freq.get(&v).copied().unwrap_or(0);
        valid.sort_by_key(|&(index, q)| {
            let anchor = if freq(q.target) > freq(q.source) {
                q.target
            } else {
                q.source
            };
            (hub_hash(anchor), anchor, q.source, q.target, q.k, index)
        });

        // Linear fill in locality order.
        let mut open = Cohort::default();
        let mut pair_lane: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for (index, query) in valid {
            let key = (query.source, query.target);
            let lane = match pair_lane.get(&key) {
                Some(&lane) => {
                    // A repeated pair deepens its lane to the largest k.
                    let slot = &mut open.lanes[lane as usize];
                    slot.depth = slot.depth.max(query.k);
                    lane
                }
                None => {
                    if open.lanes.len() == lane_cap {
                        plan.close(&mut open, &mut pair_lane);
                    }
                    let lane = open.lanes.len() as u32;
                    open.lanes.push(MsBfsLane {
                        source: query.source,
                        target: query.target,
                        depth: query.k,
                    });
                    pair_lane.insert(key, lane);
                    lane
                }
            };
            open.members.push(CohortMember { index, query, lane });
            if open.members.len() >= member_cap {
                plan.close(&mut open, &mut pair_lane);
            }
        }
        plan.close(&mut open, &mut pair_lane);
        plan
    }

    /// Seals the open cohort: empty ones vanish, singletons fall back to the
    /// per-query path (sharing a traversal with itself buys nothing), and a
    /// cohort the cost model rejects ([`sharing_pays`]) dissolves into
    /// per-query units. Members of surviving cohorts are ordered by
    /// `(lane, k)` so duplicate `(s, t, k)` triples run back to back and
    /// [`run_cohort`] can reuse the previous member's materialised
    /// distances + compacted space (output slots are addressed by member
    /// index, so member execution order is free to choose).
    fn close(&mut self, open: &mut Cohort, pair_lane: &mut FxHashMap<(u32, u32), u32>) {
        pair_lane.clear();
        let mut cohort = std::mem::take(open);
        match cohort.members.len() {
            0 => {}
            1 => self.units.push(Unit::Single(cohort.members[0].index)),
            _ if !sharing_pays(&cohort) => {
                for member in &cohort.members {
                    self.units.push(Unit::Single(member.index));
                }
            }
            _ => {
                cohort.members.sort_by_key(|m| (m.lane, m.query.k));
                self.units.push(Unit::Cohort(cohort));
            }
        }
    }
}

/// Cost model for keeping a sealed cohort shared (see the module docs).
///
/// A shared traversal's frontier is the union of its lanes' frontiers, so
/// the shared cost scales with how much of the batch's endpoint region each
/// sweep covers, while the per-query cost scales with the member count.
/// Two ways sharing wins:
///
/// * **Dedup** — more members than lanes means repeated pairs whose
///   traversal (and materialised distances, via the reuse path) are paid
///   once instead of per member. Always worth it.
/// * **Overlap** — distinct pairs that share endpoints traverse
///   overlapping regions; the union frontier is much smaller than the sum
///   of the parts. The proxy: at most 1.5 distinct endpoint vertices per
///   lane on average (`2 × pairs` endpoints would mean fully disjoint
///   pairs — the regression case where sharing only adds wide-word
///   bookkeeping).
fn sharing_pays(cohort: &Cohort) -> bool {
    if cohort.members.len() > cohort.lanes.len() {
        return true;
    }
    let mut endpoints: Vec<u32> = cohort
        .lanes
        .iter()
        .flat_map(|lane| [lane.source, lane.target])
        .collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    endpoints.len() * 2 <= cohort.lanes.len() * 3
}

/// Executes one cohort on a worker's private workspace: one bidirectional
/// MS-BFS traversal (forward from the distinct sources, backward from the
/// distinct targets, avoid vertices per lane), then phases 1b–3 per member
/// on the lane's materialised distances. The cohort is dispatched to the
/// narrowest workspace engine whose lane-block width fits its lane count.
/// Results are handed to `publish` in member order; `stats` accumulates the
/// shared-Phase-1 counters and the usual per-slot bookkeeping.
/// `deadlines` is indexed by batch slot (may be empty: no deadlines). The
/// shared traversal is work every member needs, so it is only abandoned once
/// **every** member's deadline has passed (the cohort-level budget is the
/// *latest* member deadline, or unlimited if any member is unbounded); an
/// abandoned traversal fails all members with
/// [`QueryError::DeadlineExceeded`]. Phases 1b–3 then run under each
/// member's own deadline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cohort(
    eve: &Eve<'_>,
    ws: &mut QueryWorkspace,
    cohort: &Cohort,
    mode: FrontierMode,
    policy: FrontierPolicy,
    deadlines: &[Option<Instant>],
    stats: &mut ThreadBatchStats,
    publish: impl FnMut(usize, BatchResult),
) {
    // Take the engine out of the workspace so its results can be read
    // while the rest of the workspace runs phases 1b–3 mutably.
    if cohort.lanes.len() <= Lanes64::LANES {
        let mut engine = std::mem::take(&mut ws.msbfs64);
        run_cohort_on(
            eve,
            ws,
            &mut engine,
            cohort,
            mode,
            policy,
            deadlines,
            stats,
            publish,
        );
        ws.msbfs64 = engine;
    } else if cohort.lanes.len() <= Lanes128::LANES {
        let mut engine = std::mem::take(&mut ws.msbfs128);
        run_cohort_on(
            eve,
            ws,
            &mut engine,
            cohort,
            mode,
            policy,
            deadlines,
            stats,
            publish,
        );
        ws.msbfs128 = engine;
    } else {
        let mut engine = std::mem::take(&mut ws.msbfs256);
        run_cohort_on(
            eve,
            ws,
            &mut engine,
            cohort,
            mode,
            policy,
            deadlines,
            stats,
            publish,
        );
        ws.msbfs256 = engine;
    }
}

/// [`run_cohort`] monomorphised over one lane-block width. Only the
/// traversal and the thin per-member distance loader are generic; phases
/// 1b–3 behind [`Eve::query_shared`] are compiled once.
#[allow(clippy::too_many_arguments)]
fn run_cohort_on<B: LaneBlock>(
    eve: &Eve<'_>,
    ws: &mut QueryWorkspace,
    engine: &mut MsBfsEngine<B>,
    cohort: &Cohort,
    mode: FrontierMode,
    policy: FrontierPolicy,
    deadlines: &[Option<Instant>],
    stats: &mut ThreadBatchStats,
    mut publish: impl FnMut(usize, BatchResult),
) {
    let deadline_at = |index: usize| deadlines.get(index).copied().flatten();
    let mut cohort_deadline: Option<Instant> = None;
    let mut all_bounded = true;
    for member in &cohort.members {
        match deadline_at(member.index) {
            Some(d) => cohort_deadline = Some(cohort_deadline.map_or(d, |c| c.max(d))),
            None => {
                all_bounded = false;
                break;
            }
        }
    }
    let engine_budget = match cohort_deadline.filter(|_| all_bounded) {
        Some(d) => QueryBudget::with_deadline(d),
        None => QueryBudget::unlimited(),
    };

    engine.set_mode(mode);
    engine.set_policy(policy);
    let start = Instant::now(); // spg-analyze: allow(hot-loop) — phase-boundary timer (cohort MS-BFS entry)
    let traversal = engine.run_budgeted(eve.graph(), &cohort.lanes, &engine_budget);
    stats.phase1.traversal_time += start.elapsed();
    for dir in [Direction::Forward, Direction::Backward] {
        engine
            .side_stats(dir)
            .accumulate_into(&mut stats.phase1.traversal, dir);
    }
    stats.phase1.cohorts += 1;
    stats.phase1.distinct_endpoints += cohort.lanes.len();

    if let Err(exhausted) = traversal {
        // The abort restored the engine's between-runs invariants, so the
        // workspace stays reusable; every member is past its deadline.
        let err = QueryError::from(exhausted);
        for member in &cohort.members {
            stats.errors += 1;
            publish(member.index, Err(err));
        }
        return;
    }

    let mut prev: Option<(u32, u32)> = None;
    for member in &cohort.members {
        let key = (member.lane, member.query.k);
        let budget = match deadline_at(member.index) {
            Some(d) => QueryBudget::with_deadline(d),
            None => QueryBudget::unlimited(),
        };
        let result = if prev == Some(key) {
            // Same (s, t, k) as the member just answered: the workspace
            // still holds its Phase-1a output verbatim.
            stats.phase1.distance_reuses += 1;
            eve.query_shared_reused(ws, member.query, &budget)
        } else {
            eve.query_shared(ws, member.query, engine, member.lane as usize, &budget)
        };
        // Only a member that ran to completion is guaranteed to leave its
        // own Phase-1a output behind for the next identical member; after a
        // cancellation the next member re-materialises from the engine.
        prev = if result.is_ok() { Some(key) } else { None };
        stats.phase1.phase1_shared += 1;
        match &result {
            Ok(spg) => {
                stats.answered += 1;
                stats.peak_memory.merge_max(&spg.stats().memory);
            }
            Err(_) => stats.errors += 1,
        }
        publish(member.index, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};

    fn plan_for(queries: &[Query]) -> CohortPlan {
        CohortPlan::build(
            &paper_example::figure1_graph(),
            queries,
            1,
            LaneWidth::default(),
        )
    }

    #[test]
    fn lane_width_capacities() {
        assert_eq!(LaneWidth::W64.lanes(), 64);
        assert_eq!(LaneWidth::W128.lanes(), 128);
        assert_eq!(LaneWidth::W256.lanes(), 256);
        assert_eq!(LaneWidth::default(), LaneWidth::W256);
    }

    #[test]
    fn duplicate_pairs_share_a_lane_with_the_deepest_k() {
        let plan = plan_for(&[
            Query::new(S, T, 2),
            Query::new(A, B, 3),
            Query::new(S, T, 6),
            Query::new(S, T, 4),
        ]);
        assert_eq!(plan.units.len(), 1);
        let Unit::Cohort(cohort) = &plan.units[0] else {
            panic!("expected a cohort");
        };
        assert_eq!(cohort.lanes.len(), 2, "two distinct pairs");
        assert_eq!(cohort.members.len(), 4);
        let st_members: Vec<&CohortMember> = cohort
            .members
            .iter()
            .filter(|m| m.query.source == S && m.query.target == T)
            .collect();
        assert_eq!(st_members.len(), 3);
        let st_lane = st_members[0].lane as usize;
        assert_eq!(cohort.lanes[st_lane].depth, 6, "deepest k wins");
        assert_eq!(cohort.lanes[st_lane].source, S);
        assert_eq!(cohort.lanes[st_lane].target, T);
    }

    #[test]
    fn same_source_different_target_gets_its_own_lane() {
        // Endpoint-avoidance makes (s, t1) and (s, t2) different lanes.
        let plan = plan_for(&[Query::new(S, T, 4), Query::new(S, B, 4)]);
        let Unit::Cohort(cohort) = &plan.units[0] else {
            panic!("expected a cohort");
        };
        assert_eq!(cohort.lanes.len(), 2);
    }

    #[test]
    fn invalid_and_singleton_queries_fall_back() {
        let plan = plan_for(&[
            Query::new(S, S, 3), // invalid: s == t
            Query::new(S, T, 4), // valid but alone -> singleton fallback
        ]);
        assert_eq!(plan.units.len(), 2);
        assert!(matches!(plan.units[0], Unit::Single(0)));
        assert!(matches!(plan.units[1], Unit::Single(1)));
    }

    #[test]
    fn clamp_is_applied_before_lane_depths() {
        let plan = plan_for(&[Query::new(S, T, u32::MAX), Query::new(S, T, 3)]);
        let Unit::Cohort(cohort) = &plan.units[0] else {
            panic!("expected a cohort");
        };
        // Figure 1 has 8 vertices, so u32::MAX clamps to 7.
        assert_eq!(cohort.lanes[0].depth, 7);
        // Members are (lane, k)-sorted, so the clamped query comes second.
        assert_eq!(
            cohort.members[1].query.k, 7,
            "member query records the clamp"
        );
        assert_eq!(cohort.members[0].query.k, 3);
    }

    #[test]
    fn member_cap_splits_single_pair_batches_across_workers() {
        // 40 queries over ONE pair would be a single indivisible cohort —
        // useless to 4 workers. The capped plan must produce at least two
        // units per worker, each still a shared cohort.
        let g = paper_example::figure1_graph();
        let queries: Vec<Query> = (0..40).map(|i| Query::new(S, T, 2 + (i % 5))).collect();
        let plan = CohortPlan::build(&g, &queries, 4, LaneWidth::default());
        let cohorts = plan
            .units
            .iter()
            .filter(|u| matches!(u, Unit::Cohort(_)))
            .count();
        assert!(cohorts >= 8, "4 workers need ≥ 8 units, got {cohorts}");
        let covered: usize = plan
            .units
            .iter()
            .map(|u| match u {
                Unit::Cohort(c) => c.members.len(),
                Unit::Single(_) => 1,
            })
            .sum();
        assert_eq!(covered, 40);
        // A single worker gets one big cohort (maximum dedup).
        let solo = CohortPlan::build(&g, &queries, 1, LaneWidth::default());
        assert_eq!(solo.units.len(), 1);
    }

    #[test]
    fn lane_capacity_is_width_driven() {
        let g = spg_graph::generators::gnm_random(200, 1200, 3);
        // 70 distinct pairs: (0, 1), (0, 2), ... all valid on 200 vertices.
        let queries: Vec<Query> = (0..70).map(|i| Query::new(0, i + 1, 4)).collect();
        // A 64-lane plan splits them across two cohorts.
        let plan = CohortPlan::build(&g, &queries, 1, LaneWidth::W64);
        let cohorts: Vec<&Cohort> = plan
            .units
            .iter()
            .filter_map(|u| match u {
                Unit::Cohort(c) => Some(c),
                Unit::Single(_) => None,
            })
            .collect();
        assert_eq!(cohorts.len(), 2);
        assert_eq!(cohorts[0].lanes.len(), LaneWidth::W64.lanes());
        assert_eq!(cohorts[1].lanes.len(), 6);
        let covered: usize = cohorts.iter().map(|c| c.members.len()).sum();
        assert_eq!(covered, 70);
        // The same batch planned at 256 lanes shares ONE traversal.
        let wide = CohortPlan::build(&g, &queries, 1, LaneWidth::W256);
        assert_eq!(wide.units.len(), 1);
        let Unit::Cohort(cohort) = &wide.units[0] else {
            panic!("expected one wide cohort");
        };
        assert_eq!(cohort.lanes.len(), 70);
        assert_eq!(cohort.members.len(), 70);
    }

    #[test]
    fn adversarially_interleaved_hubs_are_regrouped_by_locality() {
        // Two hub sources, 64 distinct targets each, interleaved A B A B …
        // Arrival-order packing would fill every cohort with a half-and-half
        // mix of both hubs' regions; the locality sort must regroup so each
        // 64-lane cohort is single-hub.
        let g = spg_graph::generators::gnm_random(200, 1200, 3);
        let mut queries = Vec::new();
        for i in 0..64u32 {
            queries.push(Query::new(0, 2 + i, 4));
            queries.push(Query::new(1, 66 + i, 4));
        }
        let plan = CohortPlan::build(&g, &queries, 1, LaneWidth::W64);
        let cohorts: Vec<&Cohort> = plan
            .units
            .iter()
            .filter_map(|u| match u {
                Unit::Cohort(c) => Some(c),
                Unit::Single(_) => None,
            })
            .collect();
        assert_eq!(cohorts.len(), 2);
        for cohort in &cohorts {
            assert_eq!(cohort.lanes.len(), 64, "cohorts reach full lane fill");
            let hub = cohort.lanes[0].source;
            assert!(
                cohort.lanes.iter().all(|lane| lane.source == hub),
                "every lane of a cohort shares its hub source"
            );
        }
        // Slot coverage is untouched by the reordering.
        let covered: usize = cohorts.iter().map(|c| c.members.len()).sum();
        assert_eq!(covered, 128);
    }

    #[test]
    fn disjoint_uniform_pairs_fall_back_to_singles() {
        // 20 pairwise-disjoint endpoint pairs: sharing would traverse the
        // union of 20 unrelated regions per sweep — the uniform-batch
        // regression. The cost model must dissolve the cohort.
        let g = spg_graph::generators::gnm_random(100, 600, 5);
        let queries: Vec<Query> = (0..20).map(|i| Query::new(2 * i, 2 * i + 1, 4)).collect();
        let plan = CohortPlan::build(&g, &queries, 1, LaneWidth::default());
        assert_eq!(plan.units.len(), 20);
        assert!(plan.units.iter().all(|u| matches!(u, Unit::Single(_))));
        // The same pairs with repeats (dedup) stay shared.
        let mut doubled = queries.clone();
        doubled.extend(queries.iter().copied());
        let plan = CohortPlan::build(&g, &doubled, 1, LaneWidth::default());
        assert!(
            plan.units.iter().any(|u| matches!(u, Unit::Cohort(_))),
            "repeated pairs make sharing pay"
        );
    }
}
