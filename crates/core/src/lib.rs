//! # spg-core — EVE: hop-constrained s-t simple path graph generation
//!
//! From-scratch Rust implementation of **EVE** (Essential Vertices based
//! Examination), the algorithm of *"Towards Generating Hop-constrained s-t
//! Simple Path Graphs"* (SIGMOD 2023). Given a directed graph and a query
//! `⟨s, t, k⟩`, EVE computes the subgraph `SPG_k(s, t)` containing exactly
//! the edges that lie on at least one simple path from `s` to `t` of length
//! at most `k` — without enumerating those paths.
//!
//! The pipeline has three phases (see [`Eve`]):
//!
//! 1. [`propagation`] — essential-vertex sets `EV*_l(s, ·)` / `EV*_l(·, t)`
//!    computed by level-wise propagation with forward-looking pruning;
//! 2. [`labeling`] — every edge in the search space is labeled failing /
//!    undetermined / definite, yielding the tight upper-bound graph
//!    `SPGᵘ_k(s, t)`;
//! 3. [`verification`] — each undetermined edge is confirmed or rejected by a
//!    DFS-oriented search for a witness path between a departure and an
//!    arrival vertex.
//!
//! Batch serving builds on the pipeline: [`executor`] runs query batches
//! across threads, and [`cache`] memoises answers for hot `(s, t, k)`
//! triples behind a graph-version key ([`spg_graph::VersionedGraph`]) so
//! cached runs are bit-identical to uncached ones. Streaming edge deltas
//! mutate the graph in place and invalidate only the affected cache entries
//! ([`dynamic`]).
//!
//! ```
//! use spg_core::{Eve, EveConfig, Query};
//! use spg_core::paper_example::{figure1_graph, names};
//!
//! let g = figure1_graph();
//! let eve = Eve::new(&g, EveConfig::default());
//! let spg = eve.query(Query::new(names::S, names::T, 4)).unwrap();
//! assert_eq!(spg.edge_count(), 8); // Figure 1(c)
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cohort;
mod compact;

pub mod cache;
pub mod dynamic;
pub mod eve;
pub mod evset;
pub mod executor;
pub mod failpoints;
pub mod flight;
pub mod labeling;
pub mod paper_example;
pub mod propagation;
pub mod query;
pub mod spg;
pub mod stats;
pub mod verification;
pub mod workspace;

pub use cache::{CacheOutcome, CacheStats, CachedEve, SpgCache};
pub use cohort::LaneWidth;
pub use dynamic::{apply_delta_scoped, DeltaUpdate, InvalidationScope};
pub use eve::{Eve, EveConfig, EveOutput};
pub use evset::EvSet;
pub use executor::{
    BatchExecutor, BatchOutcome, BatchResult, BatchStats, SharedPhase1Stats, ThreadBatchStats,
};
pub use flight::{FlightGroup, FlightJoiner, FlightOutcome, FlightRole, FlightStats, FlightToken};
pub use labeling::{EdgeLabel, LabelingStats, UpperBoundGraph};
pub use propagation::{Propagation, PropagationStats};
pub use query::{Query, QueryError};
pub use spg::SimplePathGraph;
pub use stats::{EveStats, MemoryEstimate, PhaseTimings};
pub use verification::{VerificationOutcome, VerificationStats};
pub use workspace::QueryWorkspace;
