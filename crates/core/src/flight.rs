//! Singleflight latches: collapse concurrent misses on one hot key.
//!
//! A result cache alone does not protect the pipeline from *concurrent*
//! misses: when N requests for the same cold `(version, s, t, k)` key arrive
//! together — the shape a fraud-ring investigation produces the moment a hot
//! account pair starts trending — each of them probes, misses, and computes
//! the identical answer before the first publish lands. [`FlightGroup`] is
//! the classic singleflight fix: the first prober of a key becomes the
//! **leader** and computes; everyone else becomes a **joiner** holding a
//! latch, and when the leader completes, the one answer fans out to every
//! joiner. N concurrent misses cost one pipeline run.
//!
//! The contract mirrors the cache's invisibility guarantee:
//!
//! * flights are keyed by `(GraphVersion, clamped Query)` — exactly the
//!   cache key, so an answer fanned out of a flight is the same answer a
//!   cache hit would have served;
//! * only *validated* queries fly, so a flight normally resolves to a
//!   successful answer (validation errors are rejected before any latch
//!   exists); a leader cancelled mid-flight (deadline, work budget) or
//!   isolated after a panic broadcasts that failure explicitly via
//!   [`FlightToken::fail`], so joiners observe [`FlightOutcome::Failed`]
//!   and can decide per error whether to surface it or retry under their
//!   own budget;
//! * a leader that unwinds or drops its token without completing marks the
//!   flight **abandoned** and wakes every joiner with
//!   [`FlightOutcome::Abandoned`]; joiners then fall back to computing for
//!   themselves. A crashed leader can therefore never wedge a waiter — the
//!   latch degrades to the pre-singleflight behaviour instead of
//!   deadlocking.
//!
//! [`crate::BatchExecutor::run_cached`] opens a fresh group per drain (which
//! is what dedups identical missed keys *within* one batch); a serving
//! frontend shares one long-lived group across all of its drains so misses
//! coalesce *across* concurrent batches too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use spg_graph::hash::FxHashMap;
use spg_graph::GraphVersion;

use crate::query::{Query, QueryError};
use crate::spg::SimplePathGraph;

/// Flight key: one graph snapshot plus one clamped query — identical to the
/// result cache's key space.
type FlightKey = (GraphVersion, Query);

/// Latch state of one in-flight computation.
#[derive(Debug)]
enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader published this answer; joiners clone it.
    Done(Arc<SimplePathGraph>),
    /// The leader's computation failed (cancelled or isolated after a
    /// panic); joiners receive the error.
    Failed(QueryError),
    /// The leader dropped its token without completing (panic or early
    /// return); joiners must compute for themselves.
    Abandoned,
}

/// What a joiner observes once its flight resolves.
#[derive(Debug, Clone)]
pub enum FlightOutcome {
    /// The leader's answer; clone it.
    Done(Arc<SimplePathGraph>),
    /// The leader failed with this error. [`QueryError::ExecutionPanicked`]
    /// should be taken as-is (a deterministic recompute would panic again);
    /// budget errors reflect the *leader's* budget — a joiner with a more
    /// generous one may recompute for itself.
    Failed(QueryError),
    /// The leader vanished without resolving; compute for yourself.
    Abandoned,
}

/// One in-flight computation: a state cell plus the condvar its joiners
/// park on.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    arrived: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            arrived: Condvar::new(),
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock().expect("flight state") = state; // lock: flight.state
        self.arrived.notify_all();
    }
}

/// Monotone counters of one [`FlightGroup`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Flights led (one per distinct concurrently-missed key).
    pub led: u64,
    /// Misses that joined an existing flight instead of computing — the
    /// collapsed duplicates.
    pub joined: u64,
    /// Flights whose leader dropped its token without completing; their
    /// joiners recomputed individually.
    pub abandoned: u64,
    /// Flights whose leader broadcast an explicit failure
    /// ([`FlightToken::fail`]): cancellation or per-slot panic isolation.
    pub failed: u64,
}

impl FlightStats {
    /// Fraction of coalescable lookups (`led + joined`) that were collapsed
    /// onto a leader (`None` before any flight).
    pub fn collapse_rate(&self) -> Option<f64> {
        let total = self.led + self.joined;
        if total == 0 {
            None
        } else {
            Some(self.joined as f64 / total as f64)
        }
    }
}

/// Registry of in-flight computations keyed by `(version, clamped query)`
/// (see the module docs for the leader/joiner contract).
///
/// ```
/// use spg_core::flight::{FlightGroup, FlightRole};
/// use spg_core::Query;
///
/// let flights = FlightGroup::new();
/// let q = Query::new(0, 1, 4);
/// let leader = match flights.join_or_lead(7, q) {
///     FlightRole::Leader(token) => token,
///     FlightRole::Joiner(_) => unreachable!("first prober always leads"),
/// };
/// // A second prober of the same key joins instead of computing.
/// assert!(matches!(flights.join_or_lead(7, q), FlightRole::Joiner(_)));
/// drop(leader); // abandoned: the joiner above would now recompute
/// assert_eq!(flights.stats().abandoned, 1);
/// ```
#[derive(Debug, Default)]
pub struct FlightGroup {
    flights: Mutex<FxHashMap<FlightKey, Arc<Flight>>>,
    led: AtomicU64,
    joined: AtomicU64,
    abandoned: AtomicU64,
    failed: AtomicU64,
}

// Shared across connection handlers and batch workers by design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FlightGroup>();
};

impl FlightGroup {
    /// Creates an empty group.
    pub fn new() -> Self {
        FlightGroup::default()
    }

    /// Registers interest in `query` (which must already be validated and
    /// clamped) on snapshot `version`: the first caller per key becomes the
    /// [`FlightRole::Leader`] and must complete (or drop) its token; every
    /// concurrent caller becomes a [`FlightRole::Joiner`] holding a latch.
    pub fn join_or_lead(&self, version: GraphVersion, query: Query) -> FlightRole<'_> {
        let key = (version, query);
        let mut flights = self.flights.lock().expect("flight registry"); // lock: flight.registry
        if let Some(flight) = flights.get(&key) {
            self.joined.fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per flight join
            return FlightRole::Joiner(FlightJoiner {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&flight));
        self.led.fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per flight claim
        FlightRole::Leader(FlightToken {
            group: self,
            key,
            flight,
            completed: false,
        })
    }

    /// Removes `key` from the registry iff it still maps to `flight`
    /// (an abandoned key may have been re-led by a new leader since).
    fn retire(&self, key: &FlightKey, flight: &Arc<Flight>) {
        let mut flights = self.flights.lock().expect("flight registry"); // lock: flight.registry
        if let Some(current) = flights.get(key) {
            if Arc::ptr_eq(current, flight) {
                flights.remove(key);
            }
        }
    }

    /// Flights currently pending (leaders that have neither completed nor
    /// abandoned).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight registry").len() // lock: flight.registry
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            led: self.led.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of [`FlightGroup::join_or_lead`].
#[derive(Debug)]
pub enum FlightRole<'g> {
    /// This caller computes; it must call [`FlightToken::complete`] (or drop
    /// the token to abandon the flight).
    Leader(FlightToken<'g>),
    /// Another caller is computing the same key; wait on the latch.
    Joiner(FlightJoiner),
}

/// Leader-side handle of one flight. Completing publishes the answer to
/// every joiner; dropping without completing abandons the flight (joiners
/// wake with `None` and recompute).
#[derive(Debug)]
pub struct FlightToken<'g> {
    group: &'g FlightGroup,
    key: FlightKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightToken<'_> {
    /// Publishes `answer` to every joiner and retires the flight. The caller
    /// should insert the answer into the result cache *before* completing,
    /// so a prober that finds the flight already gone hits the cache
    /// instead of leading a redundant recompute.
    pub fn complete(mut self, answer: Arc<SimplePathGraph>) {
        self.completed = true;
        self.group.retire(&self.key, &self.flight);
        self.flight.resolve(FlightState::Done(answer));
    }

    /// Broadcasts `err` to every joiner and retires the flight. Use this
    /// when the leader's computation was cancelled (deadline / work budget)
    /// or isolated after a panic, so joiners learn *why* the flight died
    /// instead of silently recomputing.
    pub fn fail(mut self, err: QueryError) {
        self.completed = true;
        self.group.failed.fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per failed flight
        self.group.retire(&self.key, &self.flight);
        self.flight.resolve(FlightState::Failed(err));
    }
}

impl Drop for FlightToken<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.group.abandoned.fetch_add(1, Ordering::Relaxed); // spg-analyze: allow(hot-loop) — one bump per abandoned flight
            self.group.retire(&self.key, &self.flight);
            self.flight.resolve(FlightState::Abandoned);
        }
    }
}

/// Joiner-side latch of one flight.
#[derive(Debug)]
pub struct FlightJoiner {
    flight: Arc<Flight>,
}

impl FlightJoiner {
    /// Blocks until the leader resolves the flight: completion, explicit
    /// failure, or abandonment. The latch can never block forever — every
    /// leader path resolves it, including panics (the token's `Drop` runs
    /// during unwinding and broadcasts [`FlightOutcome::Abandoned`]).
    pub fn wait(self) -> FlightOutcome {
        let mut state = self.flight.state.lock().expect("flight state"); // lock: flight.state
        loop {
            match &*state {
                FlightState::Done(answer) => return FlightOutcome::Done(Arc::clone(answer)),
                FlightState::Failed(err) => return FlightOutcome::Failed(*err),
                FlightState::Abandoned => return FlightOutcome::Abandoned,
                FlightState::Pending => {
                    // lock: flight.state
                    state = self.flight.arrived.wait(state).expect("flight state");
                }
            }
        }
    }

    /// Non-blocking probe: `Some(outcome)` once resolved, `None` while the
    /// leader is still computing.
    pub fn try_wait(&self) -> Option<FlightOutcome> {
        let state = self.flight.state.lock().expect("flight state"); // lock: flight.state
        match &*state {
            FlightState::Done(answer) => Some(FlightOutcome::Done(Arc::clone(answer))),
            FlightState::Failed(err) => Some(FlightOutcome::Failed(*err)),
            FlightState::Abandoned => Some(FlightOutcome::Abandoned),
            FlightState::Pending => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{figure1_graph, names};
    use crate::Eve;
    use std::thread;

    fn answer() -> Arc<SimplePathGraph> {
        let g = figure1_graph();
        Arc::new(
            Eve::with_defaults(&g)
                .query(Query::new(names::S, names::T, 4))
                .unwrap(),
        )
    }

    #[test]
    fn leader_then_joiners_fan_out() {
        let group = FlightGroup::new();
        let q = Query::new(0, 1, 3);
        let token = match group.join_or_lead(1, q) {
            FlightRole::Leader(t) => t,
            FlightRole::Joiner(_) => panic!("first prober must lead"),
        };
        assert_eq!(group.in_flight(), 1);
        let joiners: Vec<FlightJoiner> = (0..4)
            .map(|_| match group.join_or_lead(1, q) {
                FlightRole::Joiner(j) => j,
                FlightRole::Leader(_) => panic!("concurrent probers must join"),
            })
            .collect();
        let spg = answer();
        token.complete(Arc::clone(&spg));
        assert_eq!(group.in_flight(), 0, "completion retires the flight");
        for joiner in joiners {
            let FlightOutcome::Done(got) = joiner.wait() else {
                panic!("leader completed");
            };
            assert_eq!(got.edges(), spg.edges());
        }
        let stats = group.stats();
        assert_eq!((stats.led, stats.joined, stats.abandoned), (1, 4, 0));
        assert_eq!(stats.collapse_rate(), Some(0.8));
    }

    #[test]
    fn failed_leader_broadcasts_the_error() {
        let group = FlightGroup::new();
        let q = Query::new(0, 1, 3);
        let token = match group.join_or_lead(1, q) {
            FlightRole::Leader(t) => t,
            _ => unreachable!(),
        };
        let joiners: Vec<FlightJoiner> = (0..3)
            .map(|_| match group.join_or_lead(1, q) {
                FlightRole::Joiner(j) => j,
                _ => unreachable!(),
            })
            .collect();
        token.fail(QueryError::DeadlineExceeded);
        assert_eq!(group.in_flight(), 0, "failure retires the flight");
        for joiner in joiners {
            let FlightOutcome::Failed(err) = joiner.wait() else {
                panic!("failure must be observable");
            };
            assert_eq!(err, QueryError::DeadlineExceeded);
        }
        let stats = group.stats();
        assert_eq!((stats.failed, stats.abandoned), (1, 0));
        // The key is free again for a fresh leader.
        assert!(matches!(group.join_or_lead(1, q), FlightRole::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let group = FlightGroup::new();
        let a = group.join_or_lead(1, Query::new(0, 1, 3));
        let b = group.join_or_lead(1, Query::new(0, 1, 4)); // different k
        let c = group.join_or_lead(2, Query::new(0, 1, 3)); // different version
        assert!(matches!(a, FlightRole::Leader(_)));
        assert!(matches!(b, FlightRole::Leader(_)));
        assert!(matches!(c, FlightRole::Leader(_)));
        assert_eq!(group.in_flight(), 3);
    }

    #[test]
    fn abandoned_leader_wakes_joiners_with_none() {
        let group = FlightGroup::new();
        let q = Query::new(0, 1, 3);
        let token = match group.join_or_lead(1, q) {
            FlightRole::Leader(t) => t,
            _ => unreachable!(),
        };
        let joiner = match group.join_or_lead(1, q) {
            FlightRole::Joiner(j) => j,
            _ => unreachable!(),
        };
        assert!(joiner.try_wait().is_none(), "pending");
        drop(token);
        assert!(
            matches!(joiner.wait(), FlightOutcome::Abandoned),
            "abandonment is observable"
        );
        assert_eq!(group.in_flight(), 0);
        assert_eq!(group.stats().abandoned, 1);
        // The key is free again: the next prober leads a fresh flight.
        assert!(matches!(group.join_or_lead(1, q), FlightRole::Leader(_)));
    }

    #[test]
    fn cross_thread_fan_out() {
        let group = FlightGroup::new();
        let q = Query::new(0, 1, 3);
        let token = match group.join_or_lead(9, q) {
            FlightRole::Leader(t) => t,
            _ => unreachable!(),
        };
        let spg = answer();
        let expected = spg.edges().to_vec();
        thread::scope(|scope| {
            let waiters: Vec<_> = (0..8)
                .map(|_| {
                    let joiner = match group.join_or_lead(9, q) {
                        FlightRole::Joiner(j) => j,
                        _ => unreachable!("leader is live"),
                    };
                    let expected = &expected;
                    scope.spawn(move || {
                        let FlightOutcome::Done(got) = joiner.wait() else {
                            panic!("completed");
                        };
                        assert_eq!(got.edges(), expected.as_slice());
                    })
                })
                .collect();
            token.complete(spg);
            for w in waiters {
                w.join().expect("waiter panicked");
            }
        });
        let stats = group.stats();
        assert_eq!((stats.led, stats.joined), (1, 8));
    }
}
