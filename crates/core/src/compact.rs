//! Flat, allocation-free re-implementation of the EVE phases on the
//! compacted [`SearchSpace`].
//!
//! This module is the hot path behind [`crate::Eve::query_with`]. It mirrors
//! the reference implementations ([`crate::propagation`], [`crate::labeling`],
//! [`crate::verification`]) phase by phase but replaces every per-query hash
//! map with flat `Vec`s indexed by dense local vertex id:
//!
//! * [`FlatPropagation`] — Algorithm 1 over per-level rows of arena handles.
//!   Level `l` inherits level `l−1` by a row copy, so `ev(l, v)` is a single
//!   O(1) array load instead of a descending-level hash-map scan. Essential
//!   vertex sets live in one bump arena (`Vec<u32>`), referenced by packed
//!   `(offset, len)` handles — no per-set heap allocation, no clone traffic.
//! * [`FlatUpperBound`] — Algorithm 2 over the space CSR, emitting the
//!   `SPGᵘ_k` edges in sorted order with a local CSR of both directions in
//!   which every adjacency entry carries its dense edge id.
//! * [`apply_search_ordering_flat`] / [`verify_flat`] — §5.3 ordering and
//!   Algorithm 3 over the flat adjacency, with the verification result kept
//!   as a bitmap over dense edge ids (the covered-by-witness test becomes a
//!   single bit probe).
//!
//! Every container is a reusable buffer owned by
//! [`crate::workspace::QueryWorkspace`]; after warm-up a query performs
//! (amortised) zero heap allocation in these phases. Determinism matches the
//! reference implementation exactly — local ids are assigned in ascending
//! global order, so iteration order, tie-breaking and therefore every output
//! edge set and work counter that the answer depends on are identical.

use spg_graph::{BudgetExhausted, Direction, QueryBudget, SearchSpace};

use crate::labeling::LabelingStats;
use crate::propagation::PropagationStats;
use crate::verification::VerificationStats;

/// DFS steps accumulated locally before each budget poll during
/// verification. Keeps the poll off the per-step hot path while bounding
/// deadline overshoot to one chunk; a fixed constant so work-limited
/// cancellation stays bit-reproducible.
const DFS_BUDGET_CHUNK: u32 = 256;

/// Sentinel for "no entry" in u32 slot maps.
const NONE32: u32 = u32::MAX;

/// Sentinel arena handle meaning "no set stored".
const NONE_REF: u64 = u64::MAX;

#[inline]
fn pack(start: usize, len: usize) -> u64 {
    ((start as u64) << 32) | len as u64
}

#[inline]
fn unpack(r: u64) -> (usize, usize) {
    ((r >> 32) as usize, (r & 0xFFFF_FFFF) as usize)
}

#[inline]
fn set_slice(arena: &[u32], r: u64) -> &[u32] {
    let (start, len) = unpack(r);
    &arena[start..start + len]
}

/// Appends `{v}` to the arena.
#[inline]
fn alloc_singleton(arena: &mut Vec<u32>, v: u32) -> u64 {
    let start = arena.len();
    arena.push(v);
    pack(start, 1)
}

/// Appends `a ∪ {extra}` to the arena (both sorted).
fn alloc_with(arena: &mut Vec<u32>, a: u64, extra: u32) -> u64 {
    let (sa, la) = unpack(a);
    let start = arena.len();
    let mut inserted = false;
    for i in 0..la {
        let x = arena[sa + i];
        if !inserted && extra < x {
            arena.push(extra);
            inserted = true;
        }
        if x == extra {
            inserted = true;
        }
        arena.push(x);
    }
    if !inserted {
        arena.push(extra);
    }
    pack(start, arena.len() - start)
}

/// Appends the fused propagation operator `a ∩ (b ∪ {extra})` to the arena —
/// the same single-pass merge as [`crate::EvSet::intersect_with_added`].
fn alloc_intersect_with_added(arena: &mut Vec<u32>, a: u64, b: u64, extra: u32) -> u64 {
    let (sa, la) = unpack(a);
    let (sb, lb) = unpack(b);
    let start = arena.len();
    let mut j = 0usize;
    let mut extra_pending = true;
    for i in 0..la {
        let x = arena[sa + i];
        while j < lb && arena[sb + j] < x {
            j += 1;
        }
        let in_b = j < lb && arena[sb + j] == x;
        let is_extra = extra_pending && x == extra;
        if in_b || is_extra {
            arena.push(x);
            if is_extra {
                extra_pending = false;
            }
        }
    }
    pack(start, arena.len() - start)
}

fn refs_equal(arena: &[u32], a: u64, b: u64) -> bool {
    if a == b {
        return true;
    }
    if a == NONE_REF || b == NONE_REF {
        return false;
    }
    set_slice(arena, a) == set_slice(arena, b)
}

#[inline]
fn sorted_contains(slice: &[u32], v: u32) -> bool {
    slice.binary_search(&v).is_ok()
}

fn sorted_disjoint(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Phase 1b: essential-vertex propagation on flat per-level rows
// ---------------------------------------------------------------------------

/// Essential-vertex propagation (Algorithm 1 + Theorem 3.6 pruning) over the
/// compacted search space. Reusable across queries; see the module docs.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatPropagation {
    /// Bump arena holding every stored set as a sorted `u32` run.
    arena: Vec<u32>,
    /// `(top_level + 1)` rows of `row` packed handles; row `l` holds
    /// `EV_l(·)` for every local vertex (inherited entries included).
    refs: Vec<u64>,
    row: usize,
    top_level: u32,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    /// Per-vertex level stamp marking "already updated at the current level".
    touched: Vec<u32>,
    stats: PropagationStats,
}

impl FlatPropagation {
    /// Runs one propagation direction over `space`, reusing all buffers.
    ///
    /// Forward propagation starts at the source and prunes on `Δ(y, t)`;
    /// backward propagation starts at the target and prunes on `Δ(s, y)`.
    /// Restricting the walk to the space CSR is itself a (structural) form of
    /// the Theorem 3.6 rule, so the sets any downstream consumer is allowed
    /// to consult are identical to the reference implementation's.
    #[cfg(test)]
    pub(crate) fn run(&mut self, space: &SearchSpace, dir: Direction, forward_looking: bool) {
        self.run_budgeted(space, dir, forward_looking, &QueryBudget::unlimited())
            .expect("an unlimited budget never trips")
    }

    /// [`FlatPropagation::run`] polling `budget` at every level boundary
    /// (charging the level's edge scans). On `Err` the rows built so far are
    /// torn down, so an aborted run can never be consulted and the instance
    /// is immediately reusable — every run starts by clearing all state.
    pub(crate) fn run_budgeted(
        &mut self,
        space: &SearchSpace,
        dir: Direction,
        forward_looking: bool,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        let k = space.hop_constraint();
        self.arena.clear();
        self.refs.clear();
        self.stats = PropagationStats::default();
        self.top_level = 0;
        self.row = space.vertex_count();
        let row = self.row;
        if row == 0 {
            return Ok(());
        }
        let (origin, excluded) = match dir {
            Direction::Forward => (space.source_local(), space.target_local()),
            Direction::Backward => (space.target_local(), space.source_local()),
        };

        self.refs.resize(row, NONE_REF);
        let seed = alloc_singleton(&mut self.arena, origin);
        self.refs[origin as usize] = seed;
        self.stats.sets_stored = 1;

        self.touched.clear();
        self.touched.resize(row, 0);
        self.frontier.clear();
        self.frontier.push(origin);

        let mut charged_scans = 0usize;
        let mut outcome = Ok(());
        for l in 1..k {
            if self.frontier.is_empty() {
                break;
            }
            if let Err(e) = budget.charge((self.stats.edge_scans - charged_scans) as u64) {
                outcome = Err(e);
                break;
            }
            charged_scans = self.stats.edge_scans;
            self.stats.levels_run = l;
            self.top_level = l;
            // Row `l` starts as a copy of row `l−1`: unchanged vertices
            // inherit their previous set (Algorithm 1 line 12), which is what
            // makes `ev` a single array load.
            let prev_base = (l as usize - 1) * row;
            let cur_base = l as usize * row;
            self.refs.resize(cur_base + row, NONE_REF);
            self.refs.copy_within(prev_base..prev_base + row, cur_base);

            self.next_frontier.clear();
            for fi in 0..self.frontier.len() {
                let x = self.frontier[fi];
                let ev_x = self.refs[prev_base + x as usize];
                debug_assert!(ev_x != NONE_REF, "frontier vertex must have a set");
                for &y in space.neighbors(x, dir) {
                    self.stats.edge_scans += 1;
                    if y == origin || y == excluded {
                        continue;
                    }
                    if forward_looking && l + space.remaining_dist(y, dir) > k {
                        self.stats.pruned_visits += 1;
                        continue;
                    }
                    let slot = cur_base + y as usize;
                    if self.touched[y as usize] != l {
                        self.touched[y as usize] = l;
                        self.next_frontier.push(y);
                        let prev_y = self.refs[prev_base + y as usize];
                        self.refs[slot] = if prev_y != NONE_REF {
                            // Seed with the previous-level set of `y` itself
                            // (see the deviation note in `propagation`).
                            alloc_intersect_with_added(&mut self.arena, prev_y, ev_x, y)
                        } else {
                            alloc_with(&mut self.arena, ev_x, y)
                        };
                    } else {
                        let cur = self.refs[slot];
                        self.refs[slot] = alloc_intersect_with_added(&mut self.arena, cur, ev_x, y);
                    }
                }
            }
            for &y in &self.next_frontier {
                let cur = self.refs[cur_base + y as usize];
                let prev = self.refs[prev_base + y as usize];
                if !refs_equal(&self.arena, cur, prev) {
                    self.stats.sets_stored += 1;
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
        }
        if outcome.is_ok() {
            outcome = budget.charge((self.stats.edge_scans - charged_scans) as u64);
        }
        if outcome.is_err() {
            // Tear down the partial rows: `ev` on an aborted run answers
            // `None` for everything instead of serving truncated sets.
            self.arena.clear();
            self.refs.clear();
            self.top_level = 0;
            self.row = 0;
        }
        outcome
    }

    /// `EV_l(origin, v)` as a sorted local-id slice, or `None` if `v` was
    /// never reached by level `l`. O(1).
    #[inline]
    pub(crate) fn ev(&self, l: u32, v: u32) -> Option<&[u32]> {
        if self.row == 0 {
            return None;
        }
        let l = l.min(self.top_level);
        let r = self.refs[l as usize * self.row + v as usize];
        if r == NONE_REF {
            None
        } else {
            Some(set_slice(&self.arena, r))
        }
    }

    /// Work counters of the last run.
    pub(crate) fn stats(&self) -> PropagationStats {
        self.stats
    }

    /// Live bytes of the last run (arena payload + level rows).
    pub(crate) fn memory_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<u32>() + self.refs.len() * std::mem::size_of::<u64>()
    }

    /// Bytes of capacity retained for reuse across queries.
    pub(crate) fn retained_bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<u32>()
            + self.refs.capacity() * std::mem::size_of::<u64>()
            + (self.frontier.capacity() + self.next_frontier.capacity() + self.touched.capacity())
                * std::mem::size_of::<u32>()
    }
}

// ---------------------------------------------------------------------------
// Phase 2: edge labeling / upper-bound graph on the space CSR
// ---------------------------------------------------------------------------

/// Outcome of labeling one edge (flat-pipeline mirror of
/// [`crate::labeling::EdgeLabel`] plus departure/arrival qualification).
enum FlatLabel {
    Failing,
    Undetermined,
    Definite { departure: bool, arrival: bool },
}

/// Per-edge Algorithm 2 on local ids; mirrors `labeling::EdgeLabeler::label`.
fn label_edge(
    space: &SearchSpace,
    fwd: &FlatPropagation,
    bwd: &FlatPropagation,
    u: u32,
    v: u32,
) -> FlatLabel {
    let k = space.hop_constraint();
    let s = space.source_local();
    let t = space.target_local();

    // Edges entering s or leaving t can never lie on a simple s-t path.
    if v == s || u == t {
        return FlatLabel::Failing;
    }
    // First-hop edges (Lemma 4.4).
    if u == s {
        return if space.dist_to_t(v) < k {
            FlatLabel::Definite {
                departure: false,
                arrival: false,
            }
        } else {
            FlatLabel::Failing
        };
    }
    if v == t {
        return if space.dist_from_s(u) < k {
            FlatLabel::Definite {
                departure: false,
                arrival: false,
            }
        } else {
            FlatLabel::Failing
        };
    }

    // Second-hop edges (Lemma 4.6), evaluating both sides so an edge
    // qualifying as both records departure and arrival information.
    let mut definite = false;
    let mut departure = false;
    let mut arrival = false;
    if k >= 2 {
        if space.dist_from_s(u) <= 1 && space.dist_to_t(v) <= k - 2 {
            let ev_vt = bwd
                .ev(k - 2, v)
                .expect("EV(v,t) must be materialised when it exists"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
            if !sorted_contains(ev_vt, u) {
                definite = true;
                departure = true;
            }
        }
        if space.dist_to_t(v) <= 1 && space.dist_from_s(u) <= k - 2 {
            let ev_su = fwd
                .ev(k - 2, u)
                .expect("EV(s,u) must be materialised when it exists"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
            if !sorted_contains(ev_su, v) {
                definite = true;
                arrival = true;
            }
        }
    }
    if definite {
        return FlatLabel::Definite { departure, arrival };
    }

    // Remaining split points (Theorem 4.3).
    if k >= 5 {
        for kf in 2..=(k - 3) {
            let kb = k - kf - 1;
            if space.dist_from_s(u) > kf || space.dist_to_t(v) > kb {
                continue;
            }
            let ev_su = fwd
                .ev(kf, u)
                .expect("forward EV must exist for an in-space vertex"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
            let ev_vt = bwd
                .ev(kb, v)
                .expect("backward EV must exist for an in-space vertex"); // spg-analyze: allow(no-panic) — invariant stated in the message; checked by debug assertions
            if sorted_disjoint(ev_su, ev_vt) {
                return FlatLabel::Undetermined;
            }
        }
    }
    FlatLabel::Failing
}

/// The upper-bound graph `SPGᵘ_k` over local ids, with flat CSR adjacency
/// (every entry carrying its dense edge id) and stride-arena departure /
/// arrival neighbour lists. Reusable across queries.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatUpperBound {
    k: u32,
    n: usize,
    s_local: u32,
    t_local: u32,
    /// `SPGᵘ_k` edges as local `(u, v)` pairs in ascending order; the index
    /// is the dense edge id.
    edges: Vec<(u32, u32)>,
    /// Per edge id: `true` for definite (label 2), `false` for undetermined.
    is_definite: Vec<bool>,
    /// Edge ids of the undetermined edges, ascending.
    undetermined: Vec<u32>,
    out_offsets: Vec<u32>,
    /// `(target, edge id)` per out-adjacency entry.
    out_entries: Vec<(u32, u32)>,
    in_offsets: Vec<u32>,
    /// `(source, edge id)` per in-adjacency entry.
    in_entries: Vec<(u32, u32)>,
    /// Departure bookkeeping: per-vertex slot index into the stride arena.
    dep_slot: Vec<u32>,
    dep_items: Vec<u32>,
    dep_len: Vec<u32>,
    dep_verts: Vec<u32>,
    /// Arrival bookkeeping, same layout.
    arr_slot: Vec<u32>,
    arr_items: Vec<u32>,
    arr_len: Vec<u32>,
    arr_verts: Vec<u32>,
    /// `≤ k − 2` valid neighbours are retained per departure/arrival
    /// (Theorem 5.8); this is the stride of the item arenas.
    cap: usize,
    /// Degree-counting scratch for the CSR builds.
    scratch: Vec<u32>,
    stats: LabelingStats,
}

impl FlatUpperBound {
    /// Runs Algorithm 2 over every space edge and assembles the flat
    /// upper-bound graph, reusing all buffers.
    #[cfg(test)]
    pub(crate) fn build(
        &mut self,
        space: &SearchSpace,
        fwd: &FlatPropagation,
        bwd: &FlatPropagation,
    ) {
        self.build_budgeted(space, fwd, bwd, &QueryBudget::unlimited())
            .expect("an unlimited budget never trips")
    }

    /// [`FlatUpperBound::build`] polling `budget` at every vertex-row
    /// boundary (charging the row's examined edges). On `Err` the partial
    /// edge list is cleared; the instance is immediately reusable because
    /// every build starts by clearing all state.
    pub(crate) fn build_budgeted(
        &mut self,
        space: &SearchSpace,
        fwd: &FlatPropagation,
        bwd: &FlatPropagation,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        let n = space.vertex_count();
        self.k = space.hop_constraint();
        self.n = n;
        self.stats = LabelingStats::default();
        self.edges.clear();
        self.is_definite.clear();
        self.undetermined.clear();
        self.out_offsets.clear();
        self.out_entries.clear();
        self.in_offsets.clear();
        self.in_entries.clear();
        self.dep_slot.clear();
        self.dep_items.clear();
        self.dep_len.clear();
        self.dep_verts.clear();
        self.arr_slot.clear();
        self.arr_items.clear();
        self.arr_len.clear();
        self.arr_verts.clear();
        if n == 0 {
            self.s_local = NONE32;
            self.t_local = NONE32;
            self.out_offsets.push(0);
            self.in_offsets.push(0);
            return Ok(());
        }
        self.s_local = space.source_local();
        self.t_local = space.target_local();
        self.cap = (self.k.saturating_sub(2)).max(1) as usize;
        self.dep_slot.resize(n, NONE32);
        self.arr_slot.resize(n, NONE32);

        // Space vertices are iterated in ascending local (== global) order,
        // so the edge list comes out sorted exactly like the reference.
        let mut charged_edges = 0usize;
        for u in 0..n as u32 {
            if let Err(e) = budget.charge((self.stats.edges_examined - charged_edges) as u64) {
                // Drop the partial edge list so an aborted build cannot be
                // mistaken for an upper-bound graph.
                self.edges.clear();
                self.is_definite.clear();
                self.undetermined.clear();
                self.out_offsets.push(0);
                self.in_offsets.push(0);
                self.n = 0;
                return Err(e);
            }
            charged_edges = self.stats.edges_examined;
            for &v in space.out_neighbors(u) {
                self.stats.edges_examined += 1;
                match label_edge(space, fwd, bwd, u, v) {
                    FlatLabel::Failing => self.stats.failing += 1,
                    FlatLabel::Undetermined => {
                        self.stats.undetermined += 1;
                        let eid = self.edges.len() as u32;
                        self.edges.push((u, v));
                        self.is_definite.push(false);
                        self.undetermined.push(eid);
                    }
                    FlatLabel::Definite { departure, arrival } => {
                        self.stats.definite += 1;
                        self.edges.push((u, v));
                        self.is_definite.push(true);
                        if departure {
                            Self::push_capped(
                                &mut self.dep_slot,
                                &mut self.dep_items,
                                &mut self.dep_len,
                                &mut self.dep_verts,
                                self.cap,
                                v,
                                u,
                            );
                        }
                        if arrival {
                            Self::push_capped(
                                &mut self.arr_slot,
                                &mut self.arr_items,
                                &mut self.arr_len,
                                &mut self.arr_verts,
                                self.cap,
                                u,
                                v,
                            );
                        }
                    }
                }
            }
        }
        budget
            .charge((self.stats.edges_examined - charged_edges) as u64)
            .map_err(|e| {
                self.edges.clear();
                self.is_definite.clear();
                self.undetermined.clear();
                self.out_offsets.push(0);
                self.in_offsets.push(0);
                self.n = 0;
                e
            })?;
        self.build_adjacency();
        Ok(())
    }

    /// Records `item` as a valid neighbour of `vertex`, allocating the
    /// vertex's stride slot on first touch and respecting the `cap` bound.
    fn push_capped(
        slot_map: &mut [u32],
        items: &mut Vec<u32>,
        lens: &mut Vec<u32>,
        verts: &mut Vec<u32>,
        cap: usize,
        vertex: u32,
        item: u32,
    ) {
        let mut slot = slot_map[vertex as usize];
        if slot == NONE32 {
            slot = lens.len() as u32;
            slot_map[vertex as usize] = slot;
            lens.push(0);
            items.resize(items.len() + cap, 0);
            verts.push(vertex);
        }
        let len = lens[slot as usize] as usize;
        let base = slot as usize * cap;
        if len < cap && !items[base..base + len].contains(&item) {
            items[base + len] = item;
            lens[slot as usize] += 1;
        }
    }

    /// Builds both CSR directions from the sorted edge list.
    fn build_adjacency(&mut self) {
        let n = self.n;
        let m = self.edges.len();
        // Out: the edge list is already grouped by `u` in ascending order.
        self.scratch.clear();
        self.scratch.resize(n + 1, 0);
        for &(u, _) in &self.edges {
            self.scratch[u as usize + 1] += 1;
        }
        self.out_offsets.reserve(n + 1);
        let mut acc = 0u32;
        for d in self.scratch.iter() {
            acc += d;
            self.out_offsets.push(acc);
        }
        self.out_entries.reserve(m);
        for (eid, &(_, v)) in self.edges.iter().enumerate() {
            self.out_entries.push((v, eid as u32));
        }
        // In: count, prefix-sum, scatter (per-vertex sources stay ascending
        // because edge ids are scanned in ascending (u, v) order).
        self.scratch.clear();
        self.scratch.resize(n + 1, 0);
        for &(_, v) in &self.edges {
            self.scratch[v as usize + 1] += 1;
        }
        self.in_offsets.reserve(n + 1);
        let mut acc = 0u32;
        for d in self.scratch.iter() {
            acc += d;
            self.in_offsets.push(acc);
        }
        self.in_entries.resize(m, (0, 0));
        // Reuse the scratch as per-vertex write cursors.
        self.scratch.truncate(n);
        self.scratch.copy_from_slice(&self.in_offsets[..n]);
        for (eid, &(u, v)) in self.edges.iter().enumerate() {
            let pos = self.scratch[v as usize] as usize;
            self.in_entries[pos] = (u, eid as u32);
            self.scratch[v as usize] += 1;
        }
    }

    /// Number of local vertices the adjacency covers.
    #[inline]
    pub(crate) fn vertex_count(&self) -> usize {
        self.n
    }

    /// Hop constraint of the query.
    #[inline]
    pub(crate) fn hop_constraint(&self) -> u32 {
        self.k
    }

    /// Local id of the query source.
    #[inline]
    pub(crate) fn source_local(&self) -> u32 {
        self.s_local
    }

    /// Local id of the query target.
    #[inline]
    pub(crate) fn target_local(&self) -> u32 {
        self.t_local
    }

    /// Number of `SPGᵘ_k` edges.
    #[inline]
    pub(crate) fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The `SPGᵘ_k` edges as local pairs, ascending; index = edge id.
    #[inline]
    pub(crate) fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Per-edge definite flags (the initial verification result bitmap).
    #[inline]
    pub(crate) fn definite_bits(&self) -> &[bool] {
        &self.is_definite
    }

    /// Edge ids of the undetermined edges, ascending.
    #[inline]
    pub(crate) fn undetermined_eids(&self) -> &[u32] {
        &self.undetermined
    }

    /// Out-adjacency entries `(target, edge id)` of local vertex `v`.
    #[inline]
    pub(crate) fn out_entries_of(&self, v: u32) -> &[(u32, u32)] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_entries[lo..hi]
    }

    /// In-adjacency entries `(source, edge id)` of local vertex `v`.
    #[inline]
    pub(crate) fn in_entries_of(&self, v: u32) -> &[(u32, u32)] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_entries[lo..hi]
    }

    /// `true` if `v` is a departure vertex.
    #[inline]
    pub(crate) fn is_departure(&self, v: u32) -> bool {
        self.dep_slot[v as usize] != NONE32
    }

    /// `true` if `v` is an arrival vertex.
    #[inline]
    pub(crate) fn is_arrival(&self, v: u32) -> bool {
        self.arr_slot[v as usize] != NONE32
    }

    /// Valid in-neighbours `In_D(v)` of a departure (≤ k−2 entries).
    #[inline]
    pub(crate) fn in_d(&self, v: u32) -> &[u32] {
        let slot = self.dep_slot[v as usize];
        if slot == NONE32 {
            return &[];
        }
        let base = slot as usize * self.cap;
        &self.dep_items[base..base + self.dep_len[slot as usize] as usize]
    }

    /// Valid out-neighbours `Out_A(v)` of an arrival (≤ k−2 entries).
    #[inline]
    pub(crate) fn out_a(&self, v: u32) -> &[u32] {
        let slot = self.arr_slot[v as usize];
        if slot == NONE32 {
            return &[];
        }
        let base = slot as usize * self.cap;
        &self.arr_items[base..base + self.arr_len[slot as usize] as usize]
    }

    /// The departure vertex set `D` (discovery order).
    #[inline]
    pub(crate) fn departure_verts(&self) -> &[u32] {
        &self.dep_verts
    }

    /// The arrival vertex set `A` (discovery order).
    #[inline]
    pub(crate) fn arrival_verts(&self) -> &[u32] {
        &self.arr_verts
    }

    /// Labeling counters.
    pub(crate) fn stats(&self) -> LabelingStats {
        self.stats
    }

    /// Live bytes of the last build.
    pub(crate) fn memory_bytes(&self) -> usize {
        let w = std::mem::size_of::<u32>();
        self.edges.len() * std::mem::size_of::<(u32, u32)>()
            + self.is_definite.len()
            + (self.undetermined.len()
                + self.out_offsets.len()
                + self.in_offsets.len()
                + self.dep_slot.len()
                + self.arr_slot.len()
                + self.dep_items.len()
                + self.arr_items.len()
                + self.dep_len.len()
                + self.arr_len.len()
                + self.dep_verts.len()
                + self.arr_verts.len())
                * w
            + (self.out_entries.len() + self.in_entries.len()) * std::mem::size_of::<(u32, u32)>()
    }

    /// Bytes of capacity retained for reuse across queries.
    pub(crate) fn retained_bytes(&self) -> usize {
        let w = std::mem::size_of::<u32>();
        self.edges.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.is_definite.capacity()
            + (self.undetermined.capacity()
                + self.out_offsets.capacity()
                + self.in_offsets.capacity()
                + self.dep_slot.capacity()
                + self.arr_slot.capacity()
                + self.dep_items.capacity()
                + self.arr_items.capacity()
                + self.dep_len.capacity()
                + self.arr_len.capacity()
                + self.dep_verts.capacity()
                + self.arr_verts.capacity()
                + self.scratch.capacity())
                * w
            + (self.out_entries.capacity() + self.in_entries.capacity())
                * std::mem::size_of::<(u32, u32)>()
    }
}

// ---------------------------------------------------------------------------
// Phase 3a: §5.3 search ordering on the flat adjacency
// ---------------------------------------------------------------------------

/// Reusable buffers for [`apply_search_ordering_flat`].
#[derive(Debug, Clone, Default)]
pub(crate) struct OrderScratch {
    dist_to_arrival: Vec<u32>,
    dist_from_departure: Vec<u32>,
    queue: Vec<u32>,
}

impl OrderScratch {
    /// Bytes of capacity retained for reuse across queries.
    pub(crate) fn retained_bytes(&self) -> usize {
        (self.dist_to_arrival.capacity()
            + self.dist_from_departure.capacity()
            + self.queue.capacity())
            * std::mem::size_of::<u32>()
    }
}

/// Multi-source BFS over one adjacency direction of the flat upper bound;
/// `dist` must be pre-filled with `u32::MAX`.
fn multi_source_bfs_flat<'a, F>(dist: &mut [u32], queue: &mut Vec<u32>, sources: &[u32], entries: F)
where
    F: Fn(u32) -> &'a [(u32, u32)],
{
    queue.clear();
    for &s in sources {
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            queue.push(s);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        for &(v, _) in entries(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
        }
    }
}

/// Applies the §5.3 search-ordering strategy to the flat adjacency lists —
/// the local-id mirror of [`crate::verification::apply_search_ordering`].
/// Ties break on local id, which preserves global-id order.
pub(crate) fn apply_search_ordering_flat(ub: &mut FlatUpperBound, scratch: &mut OrderScratch) {
    let n = ub.vertex_count();
    scratch.dist_to_arrival.clear();
    scratch.dist_to_arrival.resize(n, u32::MAX);
    scratch.dist_from_departure.clear();
    scratch.dist_from_departure.resize(n, u32::MAX);
    {
        let ubr: &FlatUpperBound = ub;
        multi_source_bfs_flat(
            &mut scratch.dist_to_arrival,
            &mut scratch.queue,
            ubr.arrival_verts(),
            |v| ubr.in_entries_of(v),
        );
        multi_source_bfs_flat(
            &mut scratch.dist_from_departure,
            &mut scratch.queue,
            ubr.departure_verts(),
            |v| ubr.out_entries_of(v),
        );
    }

    let FlatUpperBound {
        out_offsets,
        out_entries,
        in_offsets,
        in_entries,
        dep_slot,
        dep_len,
        arr_slot,
        arr_len,
        ..
    } = ub;
    for w in out_offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        out_entries[lo..hi].sort_by_key(|&(v, _)| {
            let fanout = if arr_slot[v as usize] == NONE32 {
                0
            } else {
                arr_len[arr_slot[v as usize] as usize] as usize
            };
            (scratch.dist_to_arrival[v as usize], usize::MAX - fanout, v)
        });
    }
    for w in in_offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        in_entries[lo..hi].sort_by_key(|&(v, _)| {
            let fanin = if dep_slot[v as usize] == NONE32 {
                0
            } else {
                dep_len[dep_slot[v as usize] as usize] as usize
            };
            (
                scratch.dist_from_departure[v as usize],
                usize::MAX - fanin,
                v,
            )
        });
    }
}

// ---------------------------------------------------------------------------
// Phase 3b: verification on the flat adjacency
// ---------------------------------------------------------------------------

/// Reusable buffers for [`verify_flat`]. `result` doubles as the output: one
/// bit per dense edge id of the upper-bound graph.
#[derive(Debug, Clone, Default)]
pub(crate) struct VerifyScratch {
    result: Vec<bool>,
    stack_vertices: Vec<u32>,
    stack_eids: Vec<u32>,
}

impl VerifyScratch {
    /// Per-edge-id inclusion bitmap of the final `SPG_k` (valid after
    /// [`verify_flat`]).
    pub(crate) fn result(&self) -> &[bool] {
        &self.result
    }

    /// Bytes of capacity retained for reuse across queries.
    pub(crate) fn retained_bytes(&self) -> usize {
        self.result.capacity()
            + (self.stack_vertices.capacity() + self.stack_eids.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// Verifies every undetermined edge (Algorithm 3) over the flat upper bound.
/// After the call, `scratch.result()[eid]` tells whether edge `eid` belongs
/// to `SPG_k`. The local-id mirror of [`crate::verification::verify_undetermined`].
#[cfg(test)]
pub(crate) fn verify_flat(ub: &FlatUpperBound, scratch: &mut VerifyScratch) -> VerificationStats {
    verify_flat_budgeted(ub, scratch, &QueryBudget::unlimited())
        .expect("an unlimited budget never trips")
}

/// [`verify_flat`] polling `budget` before every undetermined edge and every
/// [`DFS_BUDGET_CHUNK`] DFS steps (charging one unit per step). On `Err` the
/// result bitmap is cleared so an aborted verification cannot be read as an
/// answer; every run rebuilds the bitmap from scratch, so reuse is safe.
pub(crate) fn verify_flat_budgeted(
    ub: &FlatUpperBound,
    scratch: &mut VerifyScratch,
    budget: &QueryBudget,
) -> Result<VerificationStats, BudgetExhausted> {
    scratch.result.clear();
    scratch.result.extend_from_slice(ub.definite_bits());
    let mut stats = VerificationStats::default();

    if ub.hop_constraint() >= 5 {
        let VerifyScratch {
            result,
            stack_vertices,
            stack_eids,
        } = scratch;
        stack_vertices.clear();
        stack_eids.clear();
        let mut verifier = FlatVerifier {
            ub,
            k: ub.hop_constraint(),
            result,
            stack_vertices,
            stack_eids,
            dfs_steps: 0,
            budget,
            pending_steps: 0,
        };
        let mut outcome = Ok(());
        for &eid in ub.undetermined_eids() {
            if verifier.result[eid as usize] {
                stats.covered_by_witness += 1;
                stats.confirmed += 1;
                continue;
            }
            if let Err(e) = verifier.flush_pending() {
                outcome = Err(e);
                break;
            }
            stats.searches += 1;
            let (u, v) = ub.edges()[eid as usize];
            match verifier.verify_edge(eid, u, v) {
                Ok(true) => stats.confirmed += 1,
                Ok(false) => stats.rejected += 1,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        if outcome.is_ok() {
            outcome = verifier.flush_pending();
        }
        stats.dfs_steps = verifier.dfs_steps;
        if let Err(e) = outcome {
            scratch.result.clear();
            return Err(e);
        }
    } else {
        // Theorem 4.8: k ≤ 4 means no undetermined edges can exist.
        debug_assert!(ub.undetermined_eids().is_empty());
    }
    Ok(stats)
}

struct FlatVerifier<'a> {
    ub: &'a FlatUpperBound,
    k: u32,
    result: &'a mut Vec<bool>,
    stack_vertices: &'a mut Vec<u32>,
    stack_eids: &'a mut Vec<u32>,
    dfs_steps: usize,
    budget: &'a QueryBudget,
    /// Steps taken since the last budget poll (≤ [`DFS_BUDGET_CHUNK`]).
    pending_steps: u32,
}

impl FlatVerifier<'_> {
    /// Accounts one DFS step, polling the budget every
    /// [`DFS_BUDGET_CHUNK`] steps so the poll stays off the per-step path.
    #[inline]
    fn step(&mut self) -> Result<(), BudgetExhausted> {
        self.dfs_steps += 1;
        self.pending_steps += 1;
        if self.pending_steps >= DFS_BUDGET_CHUNK {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Charges the locally accumulated steps to the budget.
    fn flush_pending(&mut self) -> Result<(), BudgetExhausted> {
        let pending = std::mem::take(&mut self.pending_steps);
        self.budget.charge(pending as u64)
    }

    /// Tries to find a witness for undetermined edge `eid = (u, v)`; if
    /// found, every edge id on the stack is switched on in the result bitmap.
    fn verify_edge(&mut self, eid: u32, u: u32, v: u32) -> Result<bool, BudgetExhausted> {
        self.stack_vertices.clear();
        self.stack_eids.clear();
        self.stack_vertices.extend_from_slice(&[
            u,
            v,
            self.ub.source_local(),
            self.ub.target_local(),
        ]);
        self.stack_eids.push(eid);
        let confirmed = self.forward(v, 1, u)?;
        if confirmed {
            debug_assert!(self.result[eid as usize]);
        }
        Ok(confirmed)
    }

    /// Grows the path forwards from `cur` towards an arrival vertex.
    fn forward(&mut self, cur: u32, len: u32, u: u32) -> Result<bool, BudgetExhausted> {
        self.step()?;
        if self.ub.is_arrival(cur) && self.backward(u, len, cur)? {
            return Ok(true);
        }
        if len < self.k - 4 {
            let ub = self.ub;
            for &(nxt, eid) in ub.out_entries_of(cur) {
                if self.stack_vertices.contains(&nxt) {
                    continue;
                }
                self.stack_vertices.push(nxt);
                self.stack_eids.push(eid);
                if self.forward(nxt, len + 1, u)? {
                    return Ok(true);
                }
                self.stack_vertices.pop();
                self.stack_eids.pop();
            }
        }
        Ok(false)
    }

    /// Grows the path backwards from `cur` towards a departure vertex.
    fn backward(&mut self, cur: u32, len: u32, arrival: u32) -> Result<bool, BudgetExhausted> {
        self.step()?;
        if self.ub.is_departure(cur) && self.try_add_edges(cur, arrival) {
            return Ok(true);
        }
        if len < self.k - 4 {
            let ub = self.ub;
            for &(nxt, eid) in ub.in_entries_of(cur) {
                if self.stack_vertices.contains(&nxt) {
                    continue;
                }
                self.stack_vertices.push(nxt);
                self.stack_eids.push(eid);
                if self.backward(nxt, len + 1, arrival)? {
                    return Ok(true);
                }
                self.stack_vertices.pop();
                self.stack_eids.pop();
            }
        }
        Ok(false)
    }

    /// Final check of Theorem 5.6 condition (2), allocation-free: count the
    /// valid neighbours not on the stack and remember the first of each side.
    fn try_add_edges(&mut self, departure: u32, arrival: u32) -> bool {
        let mut in_first = NONE32;
        let mut in_count = 0usize;
        for &x in self.ub.in_d(departure) {
            if !self.stack_vertices.contains(&x) {
                if in_count == 0 {
                    in_first = x;
                }
                in_count += 1;
            }
        }
        if in_count == 0 {
            return false;
        }
        let mut out_first = NONE32;
        let mut out_count = 0usize;
        for &y in self.ub.out_a(arrival) {
            if !self.stack_vertices.contains(&y) {
                if out_count == 0 {
                    out_first = y;
                }
                out_count += 1;
            }
        }
        if out_count == 0 {
            return false;
        }
        let pair_exists = in_count > 1 || out_count > 1 || in_first != out_first;
        if !pair_exists {
            return false;
        }
        for &eid in self.stack_eids.iter() {
            self.result[eid as usize] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{self, names::*};
    use crate::propagation::Propagation;
    use crate::query::Query;
    use spg_graph::{DiGraph, DistanceIndex, DistanceStrategy};

    fn space_for(g: &DiGraph, q: Query) -> SearchSpace {
        let idx = DistanceIndex::compute(
            g,
            q.source,
            q.target,
            q.k,
            DistanceStrategy::AdaptiveBidirectional,
        );
        SearchSpace::build(g, &idx)
    }

    /// The flat propagation must agree with the reference propagation on
    /// every set the labeling phase is allowed to consult (Theorem 3.6).
    #[test]
    fn flat_propagation_matches_reference_on_consultable_sets() {
        let g = paper_example::figure1_graph();
        for k in 2..=8u32 {
            let q = Query::new(S, T, k);
            let idx = DistanceIndex::compute(&g, S, T, k, DistanceStrategy::AdaptiveBidirectional);
            let space = SearchSpace::build(&g, &idx);
            let reference = Propagation::forward(&g, q, &idx, true);
            let mut flat = FlatPropagation::default();
            flat.run(&space, Direction::Forward, true);
            for local in 0..space.vertex_count() as u32 {
                let v = space.global(local);
                let dv = idx.dist_to_t(v);
                for l in 1..k {
                    if l + dv > k {
                        continue; // not consultable under pruning
                    }
                    let expected: Option<Vec<u32>> = reference.ev(l, v).map(|s| {
                        s.as_slice()
                            .iter()
                            .map(|&x| space.local_of(x).expect("EV members stay in space"))
                            .collect()
                    });
                    let got: Option<Vec<u32>> = flat.ev(l, local).map(|s| s.to_vec());
                    assert_eq!(got, expected, "k={k} l={l} v={v}");
                }
            }
            assert!(flat.stats().edge_scans > 0);
            assert!(flat.memory_bytes() > 0);
            assert!(flat.retained_bytes() >= flat.memory_bytes());
        }
    }

    /// Arena set operators match the EvSet reference operators.
    #[test]
    fn arena_operators_match_evset() {
        use crate::evset::EvSet;
        let cases: Vec<(Vec<u32>, Vec<u32>, u32)> = vec![
            (vec![0, 2, 5, 9], vec![2, 9], 5),
            (vec![0, 2, 5, 9], vec![], 5),
            (vec![1, 2, 3], vec![1, 2, 3], 0),
            (vec![4, 6, 8], vec![1, 3, 5], 8),
            (vec![4, 6, 8], vec![1, 3, 5], 0),
        ];
        for (a, b, extra) in cases {
            let mut arena = Vec::new();
            let ra = {
                let start = arena.len();
                arena.extend_from_slice(&a);
                pack(start, a.len())
            };
            let rb = {
                let start = arena.len();
                arena.extend_from_slice(&b);
                pack(start, b.len())
            };
            let fused = alloc_intersect_with_added(&mut arena, ra, rb, extra);
            let sa = EvSet::from_vertices(a.iter().copied());
            let sb = EvSet::from_vertices(b.iter().copied());
            let expected = sa.intersect_with_added(&sb, extra);
            assert_eq!(set_slice(&arena, fused), expected.as_slice());

            let with = alloc_with(&mut arena, ra, extra);
            assert_eq!(set_slice(&arena, with), sa.with(extra).as_slice());
        }
        let mut arena = Vec::new();
        let s = alloc_singleton(&mut arena, 7);
        assert_eq!(set_slice(&arena, s), &[7]);
        assert!(refs_equal(&arena, s, s));
        assert!(!refs_equal(&arena, s, NONE_REF));
    }

    /// End-to-end flat pipeline on the Figure 1 example must reproduce the
    /// Figure 6(c) labels and the Example 5.7 verification outcome.
    #[test]
    fn flat_pipeline_reproduces_figure_fixtures() {
        let g = paper_example::figure1_graph();
        let q = Query::new(S, T, 7);
        let space = space_for(&g, q);
        let mut fwd = FlatPropagation::default();
        let mut bwd = FlatPropagation::default();
        fwd.run(&space, Direction::Forward, true);
        bwd.run(&space, Direction::Backward, true);
        let mut ub = FlatUpperBound::default();
        ub.build(&space, &fwd, &bwd);

        assert_eq!(ub.stats().edges_examined, 13);
        assert_eq!(ub.stats().failing, 1);
        assert_eq!(ub.edge_count(), 12);

        let global_edges: Vec<(u32, u32)> = ub
            .edges()
            .iter()
            .map(|&(u, v)| (space.global(u), space.global(v)))
            .collect();
        let mut expected: Vec<(u32, u32)> = vec![
            (S, A),
            (S, C),
            (A, C),
            (A, H),
            (A, I),
            (C, T),
            (C, B),
            (H, B),
            (B, T),
            (B, A),
            (I, J),
            (J, H),
        ];
        expected.sort_unstable();
        assert_eq!(global_edges, expected);

        let mut scratch = VerifyScratch::default();
        let stats = verify_flat(&ub, &mut scratch);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.confirmed, 2);
        let confirmed: Vec<(u32, u32)> = ub
            .edges()
            .iter()
            .zip(scratch.result())
            .filter(|(_, &keep)| keep)
            .map(|(&(u, v), _)| (space.global(u), space.global(v)))
            .collect();
        assert_eq!(confirmed.len(), 11);
        assert!(!confirmed.contains(&(B, A)));
        assert!(confirmed.contains(&(I, J)));
        assert!(confirmed.contains(&(J, H)));
    }

    /// Search ordering must not change the flat verification answer.
    #[test]
    fn flat_ordering_is_answer_preserving() {
        let g = paper_example::figure1_graph();
        for k in 5..=8u32 {
            let q = Query::new(S, T, k);
            let space = space_for(&g, q);
            let mut fwd = FlatPropagation::default();
            let mut bwd = FlatPropagation::default();
            fwd.run(&space, Direction::Forward, true);
            bwd.run(&space, Direction::Backward, true);
            let mut ub = FlatUpperBound::default();
            ub.build(&space, &fwd, &bwd);
            let mut scratch = VerifyScratch::default();
            verify_flat(&ub, &mut scratch);
            let plain = scratch.result().to_vec();

            let mut order = OrderScratch::default();
            apply_search_ordering_flat(&mut ub, &mut order);
            verify_flat(&ub, &mut scratch);
            assert_eq!(scratch.result(), plain.as_slice(), "k={k}");
            assert!(order.retained_bytes() > 0);
        }
    }
}
