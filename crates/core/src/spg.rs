//! The answer type: a k-hop-constrained s-t simple path graph.

use std::sync::Arc;

use spg_graph::hash::FxHashSet;
use spg_graph::{DiGraph, EdgeSubgraph, VertexId};

use crate::query::Query;
use crate::stats::EveStats;

/// The `k`-hop-constrained s-t simple path graph `SPG_k(s, t)`
/// (Definition 2.1): every edge lies on at least one simple path from `s` to
/// `t` of length at most `k`, and every such path's edges are present.
///
/// Produced by [`crate::Eve::query`]; carries the per-phase statistics
/// ([`EveStats`]) recorded while answering the query.
#[derive(Debug, Clone)]
pub struct SimplePathGraph {
    query: Query,
    edges: EdgeSubgraph,
    stats: EveStats,
    /// Invalidation witness: the sorted vertex set of the `G^k_st` search
    /// space this answer was derived from (see [`SimplePathGraph::witness`]).
    witness: Option<Arc<[VertexId]>>,
}

impl SimplePathGraph {
    /// Assembles an answer from its parts (used by the EVE pipeline and by
    /// the baseline adapters, which produce the same answer type). The
    /// answer carries no invalidation witness; attach one with
    /// [`SimplePathGraph::with_witness`].
    pub fn from_parts(query: Query, edges: EdgeSubgraph, stats: EveStats) -> Self {
        SimplePathGraph {
            query,
            edges,
            stats,
            witness: None,
        }
    }

    /// Attaches the invalidation witness: the **sorted** global vertex ids of
    /// the query's search space `G^k_st`. Every edge whose removal could
    /// change this answer (or its recorded upper bound) has both endpoints
    /// in the space, so a result cache can scope removal invalidation to
    /// entries whose witness contains both touched endpoints. Witness-less
    /// answers are purged pessimistically on any removal batch.
    pub fn with_witness(mut self, space_vertices: &[VertexId]) -> Self {
        debug_assert!(space_vertices.windows(2).all(|w| w[0] < w[1]));
        self.witness = Some(Arc::from(space_vertices));
        self
    }

    /// The invalidation witness, if the producer attached one: sorted global
    /// vertex ids of the search space (shared, not copied, across cache
    /// clones of this answer).
    pub fn witness(&self) -> Option<&[VertexId]> {
        self.witness.as_deref()
    }

    /// The query this answer belongs to.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Number of edges `|E(SPG_k)|`.
    pub fn edge_count(&self) -> usize {
        self.edges.edge_count()
    }

    /// Number of distinct vertices `|V(SPG_k)|`.
    pub fn vertex_count(&self) -> usize {
        self.edges.vertex_count()
    }

    /// `true` if no simple path of length ≤ k connects `s` to `t`.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sorted slice of the answer edges.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        self.edges.edges()
    }

    /// The answer as an [`EdgeSubgraph`].
    pub fn as_subgraph(&self) -> &EdgeSubgraph {
        &self.edges
    }

    /// Membership test for a single edge.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains(u, v)
    }

    /// Set of vertices appearing in the answer.
    pub fn vertex_set(&self) -> FxHashSet<VertexId> {
        self.edges.vertex_set()
    }

    /// `true` if vertex `v` appears on some k-hop-constrained s-t simple
    /// path. This is the membership test used in the NP-hardness reduction
    /// (Theorem 2.5).
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.edges.edges().iter().any(|&(a, b)| a == v || b == v)
    }

    /// Coverage ratio `r_C = |E(SPG_k)| / |E(G)|` (§6.6, Figure 12(a)).
    pub fn coverage_ratio(&self, host: &DiGraph) -> f64 {
        if host.edge_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / host.edge_count() as f64
        }
    }

    /// Materialises the answer as a standalone [`DiGraph`] over the host
    /// graph's vertex id space — e.g. to hand it to a path enumerator as its
    /// search space (§6.7).
    pub fn to_graph(&self, host_vertex_count: usize) -> DiGraph {
        self.edges.to_graph(host_vertex_count)
    }

    /// Statistics recorded while computing this answer.
    pub fn stats(&self) -> &EveStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimplePathGraph {
        let edges = EdgeSubgraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        SimplePathGraph::from_parts(Query::new(0, 3, 4), edges, EveStats::default())
    }

    #[test]
    fn basic_accessors() {
        let spg = sample();
        assert_eq!(spg.edge_count(), 3);
        assert_eq!(spg.vertex_count(), 4);
        assert!(!spg.is_empty());
        assert!(spg.contains_edge(1, 2));
        assert!(!spg.contains_edge(2, 1));
        assert!(spg.contains_vertex(0));
        assert!(!spg.contains_vertex(9));
        assert_eq!(spg.query().k, 4);
        assert_eq!(spg.edges().len(), 3);
        assert_eq!(spg.as_subgraph().edge_count(), 3);
        assert_eq!(spg.vertex_set().len(), 4);
    }

    #[test]
    fn coverage_ratio_against_host() {
        let host = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let spg = sample();
        let r = spg.coverage_ratio(&host);
        assert!((r - 0.5).abs() < 1e-12);
        assert_eq!(spg.coverage_ratio(&DiGraph::empty(3)), 0.0);
    }

    #[test]
    fn to_graph_round_trip() {
        let spg = sample();
        let g = spg.to_graph(6);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(2, 3));
    }
}
