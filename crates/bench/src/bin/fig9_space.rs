//! Figure 9: maximum / median / minimum space cost per query (k = 6) for
//! EVE, JOIN and PathEnum, using the analytic byte accounting described in
//! DESIGN.md §2.3.

use spg_bench::{
    build_dataset, default_eve, min_median_max, run_batch, HarnessConfig, SpgAlgorithm, Table,
};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let datasets = cfg.select_datasets(&[
        "ps", "ye", "wn", "uk", "sf", "bk", "tw", "bs", "gg", "hm", "wt", "lj", "dl", "fr", "hg",
    ]);
    let k = 6u32;
    let mut table = Table::new(
        "Figure 9: space cost in KiB per query (k = 6): max / median / min",
        &["dataset", "algorithm", "max", "median", "min"],
    );
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
        if queries.is_empty() {
            continue;
        }
        for alg in [
            SpgAlgorithm::Eve,
            SpgAlgorithm::Join,
            SpgAlgorithm::PathEnum,
        ] {
            let runs = run_batch(alg, &g, &eve, &queries, cfg.budget);
            let bytes: Vec<usize> = runs.iter().map(|r| r.memory_bytes).collect();
            let (min, median, max) = min_median_max(&bytes);
            table.add_row(vec![
                spec.code.to_string(),
                alg.name().to_string(),
                format!("{:.1}", max as f64 / 1024.0),
                format!("{:.1}", median as f64 / 1024.0),
                format!("{:.1}", min as f64 / 1024.0),
            ]);
        }
    }
    table.print();
}
