//! Figure 10(a): maximum space cost per query as k grows (wn and bs).

use spg_bench::{build_dataset, default_eve, run_batch, HarnessConfig, SpgAlgorithm, Table};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut table = Table::new(
        "Figure 10(a): maximum space cost (KiB) vs. k",
        &["dataset", "k", "EVE", "JOIN", "PathEnum"],
    );
    for spec in cfg.select_datasets(&["wn", "bs"]) {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        for k in 3..=8u32 {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            if queries.is_empty() {
                continue;
            }
            let max_bytes = |alg: SpgAlgorithm| -> f64 {
                run_batch(alg, &g, &eve, &queries, cfg.budget)
                    .iter()
                    .map(|r| r.memory_bytes)
                    .max()
                    .unwrap_or(0) as f64
                    / 1024.0
            };
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                format!("{:.1}", max_bytes(SpgAlgorithm::Eve)),
                format!("{:.1}", max_bytes(SpgAlgorithm::Join)),
                format!("{:.1}", max_bytes(SpgAlgorithm::PathEnum)),
            ]);
        }
    }
    table.print();
}
