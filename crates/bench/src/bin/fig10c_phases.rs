//! Figure 10(c): detailed per-phase time of EVE (propagation for essential
//! vertices, upper-bound computation, verification) for k = 5..8 on the
//! dense `ye` and sparse `bs` datasets.

use std::time::Duration;

use spg_bench::{build_dataset, default_eve, fmt_ms, HarnessConfig, Table};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut table = Table::new(
        "Figure 10(c): EVE per-phase total time (ms) over the query batch",
        &[
            "dataset",
            "k",
            "(1) propagation",
            "(2) upper bound",
            "(3) verification",
            "total",
        ],
    );
    for spec in cfg.select_datasets(&["ye", "bs"]) {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        for k in 5..=8u32 {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            if queries.is_empty() {
                continue;
            }
            let mut phase1 = Duration::ZERO;
            let mut phase2 = Duration::ZERO;
            let mut phase3 = Duration::ZERO;
            for &q in &queries {
                let spg = eve.query(q).expect("valid query");
                let t = spg.stats().timings;
                phase1 += t.phase1_propagation();
                phase2 += t.phase2_upper_bound();
                phase3 += t.phase3_verification();
            }
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                fmt_ms(phase1),
                fmt_ms(phase2),
                fmt_ms(phase3),
                fmt_ms(phase1 + phase2 + phase3),
            ]);
        }
    }
    table.print();
}
