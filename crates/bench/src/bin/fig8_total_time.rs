//! Figure 8: total time to answer the query batch with EVE, JOIN and
//! PathEnum, for k = 3..8 on every selected dataset. "INF" means at least
//! one query exceeded the per-query budget (`--budget-ms`).

use spg_bench::{
    build_dataset, default_eve, fmt_total, run_batch, total_time, HarnessConfig, SpgAlgorithm,
    Table,
};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let datasets = cfg.select_datasets(&[
        "ps", "ye", "wn", "uk", "sf", "bk", "tw", "bs", "gg", "hm", "wt", "lj", "dl", "fr", "hg",
    ]);
    let mut table = Table::new(
        "Figure 8: total time (ms) over the query batch",
        &[
            "dataset",
            "k",
            "EVE",
            "JOIN",
            "PathEnum",
            "EVE speedup vs best baseline",
        ],
    );
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        eprintln!(
            "{}: {} vertices, {} edges",
            spec.code,
            g.vertex_count(),
            g.edge_count()
        );
        for k in 3..=8u32 {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            if queries.is_empty() {
                continue;
            }
            let eve_total = total_time(&run_batch(
                SpgAlgorithm::Eve,
                &g,
                &eve,
                &queries,
                cfg.budget,
            ));
            let join_total = total_time(&run_batch(
                SpgAlgorithm::Join,
                &g,
                &eve,
                &queries,
                cfg.budget,
            ));
            let pe_total = total_time(&run_batch(
                SpgAlgorithm::PathEnum,
                &g,
                &eve,
                &queries,
                cfg.budget,
            ));
            let speedup = match (eve_total, join_total, pe_total) {
                (Some(e), j, p) if e.as_secs_f64() > 0.0 => {
                    let best = [j, p]
                        .into_iter()
                        .flatten()
                        .map(|d| d.as_secs_f64())
                        .fold(f64::INFINITY, f64::min);
                    if best.is_finite() {
                        format!("{:.1}x", best / e.as_secs_f64())
                    } else {
                        ">INF".to_string()
                    }
                }
                _ => "-".to_string(),
            };
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                fmt_total(eve_total),
                fmt_total(join_total),
                fmt_total(pe_total),
                speedup,
            ]);
        }
    }
    table.print();
}
