//! Table 4: speedups for hop-constrained s-t simple path *enumeration* when
//! PathEnum runs on a reduced search space instead of the full graph.
//!
//! Three preprocessors are compared, as in the paper:
//! * KHSQ  — `G^k_st` via single-directional BFS,
//! * KHSQ+ — `G^k_st` via adaptive bidirectional search,
//! * EVE   — the exact `SPG_k(s, t)`.
//!
//! speedup = time(PathEnum on G) / (time(preprocessing) + time(PathEnum on
//! the reduced graph)).

use std::time::{Duration, Instant};

use spg_baselines::{khsq, khsq_plus, CountPaths, PathEnumIndex};
use spg_bench::{build_dataset, default_eve, HarnessConfig, Table};
use spg_graph::DiGraph;
use spg_workloads::reachable_queries;

fn enumerate_time(g: &DiGraph, s: u32, t: u32, k: u32) -> Duration {
    let start = Instant::now();
    // The path count is capped so a single dense query cannot stall the whole
    // table; the same cap applies to every search space, so the speedup ratio
    // stays meaningful.
    let mut sink = CountPaths::with_limit(2_000_000);
    PathEnumIndex::build(g, s, t, k).enumerate(&mut sink);
    start.elapsed()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let datasets =
        cfg.select_datasets(&["ps", "sf", "bk", "tw", "bs", "wt", "lj", "dl", "fr", "hg"]);
    let mut table = Table::new(
        "Table 4: PathEnum speedups with KHSQ / KHSQ+ / EVE preprocessing",
        &["dataset", "k", "KHSQ", "KHSQ+", "EVE"],
    );
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        for k in 3..=6u32 {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            if queries.is_empty() {
                continue;
            }
            let mut plain = Duration::ZERO;
            let mut with_khsq = Duration::ZERO;
            let mut with_khsq_plus = Duration::ZERO;
            let mut with_eve = Duration::ZERO;
            for &q in &queries {
                plain += enumerate_time(&g, q.source, q.target, q.k);

                let start = Instant::now();
                let (sub, _) = khsq(&g, q.source, q.target, q.k);
                let reduced = sub.to_graph(g.vertex_count());
                let pre = start.elapsed();
                with_khsq += pre + enumerate_time(&reduced, q.source, q.target, q.k);

                let start = Instant::now();
                let (sub, _) = khsq_plus(&g, q.source, q.target, q.k);
                let reduced = sub.to_graph(g.vertex_count());
                let pre = start.elapsed();
                with_khsq_plus += pre + enumerate_time(&reduced, q.source, q.target, q.k);

                let start = Instant::now();
                let spg = eve.query(q).expect("valid query");
                let reduced = spg.to_graph(g.vertex_count());
                let pre = start.elapsed();
                with_eve += pre + enumerate_time(&reduced, q.source, q.target, q.k);
            }
            let speedup = |with: Duration| -> String {
                if with.is_zero() {
                    "-".to_string()
                } else {
                    format!("{:.1}", plain.as_secs_f64() / with.as_secs_f64())
                }
            };
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                speedup(with_khsq),
                speedup(with_khsq_plus),
                speedup(with_eve),
            ]);
        }
    }
    table.print();
}
