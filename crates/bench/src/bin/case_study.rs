//! §6.9 case study: fraud-cycle extraction from a transaction network
//! (Figure 13(a)), reported with timings and recall against the planted
//! ground truth.

use std::time::Instant;

use spg_bench::{HarnessConfig, Table};
use spg_graph::generators::TransactionGraphConfig;
use spg_workloads::fraud::{investigate_network, FraudCaseConfig};
use spg_workloads::DatasetScale;

fn main() {
    let cfg = HarnessConfig::from_args();
    let (accounts, background) = match cfg.scale {
        DatasetScale::Quick => (2_000, 20_000),
        DatasetScale::Full => (20_000, 200_000),
    };
    let case = FraudCaseConfig {
        network: TransactionGraphConfig {
            accounts,
            background_transactions: background,
            fraud_rings: 4,
            ring_length: 5,
            horizon_days: 90.0,
            fraud_window_days: 7.0,
            seed: cfg.seed,
        },
        k: 5,
        window_days: 7.0,
    };
    let network = spg_graph::generators::TransactionGraph::generate(case.network);

    let mut table = Table::new(
        "Case study (Fig. 13a): suspicious subgraph around the flagged transaction",
        &[
            "window (days)",
            "graph edges",
            "suspicious accounts",
            "suspicious transactions",
            "recall",
            "time (ms)",
        ],
    );
    for window in [3.0f64, 7.0, 14.0, 30.0] {
        let start = Instant::now();
        let investigation = investigate_network(&network, case.k, window);
        let elapsed = start.elapsed();
        table.add_row(vec![
            format!("{window:.0}"),
            investigation.window_graph.edge_count().to_string(),
            investigation.suspicious_accounts().to_string(),
            investigation.suspicious_transactions().to_string(),
            format!("{:.2}", investigation.recall()),
            format!("{:.3}", elapsed.as_secs_f64() * 1e3),
        ]);
    }
    table.print();

    let investigation = investigate_network(&network, case.k, case.window_days);
    println!("suspicious transactions within the 7-day window (SPG_5 edges):");
    for &(u, v) in investigation.suspicious.edges() {
        println!("  account {u} -> account {v}");
    }
}
