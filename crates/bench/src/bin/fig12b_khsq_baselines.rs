//! Figure 12(b): EVE against the KHSQ+-enhanced baselines (JOIN and PathEnum
//! run on the `G^k_st` subgraph) on the tw, lj and dl datasets, k = 3..6.

use spg_bench::{
    build_dataset, default_eve, fmt_total, run_batch, total_time, HarnessConfig, SpgAlgorithm,
    Table,
};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut table = Table::new(
        "Figure 12(b): total time (ms): EVE vs. KHSQ+-enhanced baselines",
        &["dataset", "k", "EVE", "KHSQ+ +JOIN", "KHSQ+ +PathEnum"],
    );
    for spec in cfg.select_datasets(&["tw", "lj", "dl"]) {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        for k in 3..=6u32 {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            if queries.is_empty() {
                continue;
            }
            let total = |alg: SpgAlgorithm| {
                fmt_total(total_time(&run_batch(alg, &g, &eve, &queries, cfg.budget)))
            };
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                total(SpgAlgorithm::Eve),
                total(SpgAlgorithm::JoinOnGkst),
                total(SpgAlgorithm::PathEnumOnGkst),
            ]);
        }
    }
    table.print();
}
