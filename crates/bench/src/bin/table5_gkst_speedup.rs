//! Table 5: speedups for *generating* `SPG_k(s, t)` (k = 6) when JOIN and
//! PathEnum are restricted to the `G^k_st` subgraph (computed with KHSQ+)
//! instead of the original graph, plus the comparison against EVE itself.

use spg_bench::{
    build_dataset, default_eve, fmt_total, run_batch, total_time, HarnessConfig, SpgAlgorithm,
    Table,
};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let datasets = cfg.select_datasets(&[
        "wn", "uk", "sf", "bk", "tw", "bs", "gg", "wt", "lj", "dl", "fr",
    ]);
    let k = 6u32;
    let mut table = Table::new(
        "Table 5: SPG generation on G^k_st (k = 6): speedup over the plain baseline, and EVE total",
        &[
            "dataset",
            "JOIN speedup",
            "PathEnum speedup",
            "EVE total (ms)",
        ],
    );
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
        if queries.is_empty() {
            continue;
        }
        let total = |alg: SpgAlgorithm| total_time(&run_batch(alg, &g, &eve, &queries, cfg.budget));
        let join_plain = total(SpgAlgorithm::Join);
        let join_gkst = total(SpgAlgorithm::JoinOnGkst);
        let pe_plain = total(SpgAlgorithm::PathEnum);
        let pe_gkst = total(SpgAlgorithm::PathEnumOnGkst);
        let eve_total = total(SpgAlgorithm::Eve);
        let speedup = |plain: Option<std::time::Duration>,
                       enhanced: Option<std::time::Duration>| {
            match (plain, enhanced) {
                (Some(p), Some(e)) if e.as_secs_f64() > 0.0 => {
                    format!("{:.1}", p.as_secs_f64() / e.as_secs_f64())
                }
                (None, Some(_)) => ">1 (plain INF)".to_string(),
                _ => "-".to_string(),
            }
        };
        table.add_row(vec![
            spec.code.to_string(),
            speedup(join_plain, join_gkst),
            speedup(pe_plain, pe_gkst),
            fmt_total(eve_total),
        ]);
    }
    table.print();
}
