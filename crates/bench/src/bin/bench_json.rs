//! Perf trajectory tooling: runs a fixed query suite and writes a
//! machine-readable `BENCH_2.json` snapshot (per-variant median latency,
//! per-phase ns, edges/sec, peak workspace bytes) so successive PRs can
//! track the hot-path numbers in version control.
//!
//! Usage: `cargo run --release -p spg-bench --bin bench_json -- \
//!     [--out BENCH_2.json] [--queries 64] [--repeats 5]`
//!
//! The suite is the k = 6 configuration the workspace acceptance criterion
//! references: a mid-size gnm graph plus the fraud case study's transaction
//! network. Three variants answer the same batch: the legacy hash-map
//! pipeline (`query_reference`), the flat pipeline with a fresh workspace
//! per query (`query`), and the flat pipeline on one warm reusable
//! workspace (`query_with`).

use std::time::{Duration, Instant};

use spg_core::{Eve, PhaseTimings, Query, QueryWorkspace};
use spg_graph::generators::{gnm_random, TransactionGraph, TransactionGraphConfig};
use spg_graph::DiGraph;
use spg_workloads::reachable_queries;

struct Args {
    out: String,
    queries: usize,
    repeats: usize,
}

fn parse_args() -> Args {
    let mut out = "BENCH_2.json".to_string();
    let mut queries = 64usize;
    let mut repeats = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a number"))
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats needs a number"))
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    Args {
        out,
        queries,
        repeats: repeats.max(1),
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("options: --out PATH | --queries N | --repeats R");
    std::process::exit(2);
}

fn median_ns(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-query latency samples (ns) across all repeats for one variant.
fn sample<F: FnMut(Query) -> usize>(
    queries: &[Query],
    repeats: usize,
    mut run: F,
) -> (Vec<u64>, usize, Duration) {
    let mut samples = Vec::with_capacity(queries.len() * repeats);
    let mut edges = 0usize;
    let total_start = Instant::now();
    for _ in 0..repeats {
        edges = 0;
        for &q in queries {
            let start = Instant::now();
            edges += run(q);
            samples.push(start.elapsed().as_nanos() as u64);
        }
    }
    (samples, edges, total_start.elapsed())
}

struct SuiteResult {
    name: &'static str,
    vertices: usize,
    edges: usize,
    query_count: usize,
    legacy_median_ns: u64,
    cold_median_ns: u64,
    warm_median_ns: u64,
    phase_ns: PhaseTimings,
    spg_edges_per_sec: f64,
    queries_per_sec_warm: f64,
    peak_workspace_bytes: usize,
}

fn run_suite(name: &'static str, g: DiGraph, args: &Args) -> SuiteResult {
    let queries = reachable_queries(&g, args.queries, 6, 0x5EED);
    assert!(!queries.is_empty(), "{name}: workload generation failed");
    let eve = Eve::with_defaults(&g);

    // Warm-up: touch every query once per variant so first-fault effects
    // (lazy page zeroing, branch predictors) do not skew the first samples.
    let mut ws = QueryWorkspace::new();
    for &q in &queries {
        let _ = eve.query_reference(q).unwrap();
        let _ = eve.query_with(&mut ws, q).unwrap();
    }

    let (mut legacy, legacy_edges, _) = sample(&queries, args.repeats, |q| {
        eve.query_reference(q).unwrap().edge_count()
    });
    let (mut cold, _, _) = sample(&queries, args.repeats, |q| {
        eve.query(q).unwrap().edge_count()
    });
    let (mut warm, warm_edges, warm_total) = sample(&queries, args.repeats, |q| {
        eve.query_with(&mut ws, q).unwrap().edge_count()
    });
    assert_eq!(legacy_edges, warm_edges, "{name}: pipelines disagree");

    // Per-phase breakdown: mean over one warm pass, from the recorded stats.
    let mut phase = PhaseTimings::default();
    for &q in &queries {
        let spg = eve.query_with(&mut ws, q).unwrap();
        let t = spg.stats().timings;
        phase.distance += t.distance;
        phase.propagation += t.propagation;
        phase.labeling += t.labeling;
        phase.verification += t.verification;
    }
    let nq = queries.len() as u32;
    phase.distance /= nq;
    phase.propagation /= nq;
    phase.labeling /= nq;
    phase.verification /= nq;

    let warm_secs = warm_total.as_secs_f64().max(1e-12);
    SuiteResult {
        name,
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        query_count: queries.len(),
        legacy_median_ns: median_ns(&mut legacy),
        cold_median_ns: median_ns(&mut cold),
        warm_median_ns: median_ns(&mut warm),
        phase_ns: phase,
        spg_edges_per_sec: (warm_edges * args.repeats) as f64 / warm_secs,
        queries_per_sec_warm: (queries.len() * args.repeats) as f64 / warm_secs,
        peak_workspace_bytes: ws.retained_bytes(),
    }
}

fn render_json(results: &[SuiteResult]) -> String {
    let mut out = String::from("{\n  \"bench\": 2,\n  \"suite_k\": 6,\n  \"suites\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = r.legacy_median_ns as f64 / r.warm_median_ns.max(1) as f64;
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"vertices\": {},\n",
                "      \"edges\": {},\n",
                "      \"queries\": {},\n",
                "      \"legacy_median_ns\": {},\n",
                "      \"cold_median_ns\": {},\n",
                "      \"warm_median_ns\": {},\n",
                "      \"speedup_warm_vs_legacy\": {:.2},\n",
                "      \"phase_ns\": {{\"distance\": {}, \"propagation\": {}, ",
                "\"labeling\": {}, \"verification\": {}}},\n",
                "      \"spg_edges_per_sec\": {:.0},\n",
                "      \"queries_per_sec_warm\": {:.0},\n",
                "      \"peak_workspace_bytes\": {}\n",
                "    }}{}\n",
            ),
            r.name,
            r.vertices,
            r.edges,
            r.query_count,
            r.legacy_median_ns,
            r.cold_median_ns,
            r.warm_median_ns,
            speedup,
            r.phase_ns.distance.as_nanos(),
            r.phase_ns.propagation.as_nanos(),
            r.phase_ns.labeling.as_nanos(),
            r.phase_ns.verification.as_nanos(),
            r.spg_edges_per_sec,
            r.queries_per_sec_warm,
            r.peak_workspace_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let gnm = gnm_random(4_000, 24_000, 7);
    let txn = TransactionGraph::generate(TransactionGraphConfig {
        accounts: 3_000,
        background_transactions: 18_000,
        ..Default::default()
    })
    .full_graph();

    let results = vec![
        run_suite("gnm", gnm, &args),
        run_suite("transaction", txn, &args),
    ];
    for r in &results {
        eprintln!(
            "{}: legacy {} ns, cold {} ns, warm {} ns ({:.2}x vs legacy), workspace {} bytes",
            r.name,
            r.legacy_median_ns,
            r.cold_median_ns,
            r.warm_median_ns,
            r.legacy_median_ns as f64 / r.warm_median_ns.max(1) as f64,
            r.peak_workspace_bytes,
        );
    }
    let json = render_json(&results);
    std::fs::write(&args.out, &json).expect("write benchmark json");
    println!("wrote {}", args.out);
}
