//! Perf trajectory tooling: runs a fixed query suite and writes a
//! machine-readable `BENCH_10.json` snapshot so successive PRs can track the
//! hot-path numbers in version control. A top-level `hardware` section
//! records the machine context (available parallelism, pointer width,
//! arch/os platform) so single-core-container caveats are machine-readable,
//! plus four sections per suite:
//!
//! * **variants** — per-query median latency of the legacy hash-map pipeline
//!   (`query_reference`), the flat pipeline on a fresh workspace (`query`)
//!   and the flat pipeline on one warm workspace (`query_with`), plus
//!   per-phase ns, edges/sec and workspace bytes (the PR-2 trajectory);
//! * **thread_scaling** — whole-batch wall time of `BatchExecutor::run` at
//!   each thread count of the ladder (default 1/2/4/8, overridable with
//!   `--threads`) against the same warm sequential batch, with queries/sec
//!   and speedup vs the single-thread executor (the PR-3 trajectory). Every
//!   parallel run is checked slot-for-slot against the sequential answers
//!   before its timing is recorded;
//! * **cache** — the versioned result cache over a repeat-heavy hot-key
//!   batch: cold wall time (empty cache, misses compute-then-publish) vs a
//!   warm rerun of the same batch (all hits skip phases 1–3), with intra-
//!   batch and warm hit rates, eviction counts and resident bytes (the PR-4
//!   trajectory). Every cached run — cold and warm — is verified
//!   slot-for-slot against the uncached pipeline before timing is recorded;
//! * **phase1_sharing** — the cohort-shared MS-BFS Phase 1 against the
//!   per-query path (`shared_phase1(false)`), single worker, over the
//!   suite's uniform batch (low endpoint reuse) and a fraud-ring
//!   shared-endpoint batch (few sources × few targets — the dedup target):
//!   whole-batch and Phase-1-only wall time, cohort fill, distinct-endpoint
//!   dedup ratio and the top-down/bottom-up scan split (the PR-5
//!   trajectory). Every shared run is verified slot-for-slot against the
//!   per-query answers before timing is recorded;
//! * **lane_width** — the wide-lane MS-BFS engine across cohort lane
//!   widths (64/128/256 pairs per traversal) × frontier policies (α/β
//!   direction hysteresis vs the legacy fixed switch), single worker, over
//!   a dedicated shared-endpoint batch (64 sources × 4 targets at k = 6
//!   on a sparse 60 K-vertex graph — ~220 distinct pairs, four 64-lane
//!   cohorts vs one 256-lane cohort) and the suite's uniform batch (where
//!   the cost model should dissolve cohorts into singletons): whole-batch
//!   and Phase-1-only wall time, speedup of each width over the 64-lane
//!   hysteresis baseline, cohort counts and the bottom-up scan share (the
//!   PR-10 trajectory). Every configuration is verified slot-for-slot
//!   against the per-query answers before timing is recorded, sampled
//!   warm in two time-separated rounds and reported best-of-samples
//!   (deterministic replay — see [`min_ns`]);
//! * **dynamic** — delta-aware updates on a warm hot-key cache:
//!   update-then-requery (CSR overlay + scoped purge, survivors hit) vs
//!   rebuild-then-requery (from-scratch CSR whose fresh version stamp
//!   orphans every cached entry, so the rerun is all misses), plus the
//!   per-round purge count and the survivor rate of resident entries (the
//!   PR-9 trajectory). Both paths' answers are verified bit-identical each
//!   round before their timings count.
//!
//! Usage: `cargo run --release -p spg-bench --bin bench_json -- \
//!     [--out BENCH_10.json] [--queries 64] [--repeats 5] \
//!     [--threads 1,2,4,8] [--smoke]`
//!
//! `--smoke` shrinks the suites to a tiny graph, restricts thread scaling to
//! 2 threads and 1 repeat, and is what CI runs to keep the JSON emitter and
//! the parallel/cached paths honest without a statistically meaningful
//! measurement. `--threads` overrides the ladder in both modes.

use std::time::{Duration, Instant};

use spg_core::{
    apply_delta_scoped, BatchExecutor, CachedEve, Eve, LaneWidth, PhaseTimings, Query,
    QueryWorkspace, SpgCache,
};
use spg_graph::generators::{gnm_random, TransactionGraph, TransactionGraphConfig};
use spg_graph::traversal::MAX_LANES;
use spg_graph::FrontierPolicy;
use spg_graph::{DiGraph, EdgeDelta, VersionedGraph};
use spg_workloads::{
    reachable_queries, repeat_heavy_queries, shared_endpoint_queries, skewed_queries,
};

/// Byte budget of the benchmark cache: ample for the suites, so the warm
/// rerun measures pure hit latency rather than eviction churn.
const CACHE_BUDGET_BYTES: usize = 64 << 20;

struct Args {
    out: String,
    queries: usize,
    repeats: usize,
    threads: Option<Vec<usize>>,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = "BENCH_10.json".to_string();
    let mut queries = 64usize;
    let mut repeats = 5usize;
    let mut threads: Option<Vec<usize>> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a number"))
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--repeats needs a number"))
            }
            "--threads" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| usage("--threads needs N or N,N,..."));
                let ladder: Option<Vec<usize>> = spec
                    .split(',')
                    .map(|part| part.trim().parse::<usize>().ok().filter(|&n| n > 0))
                    .collect();
                match ladder {
                    Some(l) if !l.is_empty() => threads = Some(l),
                    _ => usage("--threads needs positive numbers, e.g. 1,2,4"),
                }
            }
            "--smoke" => smoke = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if smoke {
        queries = queries.min(8);
        repeats = 1;
    }
    Args {
        out,
        queries,
        repeats: repeats.max(1),
        threads,
        smoke,
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("options: --out PATH | --queries N | --repeats R | --threads N[,N...] | --smoke");
    std::process::exit(2);
}

fn median_ns(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Best-of-samples estimator for deterministic replay workloads. The work
/// per pass is bit-identical across repeats, so all variance is one-sided
/// host interference (noisy neighbours, frequency excursions) — the
/// minimum is the least-contaminated estimate of the true cost and, being
/// applied to every variant alike, leaves the cross-variant ratios
/// unbiased. The lane-width ladder uses it; latency-shaped sections keep
/// the median.
fn min_ns(samples: &[u64]) -> u64 {
    samples.iter().copied().min().unwrap_or(0)
}

/// Per-query latency samples (ns) across all repeats for one variant.
fn sample<F: FnMut(Query) -> usize>(
    queries: &[Query],
    repeats: usize,
    mut run: F,
) -> (Vec<u64>, usize, Duration) {
    let mut samples = Vec::with_capacity(queries.len() * repeats);
    let mut edges = 0usize;
    let total_start = Instant::now();
    for _ in 0..repeats {
        edges = 0;
        for &q in queries {
            let start = Instant::now();
            edges += run(q);
            samples.push(start.elapsed().as_nanos() as u64);
        }
    }
    (samples, edges, total_start.elapsed())
}

struct ThreadScale {
    threads: usize,
    batch_median_ns: u64,
    queries_per_sec: f64,
    speedup_vs_first: f64,
}

/// Whole-batch wall time of the executor at each thread count, median over
/// `repeats` runs. Every run's slots are checked against `expected` so a
/// determinism regression can never produce a fast-but-wrong number.
fn thread_scaling(
    eve: &Eve<'_>,
    queries: &[Query],
    thread_counts: &[usize],
    repeats: usize,
    expected: &[Vec<(u32, u32)>],
) -> Vec<ThreadScale> {
    let mut rows: Vec<ThreadScale> = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let executor = BatchExecutor::new(threads);
        // Warm-up run (also the first correctness check).
        verify(&executor.run(eve, queries), expected, threads);
        let mut samples: Vec<u64> = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let start = Instant::now();
            let results = executor.run(eve, queries);
            samples.push(start.elapsed().as_nanos() as u64);
            verify(&results, expected, threads);
        }
        let median = median_ns(&mut samples);
        let qps = queries.len() as f64 / (median as f64 / 1e9).max(1e-12);
        let speedup = match rows.first() {
            Some(first) => first.batch_median_ns as f64 / median.max(1) as f64,
            None => 1.0,
        };
        rows.push(ThreadScale {
            threads,
            batch_median_ns: median,
            queries_per_sec: qps,
            speedup_vs_first: speedup,
        });
    }
    rows
}

fn verify(results: &[spg_core::BatchResult], expected: &[Vec<(u32, u32)>], threads: usize) {
    assert_eq!(results.len(), expected.len());
    for (i, (got, exp)) in results.iter().zip(expected).enumerate() {
        let got = got.as_ref().expect("suite queries are valid");
        assert_eq!(
            got.edges(),
            exp.as_slice(),
            "slot {i} diverged at {threads} threads"
        );
    }
}

struct CacheBench {
    batch: &'static str,
    batch_len: usize,
    unique_queries: usize,
    cold_batch_ns: u64,
    warm_batch_ns: u64,
    warm_speedup_vs_cold: f64,
    cold_hit_rate: f64,
    warm_hit_rate: f64,
    evictions: u64,
    resident_entries: usize,
    resident_bytes: usize,
    budget_bytes: usize,
}

/// Cold-vs-warm wall time of the cached sequential batch path over one
/// batch shape. Cold repeats clear the cache first; warm repeats rerun the
/// identical batch on the populated cache (all hits). Every run — cold and
/// warm — is verified slot-for-slot against the uncached pipeline before
/// its timing counts.
///
/// Two shapes are measured per suite: `repeat_heavy` (exact hot-key
/// repeats — high intra-batch hit rate even cold) and `skewed` (hub-skewed
/// endpoints, few exact repeats — cold is honest miss-dominated work and
/// only the warm rerun pays off).
fn cache_bench(
    vg: &VersionedGraph,
    shape: &'static str,
    repeats: usize,
    smoke: bool,
) -> CacheBench {
    let count = if smoke { 48 } else { 512 };
    let unique = if smoke { 8 } else { 32 };
    let batch = match shape {
        "repeat_heavy" => repeat_heavy_queries(vg.graph(), count, &[4, 6], unique, 0.7, 0xCACE),
        "skewed" => skewed_queries(vg.graph(), count.min(128), 6, 16, 0.8, 0x5EED),
        other => unreachable!("unknown cache batch shape {other}"),
    };
    assert!(!batch.is_empty(), "cache workload generation failed");
    let mut distinct: Vec<Query> = batch.clone();
    distinct.sort_unstable_by_key(|q| (q.source, q.target, q.k));
    distinct.dedup();

    let eve = Eve::with_defaults(vg.graph());
    let expected: Vec<Vec<(u32, u32)>> = {
        let mut ws = QueryWorkspace::new();
        batch
            .iter()
            .map(|&q| eve.query_with(&mut ws, q).unwrap().edges().to_vec())
            .collect()
    };

    let cache = SpgCache::new(CACHE_BUDGET_BYTES);
    let cached = CachedEve::with_defaults(vg, &cache);
    let executor = BatchExecutor::new(1);

    let mut cold_samples = Vec::with_capacity(repeats);
    let mut cold_hit_rate = 0.0;
    for _ in 0..repeats {
        cache.clear();
        let start = Instant::now();
        let outcome = executor.run_cached_detailed(&cached, &batch);
        cold_samples.push(start.elapsed().as_nanos() as u64);
        verify(&outcome.results, &expected, 1);
        cold_hit_rate = outcome.stats.cache_hit_rate().unwrap_or(0.0);
    }

    // The last cold run left the cache fully populated: warm reruns.
    let mut warm_samples = Vec::with_capacity(repeats);
    let mut warm_hit_rate = 0.0;
    for _ in 0..repeats {
        let start = Instant::now();
        let outcome = executor.run_cached_detailed(&cached, &batch);
        warm_samples.push(start.elapsed().as_nanos() as u64);
        verify(&outcome.results, &expected, 1);
        warm_hit_rate = outcome.stats.cache_hit_rate().unwrap_or(0.0);
    }

    let cold = median_ns(&mut cold_samples);
    let warm = median_ns(&mut warm_samples);
    let stats = cache.stats();
    CacheBench {
        batch: shape,
        batch_len: batch.len(),
        unique_queries: distinct.len(),
        cold_batch_ns: cold,
        warm_batch_ns: warm,
        warm_speedup_vs_cold: cold as f64 / warm.max(1) as f64,
        cold_hit_rate,
        warm_hit_rate,
        evictions: stats.evictions,
        resident_entries: stats.entries,
        resident_bytes: stats.bytes,
        budget_bytes: stats.budget_bytes,
    }
}

struct Phase1Bench {
    batch: &'static str,
    batch_len: usize,
    per_query_batch_ns: u64,
    shared_batch_ns: u64,
    batch_speedup: f64,
    per_query_phase1_ns: u64,
    shared_phase1_ns: u64,
    phase1_speedup: f64,
    cohorts: usize,
    distinct_endpoints: usize,
    phase1_shared: usize,
    cohort_fill: f64,
    dedup_ratio: f64,
    top_down_scans: usize,
    bottom_up_scans: usize,
}

/// Sum of the distance-phase timings recorded in a run's answer slots (ns).
/// On the per-query path this is the whole Phase 1; on the shared path it is
/// the per-member materialisation + space-compaction share, to which the
/// cohort traversal time must be added.
fn slot_distance_ns(results: &[spg_core::BatchResult]) -> u64 {
    results
        .iter()
        .filter_map(|slot| slot.as_ref().ok())
        .map(|spg| spg.stats().timings.distance.as_nanos() as u64)
        .sum()
}

/// Cohort-shared vs per-query Phase 1 over one batch shape, single worker
/// (so the comparison isolates traversal sharing from parallelism). Every
/// shared run is verified slot-for-slot against the per-query answers
/// before its timing counts.
fn phase1_bench(
    eve: &Eve<'_>,
    batch: &[Query],
    shape: &'static str,
    repeats: usize,
) -> Phase1Bench {
    assert!(
        !batch.is_empty(),
        "{shape}: phase1 workload generation failed"
    );
    let per_query = BatchExecutor::new(1).shared_phase1(false);
    let shared = BatchExecutor::new(1);

    let expected: Vec<Vec<(u32, u32)>> = per_query
        .run(eve, batch)
        .into_iter()
        .map(|slot| slot.expect("suite queries are valid").edges().to_vec())
        .collect();

    let mut pq_batch = Vec::with_capacity(repeats);
    let mut pq_phase1 = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        let outcome = per_query.run_detailed(eve, batch);
        pq_batch.push(start.elapsed().as_nanos() as u64);
        pq_phase1.push(slot_distance_ns(&outcome.results));
        verify(&outcome.results, &expected, 1);
    }

    let mut sh_batch = Vec::with_capacity(repeats);
    let mut sh_phase1 = Vec::with_capacity(repeats);
    let mut last_stats = spg_core::SharedPhase1Stats::default();
    for _ in 0..repeats {
        let start = Instant::now();
        let outcome = shared.run_detailed(eve, batch);
        sh_batch.push(start.elapsed().as_nanos() as u64);
        sh_phase1.push(
            outcome.stats.phase1.traversal_time.as_nanos() as u64
                + slot_distance_ns(&outcome.results),
        );
        verify(&outcome.results, &expected, 1);
        last_stats = outcome.stats.phase1;
    }

    let per_query_batch_ns = median_ns(&mut pq_batch);
    let shared_batch_ns = median_ns(&mut sh_batch);
    let per_query_phase1_ns = median_ns(&mut pq_phase1);
    let shared_phase1_ns = median_ns(&mut sh_phase1);
    Phase1Bench {
        batch: shape,
        batch_len: batch.len(),
        per_query_batch_ns,
        shared_batch_ns,
        batch_speedup: per_query_batch_ns as f64 / shared_batch_ns.max(1) as f64,
        per_query_phase1_ns,
        shared_phase1_ns,
        phase1_speedup: per_query_phase1_ns as f64 / shared_phase1_ns.max(1) as f64,
        cohorts: last_stats.cohorts,
        distinct_endpoints: last_stats.distinct_endpoints,
        phase1_shared: last_stats.phase1_shared,
        cohort_fill: if last_stats.cohorts == 0 {
            0.0
        } else {
            last_stats.distinct_endpoints as f64 / (last_stats.cohorts * MAX_LANES) as f64
        },
        dedup_ratio: last_stats.dedup_ratio().unwrap_or(0.0),
        top_down_scans: last_stats.traversal.forward_edge_scans
            + last_stats.traversal.backward_edge_scans,
        bottom_up_scans: last_stats.traversal.bottom_up_edge_scans,
    }
}

/// One (lane width × frontier policy) configuration of the shared engine.
struct LaneWidthRow {
    lanes: usize,
    policy: &'static str,
    batch_ns: u64,
    phase1_ns: u64,
    /// Phase-1 speedup of this configuration over the 64-lane hysteresis
    /// row of the same batch (the widening payoff the PR-10 gate tracks).
    phase1_speedup_vs_64: f64,
    batch_speedup_vs_per_query: f64,
    cohorts: usize,
    distinct_endpoints: usize,
    bottom_up_scans: usize,
}

struct LaneWidthBench {
    batch: &'static str,
    batch_len: usize,
    distinct_pairs: usize,
    per_query_batch_ns: u64,
    per_query_phase1_ns: u64,
    rows: Vec<LaneWidthRow>,
}

/// Lane-width ladder: the same batch through 64-, 128- and 256-lane cohort
/// capacities, each under α/β hysteresis and under the legacy fixed switch
/// (`Fixed { denominator: 2 }` — bit-compatible with the pre-hysteresis
/// engine). Single worker so the ladder isolates traversal width from
/// parallelism. Every configuration's answers are verified slot-for-slot
/// against the per-query path before its timing counts.
fn lane_width_bench(
    eve: &Eve<'_>,
    batch: &[Query],
    shape: &'static str,
    repeats: usize,
) -> LaneWidthBench {
    assert!(
        !batch.is_empty(),
        "{shape}: lane-width workload generation failed"
    );
    let mut pairs: Vec<(u32, u32)> = batch.iter().map(|q| (q.source, q.target)).collect();
    pairs.sort_unstable();
    pairs.dedup();

    let per_query = BatchExecutor::new(1).shared_phase1(false);
    let expected: Vec<Vec<(u32, u32)>> = per_query
        .run(eve, batch)
        .into_iter()
        .map(|slot| slot.expect("suite queries are valid").edges().to_vec())
        .collect();

    let configs: [(LaneWidth, &'static str, FrontierPolicy); 6] = [
        (LaneWidth::W64, "hysteresis", FrontierPolicy::default()),
        (
            LaneWidth::W64,
            "fixed",
            FrontierPolicy::Fixed { denominator: 2 },
        ),
        (LaneWidth::W128, "hysteresis", FrontierPolicy::default()),
        (
            LaneWidth::W128,
            "fixed",
            FrontierPolicy::Fixed { denominator: 2 },
        ),
        (LaneWidth::W256, "hysteresis", FrontierPolicy::default()),
        (
            LaneWidth::W256,
            "fixed",
            FrontierPolicy::Fixed { denominator: 2 },
        ),
    ];
    let executors: Vec<(LaneWidth, &'static str, BatchExecutor)> = configs
        .into_iter()
        .map(|(width, policy_name, policy)| {
            let executor = BatchExecutor::new(1)
                .phase1_lanes(width)
                .phase1_policy(policy);
            // One untimed pass so every executor's workspace pool is warm
            // before sampling — the per-query baseline got the same
            // treatment from the `expected` capture run above.
            verify(&executor.run_detailed(eve, batch).results, &expected, 1);
            (width, policy_name, executor)
        })
        .collect();

    // Each variant is sampled back to back after an untimed warm pass —
    // the steady state a serving executor actually runs in (a rotation
    // that streams six other variants' graph-sized arrays between every
    // sample would tax the wider blocks, whose per-vertex arrays are up
    // to 4× larger, for eviction the rotation itself caused). To keep
    // slow host drift (thermal/turbo state, noisy neighbours) from
    // biasing whichever variant sampled last, the sample budget is split
    // into two time-separated rounds over the whole variant list and the
    // medians pool both rounds.
    let mut pq_batch = Vec::with_capacity(repeats);
    let mut pq_phase1 = Vec::with_capacity(repeats);
    let mut batch_samples = vec![Vec::with_capacity(repeats); executors.len()];
    let mut phase1_samples = vec![Vec::with_capacity(repeats); executors.len()];
    let mut last_stats = vec![spg_core::SharedPhase1Stats::default(); executors.len()];
    let first_round = repeats.div_ceil(2);
    for round in 0..2 {
        let take = if round == 0 {
            first_round
        } else {
            repeats - first_round
        };
        if take == 0 {
            continue;
        }
        let _ = per_query.run_detailed(eve, batch);
        for _ in 0..take {
            let start = Instant::now();
            let outcome = per_query.run_detailed(eve, batch);
            pq_batch.push(start.elapsed().as_nanos() as u64);
            pq_phase1.push(slot_distance_ns(&outcome.results));
            verify(&outcome.results, &expected, 1);
        }
        for (i, (_, _, executor)) in executors.iter().enumerate() {
            let _ = executor.run_detailed(eve, batch);
            for _ in 0..take {
                let start = Instant::now();
                let outcome = executor.run_detailed(eve, batch);
                batch_samples[i].push(start.elapsed().as_nanos() as u64);
                phase1_samples[i].push(
                    outcome.stats.phase1.traversal_time.as_nanos() as u64
                        + slot_distance_ns(&outcome.results),
                );
                verify(&outcome.results, &expected, 1);
                last_stats[i] = outcome.stats.phase1;
            }
        }
    }
    let per_query_batch_ns = min_ns(&pq_batch);
    let per_query_phase1_ns = min_ns(&pq_phase1);

    let mut rows: Vec<LaneWidthRow> = Vec::with_capacity(executors.len());
    for (i, (width, policy_name, _)) in executors.iter().enumerate() {
        let batch_ns = min_ns(&batch_samples[i]);
        let phase1_ns = min_ns(&phase1_samples[i]);
        rows.push(LaneWidthRow {
            lanes: width.lanes(),
            policy: policy_name,
            batch_ns,
            phase1_ns,
            phase1_speedup_vs_64: 1.0, // filled below from the baseline row
            batch_speedup_vs_per_query: per_query_batch_ns as f64 / batch_ns.max(1) as f64,
            cohorts: last_stats[i].cohorts,
            distinct_endpoints: last_stats[i].distinct_endpoints,
            bottom_up_scans: last_stats[i].traversal.bottom_up_edge_scans,
        });
    }
    let baseline = rows[0].phase1_ns; // 64-lane hysteresis
    for row in &mut rows {
        row.phase1_speedup_vs_64 = baseline as f64 / row.phase1_ns.max(1) as f64;
    }
    LaneWidthBench {
        batch: shape,
        batch_len: batch.len(),
        distinct_pairs: pairs.len(),
        per_query_batch_ns,
        per_query_phase1_ns,
        rows,
    }
}

struct DynamicBench {
    batch_len: usize,
    unique_queries: usize,
    rounds: usize,
    deltas_per_round: usize,
    update_then_requery_ns: u64,
    rebuild_then_requery_ns: u64,
    update_speedup_vs_rebuild: f64,
    mean_purged_per_round: f64,
    survivor_rate: f64,
    overlay_compactions: u64,
}

/// Update-then-requery vs rebuild-then-requery over a warm hot-key batch.
/// Each round toggles one edge. The update path applies the delta as a CSR
/// overlay plus a *scoped* cache purge and reruns the batch — unaffected
/// entries keep hitting. The rebuild path constructs a from-scratch CSR
/// whose fresh version stamp orphans every cached entry, so its rerun is
/// all misses. Both paths' answers are checked bit-identical every round,
/// outside the timed regions.
fn dynamic_bench(g: &DiGraph, smoke: bool) -> DynamicBench {
    let rounds = if smoke { 4 } else { 12 };
    let count = if smoke { 48 } else { 512 };
    let unique = if smoke { 8 } else { 64 };
    let batch = repeat_heavy_queries(g, count, &[4, 6], unique, 0.7, 0xD11A);
    assert!(!batch.is_empty(), "dynamic workload generation failed");
    let mut distinct: Vec<Query> = batch.clone();
    distinct.sort_unstable_by_key(|q| (q.source, q.target, q.k));
    distinct.dedup();

    let n = g.vertex_count();
    let mut model: Vec<(u32, u32)> = g.edges().collect();
    let mut present = true;

    let mut vg = VersionedGraph::new(g.clone());
    let update_cache = SpgCache::new(CACHE_BUDGET_BYTES);
    let rebuild_cache = SpgCache::new(CACHE_BUDGET_BYTES);
    let executor = BatchExecutor::new(1);
    // Warm the update-path cache: round zero starts from steady serving
    // state. (The rebuild path cannot be warmed — every round's fresh
    // version stamp makes prior entries unreachable, which is the point.)
    let warm = executor.run_cached(&CachedEve::with_defaults(&vg, &update_cache), &batch);
    // Toggle an edge from inside a cached answer, so the delta genuinely
    // intersects a resident entry's scope each round — the purge is
    // exercised, and its survivor rate is a real measurement rather than a
    // vacuous 100%.
    let toggled = warm
        .iter()
        .filter_map(|slot| slot.as_ref().ok())
        .find_map(|spg| spg.edges().first().copied())
        .unwrap_or_else(|| *model.last().expect("suite graphs have edges"));

    let mut update_ns = Vec::with_capacity(rounds);
    let mut rebuild_ns = Vec::with_capacity(rounds);
    let mut purged_total = 0usize;
    let mut survivor_acc = 0.0f64;
    let mut survivor_rounds = 0usize;
    for round in 0..rounds {
        let deltas = if present {
            model.retain(|&e| e != toggled);
            vec![EdgeDelta::remove(toggled.0, toggled.1)]
        } else {
            model.push(toggled);
            vec![EdgeDelta::add(toggled.0, toggled.1)]
        };
        present = !present;

        let entries_before = update_cache.stats().entries;
        let start = Instant::now();
        let upd = apply_delta_scoped(&mut vg, &update_cache, &deltas).expect("valid delta");
        let update_results =
            executor.run_cached(&CachedEve::with_defaults(&vg, &update_cache), &batch);
        update_ns.push(start.elapsed().as_nanos() as u64);

        let start = Instant::now();
        let rebuilt = VersionedGraph::new(DiGraph::from_edges(n, model.iter().copied()));
        let rebuild_results =
            executor.run_cached(&CachedEve::with_defaults(&rebuilt, &rebuild_cache), &batch);
        rebuild_ns.push(start.elapsed().as_nanos() as u64);

        for (i, (u, r)) in update_results.iter().zip(&rebuild_results).enumerate() {
            let u = u.as_ref().expect("suite queries are valid");
            let r = r.as_ref().expect("suite queries are valid");
            assert_eq!(
                u.edges(),
                r.edges(),
                "round {round} slot {i}: update path diverged from rebuild"
            );
        }

        purged_total += upd.purged;
        if entries_before > 0 {
            survivor_acc += (entries_before - upd.purged) as f64 / entries_before as f64;
            survivor_rounds += 1;
        }
    }

    let update = median_ns(&mut update_ns);
    let rebuild = median_ns(&mut rebuild_ns);
    DynamicBench {
        batch_len: batch.len(),
        unique_queries: distinct.len(),
        rounds,
        deltas_per_round: 1,
        update_then_requery_ns: update,
        rebuild_then_requery_ns: rebuild,
        update_speedup_vs_rebuild: rebuild as f64 / update.max(1) as f64,
        mean_purged_per_round: purged_total as f64 / rounds as f64,
        survivor_rate: if survivor_rounds == 0 {
            1.0
        } else {
            survivor_acc / survivor_rounds as f64
        },
        overlay_compactions: vg.compactions(),
    }
}

struct SuiteResult {
    name: &'static str,
    vertices: usize,
    edges: usize,
    query_count: usize,
    legacy_median_ns: u64,
    cold_median_ns: u64,
    warm_median_ns: u64,
    phase_ns: PhaseTimings,
    spg_edges_per_sec: f64,
    queries_per_sec_warm: f64,
    peak_workspace_bytes: usize,
    scaling: Vec<ThreadScale>,
    cache: Vec<CacheBench>,
    phase1_sharing: Vec<Phase1Bench>,
    lane_width: Vec<LaneWidthBench>,
    dynamic: DynamicBench,
}

fn run_suite(name: &'static str, g: DiGraph, args: &Args, thread_counts: &[usize]) -> SuiteResult {
    let dynamic = dynamic_bench(&g, args.smoke);
    let vg = VersionedGraph::new(g);
    let queries = reachable_queries(vg.graph(), args.queries, 6, 0x5EED);
    assert!(!queries.is_empty(), "{name}: workload generation failed");
    let eve = Eve::with_defaults(vg.graph());

    // Warm-up: touch every query once per variant so first-fault effects
    // (lazy page zeroing, branch predictors) do not skew the first samples.
    let mut ws = QueryWorkspace::new();
    for &q in &queries {
        let _ = eve.query_reference(q).unwrap();
        let _ = eve.query_with(&mut ws, q).unwrap();
    }

    let (mut legacy, legacy_edges, _) = sample(&queries, args.repeats, |q| {
        eve.query_reference(q).unwrap().edge_count()
    });
    let (mut cold, _, _) = sample(&queries, args.repeats, |q| {
        eve.query(q).unwrap().edge_count()
    });
    let (mut warm, warm_edges, warm_total) = sample(&queries, args.repeats, |q| {
        eve.query_with(&mut ws, q).unwrap().edge_count()
    });
    assert_eq!(legacy_edges, warm_edges, "{name}: pipelines disagree");

    // Per-phase breakdown: mean over one warm pass, from the recorded stats.
    let mut phase = PhaseTimings::default();
    let mut expected: Vec<Vec<(u32, u32)>> = Vec::with_capacity(queries.len());
    for &q in &queries {
        let spg = eve.query_with(&mut ws, q).unwrap();
        let t = spg.stats().timings;
        phase.distance += t.distance;
        phase.propagation += t.propagation;
        phase.labeling += t.labeling;
        phase.verification += t.verification;
        expected.push(spg.edges().to_vec());
    }
    let nq = queries.len() as u32;
    phase.distance /= nq;
    phase.propagation /= nq;
    phase.labeling /= nq;
    phase.verification /= nq;

    let scaling = thread_scaling(&eve, &queries, thread_counts, args.repeats, &expected);
    let cache = ["repeat_heavy", "skewed"]
        .into_iter()
        .map(|shape| cache_bench(&vg, shape, args.repeats, args.smoke))
        .collect();
    // Phase-1 sharing: the suite's uniform batch (low endpoint reuse) and a
    // fraud-ring shape (8 sources × 8 targets — at most 64 distinct pairs,
    // so a whole batch collapses into one cohort's lanes).
    let fanout = if args.smoke { 48 } else { 256 };
    let ring = shared_endpoint_queries(vg.graph(), fanout, &[4, 6], 8, 8, 0xFA4D);
    let phase1_sharing = vec![
        phase1_bench(&eve, &queries, "uniform", args.repeats),
        phase1_bench(&eve, &ring, "shared_endpoint", args.repeats),
    ];
    // Lane-width ladder. The shared-endpoint shape gets a dedicated graph:
    // 64 sources × 4 targets at k = 6 on a sparse ~deg-5 graph yields ~220
    // distinct pairs — four 64-lane cohorts versus one 256-lane cohort —
    // and a traversal-dominated profile where widening genuinely collapses
    // repeated source-side work (each narrow cohort re-walks the same 64
    // sources). It only runs for the gnm suite so the ladder is measured
    // once per bench invocation. The suite's uniform batch rides along in
    // every suite as the no-sharing control the cost model must not
    // regress.
    let mut lane_width = Vec::new();
    if name == "gnm" {
        let (lv, le, lc, ls) = if args.smoke {
            (6_000, 30_000, 128, 32)
        } else {
            (60_000, 300_000, 512, 64)
        };
        let lane_graph = gnm_random(lv, le, 7);
        let lane_batch = shared_endpoint_queries(&lane_graph, lc, &[6, 6], ls, 4, 0x1A4E);
        let lane_eve = Eve::with_defaults(&lane_graph);
        // One ladder pass is cheap next to the rest of the suite but its
        // medians carry the headline width comparison, so give it a
        // larger sample budget than the general --repeats floor.
        let lane_repeats = if args.smoke {
            args.repeats
        } else {
            args.repeats.max(9)
        };
        lane_width.push(lane_width_bench(
            &lane_eve,
            &lane_batch,
            "shared_wide",
            lane_repeats,
        ));
    }
    let uniform_repeats = if args.smoke {
        args.repeats
    } else {
        args.repeats.max(9)
    };
    lane_width.push(lane_width_bench(&eve, &queries, "uniform", uniform_repeats));

    let warm_secs = warm_total.as_secs_f64().max(1e-12);
    SuiteResult {
        name,
        vertices: vg.vertex_count(),
        edges: vg.edge_count(),
        query_count: queries.len(),
        legacy_median_ns: median_ns(&mut legacy),
        cold_median_ns: median_ns(&mut cold),
        warm_median_ns: median_ns(&mut warm),
        phase_ns: phase,
        spg_edges_per_sec: (warm_edges * args.repeats) as f64 / warm_secs,
        queries_per_sec_warm: (queries.len() * args.repeats) as f64 / warm_secs,
        peak_workspace_bytes: ws.retained_bytes(),
        scaling,
        cache,
        phase1_sharing,
        lane_width,
        dynamic,
    }
}

/// Machine context of the measurement, so caveats like "recorded on a
/// 1-vCPU container" are machine-readable instead of README footnotes.
fn hardware_json() -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    // `platform` is a human-scannable arch-os pair, NOT a rustc target
    // triple (the true triple is a compile-time property this binary cannot
    // observe at runtime); `arch`/`os`/`family` are the parseable fields.
    format!(
        concat!(
            "  \"hardware\": {{\"available_parallelism\": {}, ",
            "\"pointer_width\": {}, \"platform\": \"{}-{}\", ",
            "\"arch\": \"{}\", \"os\": \"{}\", \"family\": \"{}\"}},\n",
        ),
        parallelism,
        usize::BITS,
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::env::consts::FAMILY,
    )
}

fn render_json(results: &[SuiteResult]) -> String {
    let mut out = String::from("{\n  \"bench\": 10,\n  \"suite_k\": 6,\n");
    out.push_str(&hardware_json());
    out.push_str("  \"suites\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = r.legacy_median_ns as f64 / r.warm_median_ns.max(1) as f64;
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"vertices\": {},\n",
                "      \"edges\": {},\n",
                "      \"queries\": {},\n",
                "      \"legacy_median_ns\": {},\n",
                "      \"cold_median_ns\": {},\n",
                "      \"warm_median_ns\": {},\n",
                "      \"speedup_warm_vs_legacy\": {:.2},\n",
                "      \"phase_ns\": {{\"distance\": {}, \"propagation\": {}, ",
                "\"labeling\": {}, \"verification\": {}}},\n",
                "      \"spg_edges_per_sec\": {:.0},\n",
                "      \"queries_per_sec_warm\": {:.0},\n",
                "      \"peak_workspace_bytes\": {},\n",
                "      \"thread_scaling\": [\n",
            ),
            r.name,
            r.vertices,
            r.edges,
            r.query_count,
            r.legacy_median_ns,
            r.cold_median_ns,
            r.warm_median_ns,
            speedup,
            r.phase_ns.distance.as_nanos(),
            r.phase_ns.propagation.as_nanos(),
            r.phase_ns.labeling.as_nanos(),
            r.phase_ns.verification.as_nanos(),
            r.spg_edges_per_sec,
            r.queries_per_sec_warm,
            r.peak_workspace_bytes,
        ));
        for (j, s) in r.scaling.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\"threads\": {}, \"batch_median_ns\": {}, ",
                    "\"queries_per_sec\": {:.0}, \"speedup_vs_1_thread\": {:.2}}}{}\n",
                ),
                s.threads,
                s.batch_median_ns,
                s.queries_per_sec,
                s.speedup_vs_first,
                if j + 1 < r.scaling.len() { "," } else { "" },
            ));
        }
        out.push_str("      ],\n      \"cache\": [\n");
        for (j, c) in r.cache.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"batch\": \"{}\",\n",
                    "          \"queries\": {},\n",
                    "          \"unique_queries\": {},\n",
                    "          \"cold_batch_ns\": {},\n",
                    "          \"warm_batch_ns\": {},\n",
                    "          \"warm_speedup_vs_cold\": {:.2},\n",
                    "          \"cold_hit_rate\": {:.3},\n",
                    "          \"warm_hit_rate\": {:.3},\n",
                    "          \"evictions\": {},\n",
                    "          \"resident_entries\": {},\n",
                    "          \"resident_bytes\": {},\n",
                    "          \"budget_bytes\": {}\n",
                    "        }}{}\n",
                ),
                c.batch,
                c.batch_len,
                c.unique_queries,
                c.cold_batch_ns,
                c.warm_batch_ns,
                c.warm_speedup_vs_cold,
                c.cold_hit_rate,
                c.warm_hit_rate,
                c.evictions,
                c.resident_entries,
                c.resident_bytes,
                c.budget_bytes,
                if j + 1 < r.cache.len() { "," } else { "" },
            ));
        }
        out.push_str("      ],\n      \"phase1_sharing\": [\n");
        for (j, p) in r.phase1_sharing.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"batch\": \"{}\",\n",
                    "          \"queries\": {},\n",
                    "          \"per_query_batch_ns\": {},\n",
                    "          \"shared_batch_ns\": {},\n",
                    "          \"batch_speedup_shared_vs_per_query\": {:.2},\n",
                    "          \"per_query_phase1_ns\": {},\n",
                    "          \"shared_phase1_ns\": {},\n",
                    "          \"phase1_speedup_shared_vs_per_query\": {:.2},\n",
                    "          \"cohorts\": {},\n",
                    "          \"distinct_endpoints\": {},\n",
                    "          \"phase1_shared\": {},\n",
                    "          \"cohort_fill\": {:.3},\n",
                    "          \"dedup_ratio\": {:.2},\n",
                    "          \"top_down_edge_scans\": {},\n",
                    "          \"bottom_up_edge_scans\": {}\n",
                    "        }}{}\n",
                ),
                p.batch,
                p.batch_len,
                p.per_query_batch_ns,
                p.shared_batch_ns,
                p.batch_speedup,
                p.per_query_phase1_ns,
                p.shared_phase1_ns,
                p.phase1_speedup,
                p.cohorts,
                p.distinct_endpoints,
                p.phase1_shared,
                p.cohort_fill,
                p.dedup_ratio,
                p.top_down_scans,
                p.bottom_up_scans,
                if j + 1 < r.phase1_sharing.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("      ],\n      \"lane_width\": [\n");
        for (j, l) in r.lane_width.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"batch\": \"{}\",\n",
                    "          \"queries\": {},\n",
                    "          \"distinct_pairs\": {},\n",
                    "          \"per_query_batch_ns\": {},\n",
                    "          \"per_query_phase1_ns\": {},\n",
                    "          \"configs\": [\n",
                ),
                l.batch, l.batch_len, l.distinct_pairs, l.per_query_batch_ns, l.per_query_phase1_ns,
            ));
            for (m, row) in l.rows.iter().enumerate() {
                out.push_str(&format!(
                    concat!(
                        "            {{\"lanes\": {}, \"policy\": \"{}\", ",
                        "\"batch_ns\": {}, \"phase1_ns\": {}, ",
                        "\"phase1_speedup_vs_64_lanes\": {:.2}, ",
                        "\"batch_speedup_vs_per_query\": {:.2}, ",
                        "\"cohorts\": {}, \"distinct_endpoints\": {}, ",
                        "\"bottom_up_edge_scans\": {}}}{}\n",
                    ),
                    row.lanes,
                    row.policy,
                    row.batch_ns,
                    row.phase1_ns,
                    row.phase1_speedup_vs_64,
                    row.batch_speedup_vs_per_query,
                    row.cohorts,
                    row.distinct_endpoints,
                    row.bottom_up_scans,
                    if m + 1 < l.rows.len() { "," } else { "" },
                ));
            }
            out.push_str(&format!(
                "          ]\n        }}{}\n",
                if j + 1 < r.lane_width.len() { "," } else { "" },
            ));
        }
        let d = &r.dynamic;
        out.push_str(&format!(
            concat!(
                "      ],\n",
                "      \"dynamic\": {{\n",
                "        \"queries\": {},\n",
                "        \"unique_queries\": {},\n",
                "        \"rounds\": {},\n",
                "        \"deltas_per_round\": {},\n",
                "        \"update_then_requery_ns\": {},\n",
                "        \"rebuild_then_requery_ns\": {},\n",
                "        \"update_speedup_vs_rebuild\": {:.2},\n",
                "        \"mean_purged_per_round\": {:.2},\n",
                "        \"survivor_rate\": {:.3},\n",
                "        \"overlay_compactions\": {}\n",
                "      }}\n    }}{}\n",
            ),
            d.batch_len,
            d.unique_queries,
            d.rounds,
            d.deltas_per_round,
            d.update_then_requery_ns,
            d.rebuild_then_requery_ns,
            d.update_speedup_vs_rebuild,
            d.mean_purged_per_round,
            d.survivor_rate,
            d.overlay_compactions,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let (gnm, txn, default_threads): (DiGraph, DiGraph, &[usize]) = if args.smoke {
        // Tiny deterministic graphs: the smoke run exists to exercise the
        // parallel + cached paths and the JSON emitter, not to measure.
        let gnm = gnm_random(200, 1_000, 7);
        let txn = TransactionGraph::generate(TransactionGraphConfig {
            accounts: 150,
            background_transactions: 900,
            ..Default::default()
        })
        .full_graph();
        (gnm, txn, &[1, 2])
    } else {
        let gnm = gnm_random(4_000, 24_000, 7);
        let txn = TransactionGraph::generate(TransactionGraphConfig {
            accounts: 3_000,
            background_transactions: 18_000,
            ..Default::default()
        })
        .full_graph();
        (gnm, txn, &[1, 2, 4, 8])
    };
    let thread_counts: Vec<usize> = args
        .threads
        .clone()
        .unwrap_or_else(|| default_threads.to_vec());

    let results = vec![
        run_suite("gnm", gnm, &args, &thread_counts),
        run_suite("transaction", txn, &args, &thread_counts),
    ];
    for r in &results {
        eprintln!(
            "{}: legacy {} ns, cold {} ns, warm {} ns ({:.2}x vs legacy), workspace {} bytes",
            r.name,
            r.legacy_median_ns,
            r.cold_median_ns,
            r.warm_median_ns,
            r.legacy_median_ns as f64 / r.warm_median_ns.max(1) as f64,
            r.peak_workspace_bytes,
        );
        for s in &r.scaling {
            eprintln!(
                "{}: {} threads -> batch {} ns, {:.0} q/s, {:.2}x vs first ladder entry",
                r.name, s.threads, s.batch_median_ns, s.queries_per_sec, s.speedup_vs_first,
            );
        }
        for c in &r.cache {
            eprintln!(
                "{}: cache[{}] cold {} ns -> warm {} ns ({:.2}x), hit rate {:.1}% cold / {:.1}% warm, {} entries, {} bytes",
                r.name,
                c.batch,
                c.cold_batch_ns,
                c.warm_batch_ns,
                c.warm_speedup_vs_cold,
                100.0 * c.cold_hit_rate,
                100.0 * c.warm_hit_rate,
                c.resident_entries,
                c.resident_bytes,
            );
        }
        let d = &r.dynamic;
        eprintln!(
            "{}: dynamic update+requery {} ns vs rebuild+requery {} ns ({:.2}x), {:.2} purged/round, survivor rate {:.1}%",
            r.name,
            d.update_then_requery_ns,
            d.rebuild_then_requery_ns,
            d.update_speedup_vs_rebuild,
            d.mean_purged_per_round,
            100.0 * d.survivor_rate,
        );
        for p in &r.phase1_sharing {
            eprintln!(
                "{}: phase1[{}] per-query {} ns -> shared {} ns ({:.2}x phase-1, {:.2}x batch), {} cohorts, {} lanes for {} queries (dedup {:.2}x, fill {:.0}%), scans {} top-down / {} bottom-up",
                r.name,
                p.batch,
                p.per_query_phase1_ns,
                p.shared_phase1_ns,
                p.phase1_speedup,
                p.batch_speedup,
                p.cohorts,
                p.distinct_endpoints,
                p.phase1_shared,
                p.dedup_ratio,
                100.0 * p.cohort_fill,
                p.top_down_scans,
                p.bottom_up_scans,
            );
        }
        for l in &r.lane_width {
            for row in &l.rows {
                eprintln!(
                    "{}: lane_width[{}] {} lanes / {} -> batch {} ns, phase1 {} ns ({:.2}x vs 64-lane hysteresis, {:.2}x batch vs per-query), {} cohorts, {} lanes filled for {} distinct pairs",
                    r.name,
                    l.batch,
                    row.lanes,
                    row.policy,
                    row.batch_ns,
                    row.phase1_ns,
                    row.phase1_speedup_vs_64,
                    row.batch_speedup_vs_per_query,
                    row.cohorts,
                    row.distinct_endpoints,
                    l.distinct_pairs,
                );
            }
        }
    }
    let json = render_json(&results);
    std::fs::write(&args.out, &json).expect("write benchmark json");
    println!(
        "wrote {}{}",
        args.out,
        if args.smoke { " (smoke)" } else { "" }
    );
}
