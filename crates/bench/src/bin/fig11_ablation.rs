//! Figure 11: effectiveness of the pruning strategies (k = 7).
//!
//! Compares, per dataset, the total query-batch time of:
//! * Naive EVE (single BFS, no forward-looking pruning, no search ordering),
//! * + forward-looking pruning,
//! * + bidirectional search,
//! * + adaptive bidirectional search,
//! * full EVE (adaptive + pruning + search ordering).
//!
//! The ablation runs on the hash-map *reference* pipeline
//! (`Eve::query_reference`): the workspace pipeline propagates over the
//! compacted `G^k_st` CSR, whose space restriction structurally subsumes
//! most of the Theorem 3.6 rule, so disabling the pruning flag there would
//! not reproduce the paper's "Naive EVE" work profile.

use std::time::{Duration, Instant};

use spg_bench::{build_dataset, fmt_ms, HarnessConfig, Table};
use spg_core::{Eve, EveConfig};
use spg_graph::DistanceStrategy;
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let k = 7u32;
    let variants: [(&str, EveConfig); 5] = [
        ("Naive EVE", EveConfig::naive()),
        (
            "+fwd-looking",
            EveConfig {
                distance_strategy: DistanceStrategy::Single,
                forward_looking_pruning: true,
                search_ordering: false,
            },
        ),
        (
            "+bidirectional",
            EveConfig {
                distance_strategy: DistanceStrategy::Bidirectional,
                forward_looking_pruning: true,
                search_ordering: false,
            },
        ),
        (
            "+adaptive",
            EveConfig {
                distance_strategy: DistanceStrategy::AdaptiveBidirectional,
                forward_looking_pruning: true,
                search_ordering: false,
            },
        ),
        ("full EVE (+ordering)", EveConfig::full()),
    ];
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(variants.iter().map(|(name, _)| *name))
        .collect();
    let mut table = Table::new(
        "Figure 11: total time (ms) per pruning configuration, k = 7",
        &headers,
    );
    let datasets = cfg.select_datasets(&[
        "ps", "ye", "wn", "uk", "sf", "bk", "tw", "bs", "gg", "hm", "wt", "lj", "dl", "fr", "hg",
    ]);
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
        if queries.is_empty() {
            continue;
        }
        let mut row = vec![spec.code.to_string()];
        for (_, config) in &variants {
            let eve = Eve::new(&g, *config);
            let mut total = Duration::ZERO;
            for &q in &queries {
                let start = Instant::now();
                let _ = eve.query_reference(q).expect("valid query");
                total += start.elapsed();
            }
            row.push(fmt_ms(total));
        }
        table.add_row(row);
    }
    table.print();
}
