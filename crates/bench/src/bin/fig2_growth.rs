//! Figure 2(b): number of edges in `SPG_k` vs. number of s-t simple paths,
//! for k = 3..8 on the `wn` and `uk` datasets.
//!
//! The paper's point: the path count explodes (roughly exponentially in k)
//! while `|E(SPG_k)|` stays bounded by `|E|`, which is why generating the
//! graph beats enumerating the paths.

use spg_baselines::{pruned_dfs, CountPaths};
use spg_bench::{build_dataset, default_eve, mean_f64, HarnessConfig, Table};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let mut table = Table::new(
        "Figure 2(b): |E(SPG_k)| and #simple paths vs. k (averages per query)",
        &[
            "dataset",
            "k",
            "avg |E(SPG_k)|",
            "avg #paths",
            "paths / edges",
        ],
    );
    for spec in cfg.select_datasets(&["wn", "uk"]) {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        eprintln!(
            "{}: {} vertices, {} edges",
            spec.code,
            g.vertex_count(),
            g.edge_count()
        );
        for k in 3..=8u32 {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            let mut edge_counts = Vec::new();
            let mut path_counts = Vec::new();
            for &q in &queries {
                let spg = eve.query(q).expect("valid query");
                edge_counts.push(spg.edge_count() as f64);
                // Count paths with a cap so a single dense query cannot stall
                // the whole figure; capped queries still show the explosion.
                let mut sink = CountPaths::with_limit(2_000_000);
                pruned_dfs(&g, q.source, q.target, q.k, &mut sink);
                path_counts.push(sink.count() as f64);
            }
            let avg_edges = mean_f64(&edge_counts);
            let avg_paths = mean_f64(&path_counts);
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                format!("{avg_edges:.1}"),
                format!("{avg_paths:.1}"),
                format!(
                    "{:.1}",
                    if avg_edges > 0.0 {
                        avg_paths / avg_edges
                    } else {
                        0.0
                    }
                ),
            ]);
        }
    }
    table.print();
}
