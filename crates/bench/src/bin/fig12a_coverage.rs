//! Figure 12(a): average coverage ratio r_C = |E(SPG_k)| / |E| vs. k across
//! all datasets.

use spg_bench::{build_dataset, default_eve, mean_f64, HarnessConfig, Table};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let datasets = cfg.select_datasets(&[
        "ps", "ye", "wn", "uk", "sf", "bk", "tw", "bs", "gg", "hm", "wt", "lj", "dl", "fr", "hg",
    ]);
    let ks: Vec<u32> = (3..=8).collect();
    let headers: Vec<String> = std::iter::once("dataset".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Figure 12(a): average coverage ratio r_C", &header_refs);
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        let mut row = vec![spec.code.to_string()];
        for &k in &ks {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            let ratios: Vec<f64> = queries
                .iter()
                .map(|&q| eve.query(q).expect("valid query").coverage_ratio(&g))
                .collect();
            row.push(format!("{:.5}", mean_f64(&ratios)));
        }
        table.add_row(row);
    }
    table.print();
}
