//! Table 3: average redundant ratio r_D of the upper-bound graph,
//! r_D = (|E(SPGᵘ_k)| − |E(SPG_k)|) / |E(SPG_k)|, for k = 5..8.

use spg_bench::{build_dataset, default_eve, mean_f64, HarnessConfig, Table};
use spg_workloads::reachable_queries;

fn main() {
    let cfg = HarnessConfig::from_args();
    let datasets = cfg.select_datasets(&[
        "ps", "ye", "wn", "uk", "sf", "bk", "tw", "bs", "gg", "hm", "wt", "lj", "dl", "fr", "hg",
    ]);
    let ks = [5u32, 6, 7, 8];
    let headers: Vec<String> = std::iter::once("dataset".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Table 3: average redundant ratio r_D (%)", &header_refs);
    for spec in datasets {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        let mut row = vec![spec.code.to_string()];
        for &k in &ks {
            let queries = reachable_queries(&g, cfg.queries, k, cfg.seed);
            let ratios: Vec<f64> = queries
                .iter()
                .filter_map(|&q| {
                    let spg = eve.query(q).expect("valid query");
                    spg.stats().redundant_ratio(spg.edge_count())
                })
                .collect();
            row.push(format!("{:.5}", 100.0 * mean_f64(&ratios)));
        }
        table.add_row(row);
    }
    table.print();
}
