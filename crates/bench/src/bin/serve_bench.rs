//! `serve_bench` — process-based latency harness for the online serving
//! engine. Spawns the release `spg-server` binary, waits for its
//! `LISTENING <addr>` readiness line, drives it over real TCP sockets, and
//! writes the `serving` section of `BENCH_6.json`.
//!
//! Two modes:
//!
//! * `--smoke` — the CI end-to-end check. Serves the paper's Figure-1
//!   graph and asserts every response is *bit-identical* to a local
//!   [`Eve::query`]: cache miss, cache hit, three invalid queries (exact
//!   `QueryError` strings), the wire-maximum `k = u32::MAX` (clamped by
//!   the engine), an oversized request (answered, then the connection is
//!   closed), an 8-client concurrent miss on one hot key that must
//!   insert into the cache exactly once, and a streaming `update` round
//!   trip (edge removed, scoped purge observed, requery bit-identical to
//!   a local Eve on the mutated graph, edge restored). Any mismatch
//!   aborts with a non-zero exit.
//! * full (default) — the latency measurement. Four scenarios against a
//!   G(4000, 24000) graph, each reported with p50/p99/p999 microseconds:
//!   `cold_miss` (distinct k=10 queries, empty cache), `hot_key_warm`
//!   (one cached key, closed loop — must beat the cold p50 by ≥ 5×),
//!   `singleflight` (16 clients × one fresh hot key per round — the cache
//!   may compute each key once, a ≥ 90% collapse of duplicate misses),
//!   and `open_loop_mixed` (Poisson arrivals over a hit-heavy mix, with
//!   latency charged from the *scheduled* send time, the standard guard
//!   against coordinated omission).
//!
//! Usage: `cargo run --release -p spg-bench --bin serve_bench -- \
//!     [--smoke] [--out BENCH_6.json] [--server PATH] [--server-log PATH]`
//!
//! `--server` defaults to the `spg-server` binary sitting next to this
//! one (both live in `target/release` after `cargo build --release`).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use spg_core::{Eve, Query};
use spg_graph::generators::gnm_random;
use spg_graph::io::write_edge_list_file;
use spg_graph::DiGraph;
use spg_server::json::Json;
use spg_server::{Reply, SpgClient};
use spg_workloads::{open_loop_poisson, reachable_queries};

struct Args {
    out: String,
    server: Option<PathBuf>,
    server_log: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = "BENCH_6.json".to_string();
    let mut server = None;
    let mut server_log = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--server" => {
                server = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--server needs a path")),
                ))
            }
            "--server-log" => {
                server_log = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--server-log needs a path")),
                ))
            }
            "--smoke" => smoke = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    Args {
        out,
        server,
        server_log,
        smoke,
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("options: --smoke | --out PATH | --server PATH | --server-log PATH");
    std::process::exit(2);
}

/// The `spg-server` binary to spawn: `--server` if given, else the binary
/// sitting next to this one in the target directory.
fn server_binary(args: &Args) -> PathBuf {
    if let Some(path) = &args.server {
        return path.clone();
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.pop();
    path.push(format!("spg-server{}", std::env::consts::EXE_SUFFIX));
    path
}

/// One spawned server process; killed (and reaped) on drop so a panicking
/// scenario can never leak an orphan listener.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawns `binary` with `extra` flags on an ephemeral loopback port and
    /// blocks until its `LISTENING <addr>` readiness line.
    fn spawn(binary: &Path, extra: &[String], log: Option<&Path>) -> ServerProc {
        let stderr = match log {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .unwrap_or_else(|e| panic!("open server log {}: {e}", path.display()));
                Stdio::from(file)
            }
            None => Stdio::inherit(),
        };
        let mut child = Command::new(binary)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(stderr)
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", binary.display()));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let ready = lines
            .next()
            .and_then(Result::ok)
            .unwrap_or_else(|| panic!("{} exited before readiness", binary.display()));
        let addr = ready
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected readiness line {ready:?}"))
            .parse()
            .expect("parse listen address");
        ServerProc { child, addr }
    }

    fn connect(&self) -> SpgClient {
        let client = SpgClient::connect(self.addr).expect("connect to spawned server");
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        client
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Measurement plumbing
// ---------------------------------------------------------------------------

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1_000.0
}

/// One scenario's report: percentiles plus scenario-specific fields
/// (`extra` values are pre-rendered JSON).
struct Scenario {
    name: &'static str,
    requests: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    extra: Vec<(&'static str, String)>,
}

impl Scenario {
    fn from_samples(name: &'static str, mut samples_ns: Vec<u64>) -> Scenario {
        samples_ns.sort_unstable();
        Scenario {
            name,
            requests: samples_ns.len(),
            p50_us: percentile_us(&samples_ns, 0.50),
            p99_us: percentile_us(&samples_ns, 0.99),
            p999_us: percentile_us(&samples_ns, 0.999),
            extra: Vec::new(),
        }
    }

    fn with(mut self, key: &'static str, value: String) -> Scenario {
        self.extra.push((key, value));
        self
    }
}

fn expect_ok(reply: &Reply, context: &str) {
    assert_eq!(reply.status, "ok", "{context}: {reply:?}");
}

/// Reads one u64 out of a `stats` reply, e.g. `("cache", "insertions")`.
fn stat(client: &mut SpgClient, section: &str, field: &str) -> u64 {
    let reply = client.stats(u64::MAX).expect("stats round trip");
    expect_ok(&reply, "stats");
    reply
        .raw
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(spg_server::json::Json::as_u64)
        .unwrap_or_else(|| panic!("stats reply missing {section}.{field}"))
}

// ---------------------------------------------------------------------------
// Full mode
// ---------------------------------------------------------------------------

const FULL_GRAPH: (usize, usize, u64) = (4_000, 24_000, 7);

fn run_full(args: &Args) -> Vec<Scenario> {
    let binary = server_binary(args);
    let (n, m, seed) = FULL_GRAPH;
    let gnm_flag: Vec<String> = vec!["--gnm".into(), format!("{n},{m},{seed}")];
    let graph = gnm_random(n, m, seed);

    // Distinct k=10 queries: ~2.7 ms of engine work each on the reference
    // container, so the hit-vs-miss gap is dominated by compute, not RTT.
    let mut cold = reachable_queries(&graph, 320, 10, 0xC01D);
    cold.sort_unstable_by_key(|q| (q.source, q.target, q.k));
    cold.dedup();
    assert!(cold.len() >= 64, "workload generation failed");

    // --- cold_miss + hot_key_warm: one server, immediate dispatch.
    let log = args.server_log.as_deref();
    let (cold_scenario, hot_scenario) = {
        let server = ServerProc::spawn(
            &binary,
            &[
                gnm_flag.clone(),
                vec!["--batch-deadline-us".into(), "0".into()],
            ]
            .concat(),
            log,
        );
        let mut client = server.connect();
        let mut samples = Vec::with_capacity(cold.len());
        let mut smallest: Option<(usize, Query)> = None;
        for (i, q) in cold.iter().enumerate() {
            let start = Instant::now();
            let reply = client
                .query(i as u64, q.source, q.target, q.k)
                .expect("cold query");
            samples.push(start.elapsed().as_nanos() as u64);
            expect_ok(&reply, "cold query");
            assert_eq!(reply.source.as_deref(), Some("miss"), "distinct cold keys");
            let edges = reply.edges.as_ref().map_or(0, Vec::len);
            if smallest.map_or(true, |(best, _)| edges < best) {
                smallest = Some((edges, *q));
            }
        }
        let cold_scenario = Scenario::from_samples("cold_miss", samples).with("k", "10".into());

        // The hot key is already resident from the cold pass; every query
        // from here on is a pure cache-hit round trip. The key with the
        // smallest answer is used, so the measurement is the engine's hit
        // path + framing, not the transfer time of a 10-hop edge list.
        let (_, hot) = smallest.expect("cold pass answered");
        let rounds = 2_000usize;
        let mut samples = Vec::with_capacity(rounds);
        for i in 0..rounds {
            let start = Instant::now();
            let reply = client
                .query(1_000_000 + i as u64, hot.source, hot.target, hot.k)
                .expect("hot query");
            samples.push(start.elapsed().as_nanos() as u64);
            expect_ok(&reply, "hot query");
            assert_eq!(reply.source.as_deref(), Some("hit"), "hot key stays cached");
        }
        let hits = stat(&mut client, "cache", "hits");
        assert!(
            hits >= rounds as u64,
            "hot pass must be served by the cache"
        );
        (
            cold_scenario,
            Scenario::from_samples("hot_key_warm", samples).with("k", "10".into()),
        )
    };
    let speedup = cold_scenario.p50_us / hot_scenario.p50_us.max(1e-9);
    assert!(
        speedup >= 5.0,
        "warm hot-key p50 ({:.1} us) must beat cold miss p50 ({:.1} us) by >= 5x, got {speedup:.2}x",
        hot_scenario.p50_us,
        cold_scenario.p50_us,
    );
    let hot_scenario = hot_scenario.with("speedup_p50_vs_cold_miss", format!("{speedup:.2}"));

    // --- singleflight: fresh server, a wide admission window so each
    // round's 16 duplicate misses land in one micro-batch.
    let singleflight = {
        const CLIENTS: usize = 16;
        const ROUNDS: usize = 8;
        let server = ServerProc::spawn(
            &binary,
            &[
                gnm_flag.clone(),
                vec!["--batch-deadline-us".into(), "30000".into()],
            ]
            .concat(),
            log,
        );
        // Per-round fresh keys, disjoint from each other by dedup order.
        let keys: Vec<Query> = cold.iter().rev().take(ROUNDS).copied().collect();
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let samples = Arc::new(Mutex::new(Vec::with_capacity(CLIENTS * ROUNDS)));
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let keys = keys.clone();
                let barrier = Arc::clone(&barrier);
                let samples = Arc::clone(&samples);
                let mut client = server.connect();
                thread::spawn(move || {
                    for (round, q) in keys.iter().enumerate() {
                        barrier.wait();
                        let id = (round * CLIENTS + c) as u64;
                        let start = Instant::now();
                        let reply = client
                            .query(id, q.source, q.target, q.k)
                            .expect("singleflight query");
                        let elapsed = start.elapsed().as_nanos() as u64;
                        expect_ok(&reply, "singleflight query");
                        samples.lock().expect("samples").push(elapsed);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("singleflight worker");
        }
        let mut client = server.connect();
        let insertions = stat(&mut client, "cache", "insertions");
        let total = (CLIENTS * ROUNDS) as u64;
        let collapse = 1.0 - insertions as f64 / total as f64;
        assert!(
            collapse >= 0.90,
            "singleflight must collapse >= 90% of {total} duplicate misses, \
             got {insertions} insertions ({:.1}% collapsed)",
            collapse * 100.0,
        );
        let samples = Arc::try_unwrap(samples)
            .expect("workers done")
            .into_inner()
            .expect("samples");
        Scenario::from_samples("singleflight", samples)
            .with("clients", CLIENTS.to_string())
            .with("rounds", ROUNDS.to_string())
            .with("cache_insertions", insertions.to_string())
            .with("collapse_rate", format!("{collapse:.4}"))
    };

    // --- open_loop_mixed: Poisson arrivals over a hit-heavy mix, latency
    // charged from the scheduled send time (coordinated-omission guard).
    let open_loop = {
        const REQUESTS: usize = 400;
        const RATE: f64 = 300.0;
        const WORKERS: usize = 4;
        let server = ServerProc::spawn(&binary, &gnm_flag, log);

        // A pool of 32 hot keys (k=6, tens of microseconds each) warmed
        // up front; every 5th request is a distinct cold k=6 key.
        let mut hot_pool = reachable_queries(&graph, 40, 6, 0x407);
        hot_pool.sort_unstable_by_key(|q| (q.source, q.target, q.k));
        hot_pool.dedup();
        hot_pool.truncate(32);
        let mut cold_pool = reachable_queries(&graph, REQUESTS / 2, 6, 0x11CE);
        cold_pool.sort_unstable_by_key(|q| (q.source, q.target, q.k));
        cold_pool.dedup();
        {
            let mut warmer = server.connect();
            for (i, q) in hot_pool.iter().enumerate() {
                let reply = warmer
                    .query(i as u64, q.source, q.target, q.k)
                    .expect("warm pool");
                expect_ok(&reply, "warm pool");
            }
        }
        let schedule = open_loop_poisson(REQUESTS, RATE, 0x0111);
        let epoch = Instant::now();
        let samples = Arc::new(Mutex::new(Vec::with_capacity(REQUESTS)));
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let schedule = schedule.clone();
                let hot_pool = hot_pool.clone();
                let cold_pool = cold_pool.clone();
                let samples = Arc::clone(&samples);
                let mut client = server.connect();
                thread::spawn(move || {
                    for i in (w..REQUESTS).step_by(WORKERS) {
                        let due = epoch + schedule[i];
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            thread::sleep(wait);
                        }
                        let q = if i % 5 == 0 {
                            cold_pool[(i / 5) % cold_pool.len()]
                        } else {
                            hot_pool[i % hot_pool.len()]
                        };
                        let reply = client
                            .query(i as u64, q.source, q.target, q.k)
                            .expect("open loop query");
                        expect_ok(&reply, "open loop query");
                        // Latency from the *scheduled* arrival, so a busy
                        // worker charges its queueing delay to the tail.
                        let latency = due.elapsed().as_nanos() as u64;
                        samples.lock().expect("samples").push(latency);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("open loop worker");
        }
        let mut client = server.connect();
        let hits = stat(&mut client, "cache", "hits");
        let samples = Arc::try_unwrap(samples)
            .expect("workers done")
            .into_inner()
            .expect("samples");
        Scenario::from_samples("open_loop_mixed", samples)
            .with("offered_rate_per_sec", format!("{RATE:.0}"))
            .with("workers", WORKERS.to_string())
            .with("cache_hits", hits.to_string())
    };

    vec![cold_scenario, hot_scenario, singleflight, open_loop]
}

// ---------------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------------

/// The paper's Figure-1 graph: 8 vertices, 14 edges — every query answers
/// in microseconds even at the clamped maximum hop bound.
fn figure1_graph() -> DiGraph {
    DiGraph::from_edges(
        8,
        [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 1),
            (2, 3),
            (1, 4),
            (4, 5),
            (5, 3),
            (3, 1),
            (5, 0),
            (2, 6),
            (4, 6),
            (6, 7),
            (7, 5),
        ],
    )
}

fn assert_matches_eve(reply: &Reply, eve: &Eve<'_>, q: Query, context: &str) {
    match eve.query(q) {
        Ok(spg) => {
            assert_eq!(reply.status, "ok", "{context}: {reply:?}");
            assert_eq!(
                reply.edges.as_deref(),
                Some(spg.edges()),
                "{context}: wire edges must be bit-identical to Eve::query"
            );
            assert_eq!(
                reply.k,
                Some(spg.query().k),
                "{context}: clamped k must be echoed"
            );
        }
        Err(err) => {
            assert_eq!(reply.status, "error", "{context}: {reply:?}");
            assert_eq!(
                reply.error.as_deref(),
                Some(err.to_string().as_str()),
                "{context}: wire error must be the exact QueryError string"
            );
        }
    }
}

fn run_smoke(args: &Args) -> Vec<Scenario> {
    let binary = server_binary(args);
    let graph = figure1_graph();
    let eve = Eve::with_defaults(&graph);

    // The server loads the same graph from an edge-list file.
    let graph_path = std::env::temp_dir().join("spg_serve_smoke_graph.txt");
    write_edge_list_file(&graph, &graph_path).expect("write smoke graph");
    let server = ServerProc::spawn(
        &binary,
        &[
            "--graph".into(),
            graph_path.display().to_string(),
            "--batch-deadline-us".into(),
            "20000".into(),
            "--max-frame".into(),
            "4096".into(),
        ],
        args.server_log.as_deref(),
    );
    let mut client = server.connect();
    let mut checks = 0usize;

    // Liveness.
    let pong = client.ping(1).expect("ping");
    assert_eq!(pong.status, "ok");
    assert_eq!(pong.id, Some(1));
    checks += 1;

    // Cache miss, then hit — both bit-identical, with the right source.
    let miss = client.query(2, 0, 3, 4).expect("miss");
    assert_matches_eve(&miss, &eve, Query::new(0, 3, 4), "cold query");
    assert_eq!(miss.source.as_deref(), Some("miss"));
    let hit = client.query(3, 0, 3, 4).expect("hit");
    assert_matches_eve(&hit, &eve, Query::new(0, 3, 4), "warm query");
    assert_eq!(hit.source.as_deref(), Some("hit"));
    assert_eq!(hit.edges, miss.edges);
    checks += 2;

    // Invalid queries: the server must return the exact QueryError string.
    for (i, q) in [
        Query::new(5, 5, 4),
        Query::new(999, 1, 4),
        Query::new(0, 3, 0),
    ]
    .into_iter()
    .enumerate()
    {
        let reply = client
            .query(10 + i as u64, q.source, q.target, q.k)
            .expect("invalid query");
        assert_matches_eve(&reply, &eve, q, "invalid query");
        checks += 1;
    }

    // The wire-maximum hop bound is served (clamped), not refused.
    let max_k = client.query(20, 0, 3, u32::MAX).expect("max k");
    assert_matches_eve(&max_k, &eve, Query::new(0, 3, u32::MAX), "k = u32::MAX");
    checks += 1;

    // An oversized request is answered, then the connection is closed;
    // the server itself must keep serving.
    let mut hostile = server.connect();
    hostile.send_raw(&[b' '; 8192]).expect("send oversized");
    let refusal = hostile.recv().expect("oversized frames are answered");
    assert_eq!(refusal.status, "error");
    assert_eq!(refusal.id, None);
    assert!(
        hostile.recv().is_err(),
        "connection must close after an oversized frame"
    );
    assert_eq!(client.ping(21).expect("ping").status, "ok");
    checks += 1;

    // Concurrent duplicate misses on a fresh key: one insertion, eight
    // bit-identical answers.
    let insertions_before = stat(&mut client, "cache", "insertions");
    let hot = Query::new(2, 3, 4);
    let barrier = Arc::new(Barrier::new(8));
    let workers: Vec<_> = (0..8u64)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let mut c = server.connect();
            thread::spawn(move || {
                barrier.wait();
                c.query(30 + i, 2, 3, 4).expect("singleflight query")
            })
        })
        .collect();
    let replies: Vec<Reply> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for reply in &replies {
        assert_matches_eve(reply, &eve, hot, "singleflight smoke");
        assert_eq!(reply.edges, replies[0].edges);
    }
    let insertions = stat(&mut client, "cache", "insertions") - insertions_before;
    assert_eq!(
        insertions, 1,
        "8 concurrent misses on one key must compute exactly once"
    );
    checks += 1;

    // Deadline admission: an already-expired deadline is shed with an
    // explicit `expired` response (the 20ms batch-forming deadline above
    // guarantees the queue wait outlives a 0ms budget), and the robustness
    // counters are exposed — and quiet — on a healthy server.
    client
        .send_query_with(40, 0, 3, 4, None, Some(0))
        .expect("send expiring query");
    let expired = client.recv().expect("expired round trip");
    assert_eq!(expired.status, "expired");
    assert_eq!(
        expired.error.as_deref(),
        Some("deadline expired before execution")
    );
    let shed_expired = stat(&mut client, "server", "shed_expired");
    assert_eq!(shed_expired, 1, "the shed query is counted in wire stats");
    assert_eq!(
        stat(&mut client, "server", "deadline_exceeded"),
        0,
        "nothing was cancelled mid-execution in this smoke"
    );
    assert_eq!(
        stat(&mut client, "server", "panics_isolated"),
        0,
        "no query panicked in this smoke"
    );
    assert_eq!(
        stat(&mut client, "server", "batcher_restarts"),
        0,
        "the batcher thread stayed up"
    );
    checks += 1;

    // Streaming update round trip: remove an edge that lies on cached
    // answers, observe the scoped purge, and check the requery against a
    // local Eve on the mutated graph — then restore the edge and confirm
    // the original answer comes back.
    let removed = client.update(50, &[], &[(2, 3)]).expect("update");
    assert_eq!(removed.status, "ok", "update round trip: {removed:?}");
    assert_eq!(
        removed.raw.get("applied").and_then(Json::as_u64),
        Some(1),
        "one real removal"
    );
    let update_purged = removed
        .raw
        .get("purged")
        .and_then(Json::as_u64)
        .expect("update reply carries the purge count");
    assert!(
        update_purged >= 1,
        "removing (2, 3) must purge the cached entries that cross it"
    );
    let mutated = DiGraph::from_edges(8, graph.edges().filter(|&e| e != (2, 3)));
    let mutated_eve = Eve::with_defaults(&mutated);
    let requery = client.query(51, 0, 3, 4).expect("post-update query");
    assert_eq!(
        requery.source.as_deref(),
        Some("miss"),
        "the purged entry must recompute"
    );
    assert_matches_eve(&requery, &mutated_eve, Query::new(0, 3, 4), "post-update");
    let restored = client.update(52, &[(2, 3)], &[]).expect("restore");
    assert_eq!(restored.status, "ok", "restore round trip: {restored:?}");
    let back = client.query(53, 0, 3, 4).expect("restored query");
    assert_eq!(
        back.edges, miss.edges,
        "restoring the edge restores the original answer"
    );
    let refused = client.update(54, &[(4, 4)], &[]).expect("self-loop update");
    assert_eq!(refused.status, "error", "self-loops are refused");
    assert_eq!(stat(&mut client, "server", "deltas_applied"), 2);
    assert!(stat(&mut client, "server", "entries_purged_scoped") >= update_purged);
    assert_eq!(stat(&mut client, "server", "update_errors"), 1);
    checks += 1;

    let _ = std::fs::remove_file(&graph_path);
    vec![Scenario {
        name: "smoke",
        requests: checks,
        p50_us: 0.0,
        p99_us: 0.0,
        p999_us: 0.0,
        extra: vec![
            ("bit_identical", "true".into()),
            ("singleflight_insertions", insertions.to_string()),
            ("shed_expired", shed_expired.to_string()),
            ("update_purged", update_purged.to_string()),
        ],
    }]
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

fn hardware_json() -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    format!(
        concat!(
            "  \"hardware\": {{\"available_parallelism\": {}, ",
            "\"pointer_width\": {}, \"platform\": \"{}-{}\", ",
            "\"arch\": \"{}\", \"os\": \"{}\", \"family\": \"{}\"}},\n",
        ),
        parallelism,
        usize::BITS,
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::env::consts::FAMILY,
    )
}

fn render_json(scenarios: &[Scenario], smoke: bool) -> String {
    let (n, m, seed) = FULL_GRAPH;
    let mut out = String::from("{\n  \"bench\": 6,\n");
    out.push_str(&hardware_json());
    out.push_str("  \"serving\": {\n");
    out.push_str(&format!(
        "    \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    if smoke {
        out.push_str("    \"graph\": {\"family\": \"figure1\", \"vertices\": 8, \"edges\": 14},\n");
    } else {
        out.push_str(&format!(
            "    \"graph\": {{\"family\": \"gnm\", \"vertices\": {n}, \"edges\": {m}, \"seed\": {seed}}},\n",
        ));
    }
    out.push_str("    \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "      {{\"name\": \"{}\", \"requests\": {}, ",
                "\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}",
            ),
            s.name, s.requests, s.p50_us, s.p99_us, s.p999_us,
        ));
        for (key, value) in &s.extra {
            // Numeric and boolean extras are emitted raw; everything else
            // would need quoting, which no current field does.
            out.push_str(&format!(", \"{key}\": {value}"));
        }
        out.push_str(&format!(
            "}}{}\n",
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let scenarios = if args.smoke {
        run_smoke(&args)
    } else {
        run_full(&args)
    };
    for s in &scenarios {
        eprintln!(
            "{}: {} requests, p50 {:.1} us, p99 {:.1} us, p999 {:.1} us{}",
            s.name,
            s.requests,
            s.p50_us,
            s.p99_us,
            s.p999_us,
            s.extra
                .iter()
                .map(|(k, v)| format!(", {k} {v}"))
                .collect::<String>(),
        );
    }
    let json = render_json(&scenarios, args.smoke);
    std::fs::write(&args.out, &json).expect("write benchmark json");
    println!(
        "wrote {}{}",
        args.out,
        if args.smoke { " (smoke)" } else { "" }
    );
}
