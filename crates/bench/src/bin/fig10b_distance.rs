//! Figure 10(b): average query time as a function of the shortest distance
//! Δ(s, t) between the query endpoints (k = 6, datasets lj and bs; the paper
//! uses 500 queries per distance 1..6).

use spg_bench::{
    build_dataset, default_eve, fmt_ms, mean_duration, run_batch, HarnessConfig, SpgAlgorithm,
    Table,
};
use spg_workloads::QueryGenerator;

fn main() {
    let cfg = HarnessConfig::from_args();
    let k = 6u32;
    let per_distance = (cfg.queries / 2).max(5);
    let mut table = Table::new(
        "Figure 10(b): average query time (ms) vs. Δ(s, t), k = 6",
        &["dataset", "distance", "EVE", "JOIN", "PathEnum"],
    );
    for spec in cfg.select_datasets(&["lj", "bs"]) {
        let g = build_dataset(spec, &cfg);
        let eve = default_eve(&g);
        let mut generator = QueryGenerator::new(&g, cfg.seed);
        for distance in 1..=6u32 {
            let queries = generator.queries_with_distance(per_distance, distance, k);
            if queries.is_empty() {
                continue;
            }
            let avg = |alg: SpgAlgorithm| -> String {
                let runs = run_batch(alg, &g, &eve, &queries, cfg.budget);
                if runs.iter().any(|r| r.timed_out) {
                    "INF".to_string()
                } else {
                    let times: Vec<_> = runs.iter().map(|r| r.elapsed).collect();
                    fmt_ms(mean_duration(&times))
                }
            };
            table.add_row(vec![
                spec.code.to_string(),
                distance.to_string(),
                avg(SpgAlgorithm::Eve),
                avg(SpgAlgorithm::Join),
                avg(SpgAlgorithm::PathEnum),
            ]);
        }
    }
    table.print();
}
