//! # spg-bench — benchmark harness reproducing the paper's tables and figures
//!
//! Every table and figure of the evaluation section has a dedicated binary in
//! `src/bin/` (see DESIGN.md §3 for the experiment index). This library holds
//! the shared machinery:
//!
//! * [`HarnessConfig`] — command-line configuration (`--full`, `--queries N`,
//!   `--datasets wn,uk`, `--seed S`, `--budget-ms M`);
//! * [`Table`] — plain-text / CSV table rendering;
//! * algorithm runners with a wall-clock cutoff, mirroring the paper's "INF
//!   if an algorithm does not terminate within the budget" convention;
//! * summary statistics helpers (mean / median / min / max).
//!
//! The binaries print the same rows/series the paper reports. Absolute
//! numbers differ (simulated, scaled-down datasets on laptop hardware); the
//! shapes — who wins, by roughly what factor, where the crossovers are — are
//! what EXPERIMENTS.md tracks.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use spg_baselines::{join_enumerate_with_stats, EdgeUnion, PathEnumIndex, PathSink};
use spg_core::{Eve, EveConfig, Query};
use spg_graph::{DiGraph, VertexId};
use spg_workloads::{DatasetScale, DatasetSpec, DATASETS};

/// Command-line configuration shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset scale (quick by default, `--full` for the larger graphs).
    pub scale: DatasetScale,
    /// Queries per (dataset, k) setting (the paper uses 1000).
    pub queries: usize,
    /// Dataset codes to run on (defaults to a per-experiment selection).
    pub datasets: Option<Vec<String>>,
    /// Workload seed.
    pub seed: u64,
    /// Per-algorithm, per-query wall-clock budget before a run counts as INF.
    pub budget: Duration,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: DatasetScale::Quick,
            queries: 100,
            datasets: None,
            seed: 0x5EED,
            budget: Duration::from_millis(250),
        }
    }
}

impl HarnessConfig {
    /// Parses the process arguments. Unknown arguments abort with a usage
    /// message so typos do not silently change an experiment.
    pub fn from_args() -> HarnessConfig {
        let mut cfg = HarnessConfig::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => {
                    cfg.scale = DatasetScale::Full;
                    cfg.queries = 1000;
                    cfg.budget = Duration::from_secs(2);
                }
                "--quick" => cfg.scale = DatasetScale::Quick,
                "--queries" => {
                    cfg.queries = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--queries needs a number"));
                }
                "--seed" => {
                    cfg.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--budget-ms" => {
                    let ms: u64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--budget-ms needs a number"));
                    cfg.budget = Duration::from_millis(ms);
                }
                "--datasets" => {
                    let list = args
                        .next()
                        .unwrap_or_else(|| usage("--datasets needs a comma-separated list"));
                    cfg.datasets = Some(list.split(',').map(|s| s.trim().to_string()).collect());
                }
                "--help" | "-h" => usage("usage"),
                other => usage(&format!("unknown argument {other}")),
            }
        }
        cfg
    }

    /// Resolves the dataset selection: the explicit `--datasets` list if
    /// given, otherwise the experiment's default codes.
    pub fn select_datasets(&self, default_codes: &[&str]) -> Vec<&'static DatasetSpec> {
        let codes: Vec<String> = match &self.datasets {
            Some(list) => list.clone(),
            None => default_codes.iter().map(|s| s.to_string()).collect(),
        };
        codes
            .iter()
            .filter_map(|c| {
                let found = DATASETS.iter().find(|d| d.code == c.as_str());
                if found.is_none() {
                    eprintln!("warning: unknown dataset code {c:?} ignored");
                }
                found
            })
            .collect()
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "options: --quick | --full | --queries N | --seed S | --budget-ms M | --datasets a,b,c"
    );
    std::process::exit(2);
}

/// A simple text table with aligned columns and CSV export.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render()); // spg-analyze: allow(no-panic) — the rendered report table is the bench bins' stdout product
    }
}

/// Mean of a slice of durations (zero if empty).
pub fn mean_duration(values: &[Duration]) -> Duration {
    if values.is_empty() {
        return Duration::ZERO;
    }
    values.iter().sum::<Duration>() / values.len() as u32
}

/// Mean of a slice of f64 values (zero if empty).
pub fn mean_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Minimum / median / maximum of a slice of usizes (zeros if empty).
pub fn min_median_max(values: &[usize]) -> (usize, usize, usize) {
    if values.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    (
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1],
    )
}

/// Formats a duration in milliseconds with three decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats a possibly-infinite total time (INF when any query hit the budget).
pub fn fmt_total(total: Option<Duration>) -> String {
    match total {
        Some(d) => fmt_ms(d),
        None => "INF".to_string(),
    }
}

/// Which algorithm generates `SPG_k(s, t)` in a comparison experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpgAlgorithm {
    /// The paper's contribution.
    Eve,
    /// Path enumeration with JOIN, union of edges.
    Join,
    /// Path enumeration with PathEnum, union of edges.
    PathEnum,
    /// JOIN restricted to the `G^k_st` subgraph computed by KHSQ+ (§6.8).
    JoinOnGkst,
    /// PathEnum restricted to `G^k_st` (§6.8).
    PathEnumOnGkst,
}

impl SpgAlgorithm {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            SpgAlgorithm::Eve => "EVE",
            SpgAlgorithm::Join => "JOIN",
            SpgAlgorithm::PathEnum => "PathEnum",
            SpgAlgorithm::JoinOnGkst => "KHSQ+ +JOIN",
            SpgAlgorithm::PathEnumOnGkst => "KHSQ+ +PathEnum",
        }
    }
}

/// Result of answering one query with one algorithm.
#[derive(Debug, Clone, Copy)]
pub struct QueryRun {
    /// Time spent (capped by the budget).
    pub elapsed: Duration,
    /// Edges in the produced simple path graph.
    pub spg_edges: usize,
    /// Estimated peak bytes of the algorithm's working state.
    pub memory_bytes: usize,
    /// `true` if the wall-clock budget expired before completion.
    pub timed_out: bool,
}

/// Edge-union sink that aborts once a wall-clock deadline passes.
struct BudgetedUnion {
    union: EdgeUnion,
    deadline: Instant,
    timed_out: bool,
}

impl BudgetedUnion {
    fn new(budget: Duration) -> Self {
        BudgetedUnion {
            union: EdgeUnion::new(),
            deadline: Instant::now() + budget,
            timed_out: false,
        }
    }
}

impl PathSink for BudgetedUnion {
    fn accept(&mut self, path: &[VertexId]) -> bool {
        if !self.union.accept(path) {
            return false;
        }
        if self.union.path_count() % 256 == 0 && Instant::now() > self.deadline {
            self.timed_out = true;
            return false;
        }
        true
    }
}

/// Walk-count ceiling derived from the per-query time budget: enumerations
/// whose estimated work exceeds it are marked INF without being run, because
/// the deepest enumeration loops (partial-path generation, join pairing)
/// cannot be interrupted mid-flight. The constant assumes a conservative
/// ~20M walk-units per second.
fn cost_ceiling(budget: Duration) -> f64 {
    budget.as_secs_f64() * 20e6
}

fn skipped(start: Instant) -> QueryRun {
    QueryRun {
        elapsed: start.elapsed(),
        spg_edges: 0,
        memory_bytes: 0,
        timed_out: true,
    }
}

/// Answers one query with the chosen algorithm, honouring the budget.
pub fn run_query(
    algorithm: SpgAlgorithm,
    g: &DiGraph,
    eve: &Eve<'_>,
    query: Query,
    budget: Duration,
) -> QueryRun {
    let start = Instant::now();
    match algorithm {
        SpgAlgorithm::Eve => {
            let spg = eve.query(query).expect("workload queries are valid"); // spg-analyze: allow(no-panic) — generated workload queries are in-range by construction
            QueryRun {
                elapsed: start.elapsed(),
                spg_edges: spg.edge_count(),
                memory_bytes: spg.stats().memory.peak_bytes(),
                timed_out: false,
            }
        }
        SpgAlgorithm::Join => {
            let index = PathEnumIndex::build(g, query.source, query.target, query.k);
            if index.estimated_join_cost() > cost_ceiling(budget) {
                return skipped(start);
            }
            let mut sink = BudgetedUnion::new(budget);
            let stats =
                join_enumerate_with_stats(g, query.source, query.target, query.k, &mut sink);
            QueryRun {
                elapsed: start.elapsed(),
                spg_edges: sink.union.edge_count(),
                memory_bytes: stats.partial_bytes,
                timed_out: sink.timed_out,
            }
        }
        SpgAlgorithm::PathEnum => {
            let index = PathEnumIndex::build(g, query.source, query.target, query.k);
            let memory = index.memory_bytes();
            let cheapest = index.estimated_dfs_cost().min(index.estimated_join_cost());
            if cheapest > cost_ceiling(budget) {
                return skipped(start);
            }
            let mut sink = BudgetedUnion::new(budget);
            index.enumerate(&mut sink);
            QueryRun {
                elapsed: start.elapsed(),
                spg_edges: sink.union.edge_count(),
                memory_bytes: memory,
                timed_out: sink.timed_out,
            }
        }
        SpgAlgorithm::JoinOnGkst | SpgAlgorithm::PathEnumOnGkst => {
            let (gkst, _) = spg_baselines::khsq_plus(g, query.source, query.target, query.k);
            let restricted = gkst.to_graph(g.vertex_count());
            let index = PathEnumIndex::build(&restricted, query.source, query.target, query.k);
            let mut sink = BudgetedUnion::new(budget);
            match algorithm {
                SpgAlgorithm::JoinOnGkst => {
                    if index.estimated_join_cost() > cost_ceiling(budget) {
                        return skipped(start);
                    }
                    join_enumerate_with_stats(
                        &restricted,
                        query.source,
                        query.target,
                        query.k,
                        &mut sink,
                    );
                }
                _ => {
                    let cheapest = index.estimated_dfs_cost().min(index.estimated_join_cost());
                    if cheapest > cost_ceiling(budget) {
                        return skipped(start);
                    }
                    index.enumerate(&mut sink);
                }
            }
            QueryRun {
                elapsed: start.elapsed(),
                spg_edges: sink.union.edge_count(),
                memory_bytes: restricted.memory_bytes(),
                timed_out: sink.timed_out,
            }
        }
    }
}

/// Sums per-query times for one algorithm; `None` (= INF) if any query timed
/// out, matching the paper's Figure 8 convention.
pub fn total_time(runs: &[QueryRun]) -> Option<Duration> {
    if runs.iter().any(|r| r.timed_out) {
        None
    } else {
        Some(runs.iter().map(|r| r.elapsed).sum())
    }
}

/// Runs a whole query batch with one algorithm.
pub fn run_batch(
    algorithm: SpgAlgorithm,
    g: &DiGraph,
    eve: &Eve<'_>,
    queries: &[Query],
    budget: Duration,
) -> Vec<QueryRun> {
    queries
        .iter()
        .map(|&q| run_query(algorithm, g, eve, q, budget))
        .collect()
}

/// Builds a graph for a dataset at the configured scale.
pub fn build_dataset(spec: &DatasetSpec, cfg: &HarnessConfig) -> DiGraph {
    spec.build(cfg.scale)
}

/// Convenience constructor used by all binaries.
pub fn default_eve(g: &DiGraph) -> Eve<'_> {
    Eve::new(g, EveConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_workloads::reachable_queries;

    #[test]
    fn table_rendering_and_csv() {
        let mut t = Table::new("demo", &["a", "bee", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["10".into(), "20".into(), "30".into()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("bee"));
        assert_eq!(t.row_count(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,bee,c\n"));
        assert!(csv.contains("10,20,30"));
    }

    #[test]
    fn statistics_helpers() {
        assert_eq!(
            mean_duration(&[Duration::from_millis(2), Duration::from_millis(4)]),
            Duration::from_millis(3)
        );
        assert_eq!(mean_duration(&[]), Duration::ZERO);
        assert_eq!(mean_f64(&[1.0, 3.0]), 2.0);
        assert_eq!(min_median_max(&[5, 1, 9]), (1, 5, 9));
        assert_eq!(min_median_max(&[]), (0, 0, 0));
        assert_eq!(fmt_total(None), "INF");
        assert!(!fmt_total(Some(Duration::from_millis(3))).is_empty());
    }

    #[test]
    fn all_algorithms_agree_on_edge_counts_within_budget() {
        let g = spg_graph::generators::gnm_random(60, 300, 5);
        let eve = default_eve(&g);
        let queries = reachable_queries(&g, 5, 5, 3);
        let generous = Duration::from_secs(5);
        for &q in &queries {
            let reference = run_query(SpgAlgorithm::Eve, &g, &eve, q, generous);
            for alg in [
                SpgAlgorithm::Join,
                SpgAlgorithm::PathEnum,
                SpgAlgorithm::JoinOnGkst,
                SpgAlgorithm::PathEnumOnGkst,
            ] {
                let run = run_query(alg, &g, &eve, q, generous);
                assert!(!run.timed_out, "{} timed out unexpectedly", alg.name());
                assert_eq!(run.spg_edges, reference.spg_edges, "{}", alg.name());
            }
        }
        let runs = run_batch(SpgAlgorithm::Eve, &g, &eve, &queries, generous);
        assert!(total_time(&runs).is_some());
    }

    #[test]
    fn dataset_selection_resolves_codes() {
        let cfg = HarnessConfig::default();
        let selected = cfg.select_datasets(&["wn", "uk"]);
        assert_eq!(selected.len(), 2);
        let cfg2 = HarnessConfig {
            datasets: Some(vec!["ps".into(), "nope".into()]),
            ..Default::default()
        };
        let selected2 = cfg2.select_datasets(&["wn"]);
        assert_eq!(selected2.len(), 1);
        assert_eq!(selected2[0].code, "ps");
    }
}
