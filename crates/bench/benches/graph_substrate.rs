//! Criterion micro-benchmarks for the graph substrate: CSR construction,
//! BFS strategies and essential-vertex set operations.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Short measurement windows keep the full `cargo bench` run laptop-friendly.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

use spg_core::EvSet;
use spg_graph::generators::{gnm_random, preferential_attachment};
use spg_graph::traversal::{bfs_distances_from, BfsOptions};
use spg_graph::{DiGraph, GraphBuilder};

fn bench_graph_construction(c: &mut Criterion) {
    let edges: Vec<(u32, u32)> = gnm_random(5_000, 40_000, 3).edges().collect();
    c.bench_function("csr_build_40k_edges", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(5_000, edges.len());
            builder.extend_edges(edges.iter().copied());
            std::hint::black_box(builder.build())
        })
    });
}

fn bench_bfs(c: &mut Criterion) {
    let g: DiGraph = preferential_attachment(20_000, 6, 0.3, 5);
    let mut group = c.benchmark_group("bounded_bfs");
    for depth in [2u32, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| std::hint::black_box(bfs_distances_from(&g, 0, BfsOptions::bounded(depth))))
        });
    }
    group.finish();
}

fn bench_evset_operations(c: &mut Criterion) {
    let a = EvSet::from_vertices((0..8).map(|i| i * 3));
    let b = EvSet::from_vertices((0..8).map(|i| i * 2 + 1));
    c.bench_function("evset_intersect_with_added", |bencher| {
        bencher.iter(|| std::hint::black_box(a.intersect_with_added(&b, 13)))
    });
    c.bench_function("evset_is_disjoint", |bencher| {
        bencher.iter(|| std::hint::black_box(a.is_disjoint(&b)))
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_graph_construction, bench_bfs, bench_evset_operations
}
criterion_main!(benches);
