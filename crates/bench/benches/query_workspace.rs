//! Criterion benchmark for the reusable `QueryWorkspace` hot path.
//!
//! Three variants answer the same query batch:
//!
//! * `legacy_hashmap` — the pre-compaction hash-map pipeline
//!   (`Eve::query_reference`), the baseline this PR's acceptance criterion
//!   measures against;
//! * `cold_workspace` — the flat pipeline with a fresh workspace per query
//!   (`Eve::query`), isolating the algorithmic win from the reuse win;
//! * `warm_workspace` — the flat pipeline on one long-lived workspace
//!   (`Eve::query_with`), the intended batch-serving configuration.
//!
//! Plus a batch-throughput case that measures whole-batch latency on the
//! warm workspace, mirroring how a query server would drain a request queue.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spg_core::{Eve, Query, QueryWorkspace};
use spg_graph::generators::{gnm_random, TransactionGraph, TransactionGraphConfig};
use spg_graph::DiGraph;
use spg_workloads::reachable_queries;

/// Short measurement windows keep the full `cargo bench` run laptop-friendly.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

/// The k = 6 suite the acceptance criterion references: a mid-size gnm graph
/// and the fraud case study's transaction network.
fn suites() -> Vec<(&'static str, DiGraph, Vec<Query>)> {
    let gnm = gnm_random(4_000, 24_000, 7);
    let txn = TransactionGraph::generate(TransactionGraphConfig {
        accounts: 3_000,
        background_transactions: 18_000,
        ..Default::default()
    })
    .full_graph();
    [("gnm", gnm), ("transaction", txn)]
        .into_iter()
        .map(|(name, g)| {
            let queries = reachable_queries(&g, 48, 6, 0x5EED);
            assert!(!queries.is_empty(), "{name}: workload generation failed");
            (name, g, queries)
        })
        .collect()
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    for (name, g, queries) in suites() {
        let eve = Eve::with_defaults(&g);
        let mut group = c.benchmark_group(format!("query_workspace/{name}"));
        group.bench_function(BenchmarkId::from_parameter("legacy_hashmap"), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(eve.query_reference(q).unwrap());
                }
            })
        });
        group.bench_function(BenchmarkId::from_parameter("cold_workspace"), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(eve.query(q).unwrap());
                }
            })
        });
        let mut ws = QueryWorkspace::new();
        group.bench_function(BenchmarkId::from_parameter("warm_workspace"), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(eve.query_with(&mut ws, q).unwrap());
                }
            })
        });
        group.finish();
    }
}

/// Whole-batch throughput on a warm workspace: one timing covers draining
/// the entire shuffled batch, the way a server loop would.
fn bench_batch_throughput(c: &mut Criterion) {
    let g = gnm_random(4_000, 24_000, 7);
    let eve = Eve::with_defaults(&g);
    // A larger mixed-k batch so allocator effects would show if present.
    let mut batch: Vec<Query> = Vec::new();
    for k in [4u32, 6, 8] {
        batch.extend(reachable_queries(&g, 32, k, 0xBA7C4));
    }
    let mut ws = QueryWorkspace::new();
    let mut edges_total = 0usize;
    c.bench_function("query_workspace/batch_96_queries_warm", |b| {
        b.iter(|| {
            edges_total = 0;
            for &q in &batch {
                edges_total += eve.query_with(&mut ws, q).unwrap().edge_count();
            }
            std::hint::black_box(edges_total);
        })
    });
    assert!(edges_total > 0);
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_cold_vs_warm, bench_batch_throughput
}
criterion_main!(benches);
