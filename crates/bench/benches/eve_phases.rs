//! Criterion micro-benchmarks for the individual EVE phases (distance index,
//! essential-vertex propagation, edge labeling, verification, full pipeline).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Short measurement windows keep the full `cargo bench` run laptop-friendly.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

use spg_core::labeling::UpperBoundGraph;
use spg_core::propagation::Propagation;
use spg_core::verification::verify_undetermined;
use spg_core::{Eve, EveConfig, Query};
use spg_graph::{DiGraph, DistanceIndex, DistanceStrategy};
use spg_workloads::{dataset_by_code, reachable_queries, DatasetScale};

fn setup() -> (DiGraph, Vec<Query>) {
    let g = dataset_by_code("ye")
        .expect("dataset registered")
        .build(DatasetScale::Quick);
    let queries = reachable_queries(&g, 8, 6, 42);
    (g, queries)
}

fn bench_distance_strategies(c: &mut Criterion) {
    let (g, queries) = setup();
    let mut group = c.benchmark_group("distance_index");
    for strategy in DistanceStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(DistanceIndex::compute(
                            &g, q.source, q.target, q.k, strategy,
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let (g, queries) = setup();
    let mut group = c.benchmark_group("propagation");
    for pruning in [false, true] {
        let label = if pruning {
            "with_pruning"
        } else {
            "no_pruning"
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &pruning,
            |b, &pruning| {
                b.iter(|| {
                    for &q in &queries {
                        let idx = DistanceIndex::compute(
                            &g,
                            q.source,
                            q.target,
                            q.k,
                            DistanceStrategy::AdaptiveBidirectional,
                        );
                        std::hint::black_box(Propagation::forward(&g, q, &idx, pruning));
                        std::hint::black_box(Propagation::backward(&g, q, &idx, pruning));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_labeling_and_verification(c: &mut Criterion) {
    let (g, queries) = setup();
    // Pre-compute the inputs so only the phase under test is measured.
    let prepared: Vec<_> = queries
        .iter()
        .map(|&q| {
            let idx = DistanceIndex::compute(
                &g,
                q.source,
                q.target,
                q.k,
                DistanceStrategy::AdaptiveBidirectional,
            );
            let fwd = Propagation::forward(&g, q, &idx, true);
            let bwd = Propagation::backward(&g, q, &idx, true);
            (q, idx, fwd, bwd)
        })
        .collect();
    c.bench_function("edge_labeling", |b| {
        b.iter(|| {
            for (q, idx, fwd, bwd) in &prepared {
                std::hint::black_box(UpperBoundGraph::build(&g, *q, idx, fwd, bwd));
            }
        })
    });
    let uppers: Vec<_> = prepared
        .iter()
        .map(|(q, idx, fwd, bwd)| (*q, UpperBoundGraph::build(&g, *q, idx, fwd, bwd)))
        .collect();
    c.bench_function("verification", |b| {
        b.iter(|| {
            for (q, ub) in &uppers {
                std::hint::black_box(verify_undetermined(ub, *q));
            }
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let (g, queries) = setup();
    let mut group = c.benchmark_group("full_query");
    // The full/naive ablation runs on the hash-map reference pipeline: the
    // workspace pipeline's space compaction structurally subsumes most of
    // the pruning being ablated (see `EveConfig::forward_looking_pruning`).
    // The workspace pipeline itself is measured by the `query_workspace`
    // bench.
    for (label, config) in [("full", EveConfig::full()), ("naive", EveConfig::naive())] {
        let eve = Eve::new(&g, config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &eve, |b, eve| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(eve.query_reference(q).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_distance_strategies,
    bench_propagation,
    bench_labeling_and_verification,
    bench_full_pipeline

}
criterion_main!(benches);
