//! Criterion comparison of EVE against the enumeration baselines for
//! generating `SPG_k(s, t)` (the micro-benchmark companion to Figure 8).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Short measurement windows keep the full `cargo bench` run laptop-friendly.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

use spg_baselines::{spg_by_enumeration, spg_by_enumeration_on_gkst, EnumerationAlgorithm};
use spg_core::{Eve, EveConfig, Query};
use spg_graph::DiGraph;
use spg_workloads::{dataset_by_code, reachable_queries, DatasetScale};

fn setup(code: &str, k: u32) -> (DiGraph, Vec<Query>) {
    let g = dataset_by_code(code)
        .expect("dataset registered")
        .build(DatasetScale::Quick);
    let queries = reachable_queries(&g, 5, k, 7);
    (g, queries)
}

fn bench_spg_generation(c: &mut Criterion) {
    for (code, k) in [("bk", 4u32), ("bk", 6), ("tw", 6)] {
        let (g, queries) = setup(code, k);
        let eve = Eve::new(&g, EveConfig::default());
        let mut group = c.benchmark_group(format!("spg_{code}_k{k}"));
        group.bench_function(BenchmarkId::from_parameter("EVE"), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(eve.query(q).unwrap());
                }
            })
        });
        for alg in [EnumerationAlgorithm::Join, EnumerationAlgorithm::PathEnum] {
            group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
                b.iter(|| {
                    for &q in &queries {
                        std::hint::black_box(spg_by_enumeration(alg, &g, q.source, q.target, q.k));
                    }
                })
            });
            group.bench_function(
                BenchmarkId::from_parameter(format!("KHSQ+_{}", alg.name())),
                |b| {
                    b.iter(|| {
                        for &q in &queries {
                            std::hint::black_box(spg_by_enumeration_on_gkst(
                                alg, &g, q.source, q.target, q.k,
                            ));
                        }
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_spg_generation
}
criterion_main!(benches);
