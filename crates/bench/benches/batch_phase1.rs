//! Criterion benchmark for the cohort-shared MS-BFS Phase 1.
//!
//! Two comparisons on a fraud-ring-shaped batch (many queries fanning out
//! from few sources into few targets — the shape the cohort dedup targets):
//!
//! * **per-query vs shared** — `BatchExecutor` with `shared_phase1(false)`
//!   (one hop-bounded BFS pair per query) against the default cohort path
//!   (one MS-BFS pass per direction per ≤ 64-pair cohort), single worker so
//!   the difference is sharing, not parallelism;
//! * **top-down-only vs direction-optimizing** — the shared path with the
//!   Beamer switch disabled against the default per-level α/β switching;
//! * **64-lane vs 256-lane cohorts** — the shared path capped at one-word
//!   lane blocks against the default four-word blocks, on a wide fraud
//!   ring whose distinct-pair count overflows a single 64-lane cohort.
//!
//! A mixed uniform batch is included as the low-dedup control: sharing must
//! still win (or at least not lose) when endpoint pairs rarely repeat — the
//! cost model dissolves unprofitable cohorts into per-query singletons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spg_core::{BatchExecutor, Eve, LaneWidth};
use spg_graph::generators::gnm_random;
use spg_graph::FrontierMode;
use spg_workloads::{mixed_k_queries, shared_endpoint_queries};

fn bench_batch_phase1(c: &mut Criterion) {
    let g = gnm_random(3_000, 18_000, 7);
    let eve = Eve::with_defaults(&g);
    let shapes = [
        (
            "shared_endpoint",
            shared_endpoint_queries(&g, 256, &[4, 6], 8, 8, 0xFA4D),
        ),
        (
            "shared_wide",
            // Asymmetric pools (many sources, few targets): every narrow
            // cohort re-walks the same source set, which is exactly the
            // repeated work a wider lane block collapses.
            shared_endpoint_queries(&g, 384, &[6, 6], 64, 4, 0x1A4E),
        ),
        (
            "mixed_uniform",
            mixed_k_queries(&g, 256, &[2, 4, 6], 0xBA7C),
        ),
    ];

    let mut group = c.benchmark_group("batch_phase1");
    for (shape, batch) in &shapes {
        assert!(!batch.is_empty(), "{shape}: workload generation failed");
        let per_query = BatchExecutor::new(1).shared_phase1(false);
        let shared = BatchExecutor::new(1);
        let narrow = BatchExecutor::new(1).phase1_lanes(LaneWidth::W64);
        let top_down = BatchExecutor::new(1).phase1_mode(FrontierMode::TopDownOnly);

        // Sanity: all four paths agree before anything is timed.
        let reference = per_query.run(&eve, batch);
        for executor in [&shared, &narrow, &top_down] {
            for (a, b) in executor.run(&eve, batch).iter().zip(&reference) {
                assert_eq!(
                    a.as_ref().unwrap().edges(),
                    b.as_ref().unwrap().edges(),
                    "shared and per-query paths diverged"
                );
            }
        }

        group.bench_with_input(
            BenchmarkId::new("per_query", shape),
            batch.as_slice(),
            |b, batch| b.iter(|| per_query.run(&eve, batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("shared_lanes256", shape),
            batch.as_slice(),
            |b, batch| b.iter(|| shared.run(&eve, batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("shared_lanes64", shape),
            batch.as_slice(),
            |b, batch| b.iter(|| narrow.run(&eve, batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("shared_top_down_only", shape),
            batch.as_slice(),
            |b, batch| b.iter(|| top_down.run(&eve, batch)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_phase1);
criterion_main!(benches);
