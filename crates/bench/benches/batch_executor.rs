//! Criterion benchmark for the parallel [`BatchExecutor`].
//!
//! One timing covers draining a whole batch — the unit a serving frontend
//! cares about. Variants:
//!
//! * `sequential_query_batch` — [`Eve::query_batch`] on one reused
//!   workspace, the single-threaded reference;
//! * `executor_Nt` — [`BatchExecutor::run`] at 1 / 2 / 4 threads, each
//!   worker owning a private workspace behind the atomic chunked cursor.
//!
//! The 1-thread executor isolates the executor overhead (slot vector,
//! cursor, stats) from actual parallelism; on a multi-core machine the
//! 2- and 4-thread rows show the scaling. Batches are the mixed-`k`,
//! hub-skewed and hit/miss shapes from `spg_workloads::batch`, because those
//! are the production shapes batch processing targets.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spg_core::{BatchExecutor, Eve, Query};
use spg_graph::generators::gnm_random;
use spg_graph::DiGraph;
use spg_workloads::{hit_miss_queries, mixed_k_queries, skewed_queries};

/// Short measurement windows keep the full `cargo bench` run laptop-friendly.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

fn batches(g: &DiGraph) -> Vec<(&'static str, Vec<Query>)> {
    vec![
        ("mixed_k", mixed_k_queries(g, 64, &[4, 6, 8], 0x5EED)),
        ("skewed", skewed_queries(g, 64, 6, 16, 0.8, 0x5EED)),
        ("hit_miss", hit_miss_queries(g, 64, 6, 0.5, 0x5EED)),
    ]
}

fn bench_batch_executor(c: &mut Criterion) {
    let g = gnm_random(4_000, 24_000, 7);
    let eve = Eve::with_defaults(&g);
    for (shape, batch) in batches(&g) {
        assert!(!batch.is_empty(), "{shape}: workload generation failed");
        let mut group = c.benchmark_group(format!("batch_executor/{shape}"));
        group.bench_function(BenchmarkId::from_parameter("sequential_query_batch"), |b| {
            b.iter(|| std::hint::black_box(eve.query_batch(&batch)))
        });
        for threads in [1usize, 2, 4] {
            let executor = BatchExecutor::new(threads);
            group.bench_function(
                BenchmarkId::from_parameter(format!("executor_{threads}t")),
                |b| b.iter(|| std::hint::black_box(executor.run(&eve, &batch))),
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_batch_executor
}
criterion_main!(benches);
