//! Criterion benchmark for the versioned result cache.
//!
//! One timing covers draining a whole batch through the sequential cached
//! path — the unit a serving frontend cares about. Variants per batch shape:
//!
//! * `uncached` — [`Eve::query_batch`] on one reused workspace, the
//!   cache-free reference;
//! * `cached_cold` — [`CachedEve::query_batch`] starting from an *empty*
//!   cache each iteration (`clear` + misses compute-then-publish): the
//!   worst case, measuring insert overhead on top of the pipeline;
//! * `cached_warm` — [`CachedEve::query_batch`] on a pre-populated cache:
//!   the steady state of a hot fraud workload, where every query skips
//!   phases 1–3 and pays only a shard lock, a hash probe and the answer
//!   clone.
//!
//! Shapes: `repeat_heavy` (exact hot-key repeats — the cache's target
//! workload) and `skewed` (hub-skewed endpoints, few exact repeats — the
//! honest adversarial shape where a cold cache buys little).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spg_core::{CachedEve, Eve, Query, SpgCache};
use spg_graph::generators::gnm_random;
use spg_graph::VersionedGraph;
use spg_workloads::{repeat_heavy_queries, skewed_queries};

/// Short measurement windows keep the full `cargo bench` run laptop-friendly.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

fn batches(vg: &VersionedGraph) -> Vec<(&'static str, Vec<Query>)> {
    vec![
        (
            "repeat_heavy",
            repeat_heavy_queries(vg.graph(), 128, &[4, 6], 24, 0.7, 0xCACE),
        ),
        (
            "skewed",
            skewed_queries(vg.graph(), 128, 6, 16, 0.8, 0x5EED),
        ),
    ]
}

fn bench_result_cache(c: &mut Criterion) {
    let vg = VersionedGraph::new(gnm_random(4_000, 24_000, 7));
    let eve = Eve::with_defaults(vg.graph());
    for (shape, batch) in batches(&vg) {
        assert!(!batch.is_empty(), "{shape}: workload generation failed");
        let mut group = c.benchmark_group(format!("result_cache/{shape}"));
        group.bench_function(BenchmarkId::from_parameter("uncached"), |b| {
            b.iter(|| std::hint::black_box(eve.query_batch(&batch)))
        });

        let cache = SpgCache::new(64 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        group.bench_function(BenchmarkId::from_parameter("cached_cold"), |b| {
            b.iter(|| {
                cache.clear();
                std::hint::black_box(cached.query_batch(&batch))
            })
        });

        // Populate once, then measure the all-hits steady state.
        cache.clear();
        let _ = cached.query_batch(&batch);
        group.bench_function(BenchmarkId::from_parameter("cached_warm"), |b| {
            b.iter(|| std::hint::black_box(cached.query_batch(&batch)))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_result_cache
}
criterion_main!(benches);
