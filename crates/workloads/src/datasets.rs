//! Synthetic dataset registry mirroring Table 2 of the paper.
//!
//! The paper evaluates on 15 real networks from NetworkRepository, SNAP and
//! Konect, from 3.1K to 89M vertices. Those downloads are unavailable in
//! this environment and the largest of them would not fit a laptop anyway,
//! so every dataset is *simulated*: a deterministic generator from
//! [`spg_graph::generators`] with the same name, the same broad family, a
//! matching density regime (average degree) and a heavily scaled-down vertex
//! count. DESIGN.md §2.3 documents why this substitution preserves the
//! behaviours the evaluation measures (path-count explosion vs. bounded
//! `|E(SPG_k)|`, dense vs. sparse neighbourhoods, degree skew).
//!
//! Every dataset is identified by the paper's two-letter code (`ps`, `ye`,
//! `wn`, …). [`DatasetSpec::build`] produces the graph deterministically.

use spg_graph::generators::{
    community_graph, gnm_random, power_law_configuration, preferential_attachment,
};
use spg_graph::{DegreeStats, DiGraph};

/// Graph family used to pick the generator that simulates a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// Dense homogeneous matrices (economic / brain networks): Erdős–Rényi.
    DenseUniform,
    /// Biological interaction networks: community structure with dense blocks.
    Community,
    /// Web graphs: preferential attachment with heavy-tailed in-degrees.
    Web,
    /// Social / communication networks: power-law configuration model.
    Social,
}

/// Scale factor applied to the dataset sizes.
///
/// `Quick` keeps every graph below ~20K edges so the full experiment matrix
/// runs in seconds; `Full` targets the hundreds-of-thousands-of-edges range,
/// which is the largest laptop-friendly setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DatasetScale {
    /// Small graphs for smoke tests and CI.
    #[default]
    Quick,
    /// Larger graphs for the reported experiments.
    Full,
}

/// Specification of one simulated dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Two-letter code used in the paper (e.g. `"wn"`).
    pub code: &'static str,
    /// Full dataset name from Table 2 (e.g. `"bio-WormNet-v3"`).
    pub paper_name: &'static str,
    /// Family that selects the simulating generator.
    pub family: GraphFamily,
    /// Number of vertices in the paper's original dataset.
    pub paper_vertices: u64,
    /// Number of edges in the paper's original dataset.
    pub paper_edges: u64,
    /// Average degree reported in Table 2.
    pub paper_avg_degree: u32,
    /// RNG seed for deterministic generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// Vertex count used at the given scale.
    pub fn scaled_vertices(&self, scale: DatasetScale) -> usize {
        let base = match scale {
            DatasetScale::Quick => 400usize,
            DatasetScale::Full => 4_000usize,
        };
        // Larger originals get proportionally (but sub-linearly) larger
        // simulations, capped to keep everything laptop-friendly.
        let magnitude = (self.paper_vertices as f64).log10().max(3.0) - 2.0;
        ((base as f64) * magnitude).round() as usize
    }

    /// Target average degree at the given scale (capped so the densest
    /// simulated graphs stay tractable).
    pub fn scaled_avg_degree(&self, scale: DatasetScale) -> f64 {
        let cap = match scale {
            DatasetScale::Quick => 24.0,
            DatasetScale::Full => 48.0,
        };
        (self.paper_avg_degree as f64).min(cap).max(2.0)
    }

    /// Deterministically builds the simulated graph.
    pub fn build(&self, scale: DatasetScale) -> DiGraph {
        let n = self.scaled_vertices(scale);
        let avg = self.scaled_avg_degree(scale);
        let m = (n as f64 * avg) as usize;
        match self.family {
            GraphFamily::DenseUniform => gnm_random(n, m, self.seed),
            GraphFamily::Community => {
                let communities = (n / 60).clamp(2, 24);
                let block = (n / communities).max(2) as f64;
                // p_in chosen so intra-community edges alone deliver ~80% of
                // the requested degree.
                let p_in = (0.8 * avg / block).min(0.9);
                let p_out = (0.2 * avg / n as f64).min(0.1);
                community_graph(n, communities, p_in, p_out, self.seed)
            }
            GraphFamily::Web => {
                let out_per_vertex = (avg / 1.3).round().max(1.0) as usize;
                preferential_attachment(n, out_per_vertex, 0.3, self.seed)
            }
            GraphFamily::Social => power_law_configuration(n, avg, 2.2, self.seed),
        }
    }

    /// Convenience: build and report the degree statistics.
    pub fn build_with_stats(&self, scale: DatasetScale) -> (DiGraph, DegreeStats) {
        let g = self.build(scale);
        let stats = DegreeStats::of(&g);
        (g, stats)
    }
}

/// The 15 datasets of Table 2, in the paper's order.
pub const DATASETS: [DatasetSpec; 15] = [
    DatasetSpec {
        code: "ps",
        paper_name: "econ-psmigr3",
        family: GraphFamily::DenseUniform,
        paper_vertices: 3_100,
        paper_edges: 540_000,
        paper_avg_degree: 172,
        seed: 0xA001,
    },
    DatasetSpec {
        code: "ye",
        paper_name: "bio-grid-yeast",
        family: GraphFamily::Community,
        paper_vertices: 6_000,
        paper_edges: 314_000,
        paper_avg_degree: 52,
        seed: 0xA002,
    },
    DatasetSpec {
        code: "wn",
        paper_name: "bio-WormNet-v3",
        family: GraphFamily::Community,
        paper_vertices: 16_000,
        paper_edges: 763_000,
        paper_avg_degree: 47,
        seed: 0xA003,
    },
    DatasetSpec {
        code: "uk",
        paper_name: "web-uk-2005",
        family: GraphFamily::Web,
        paper_vertices: 130_000,
        paper_edges: 12_000_000,
        paper_avg_degree: 91,
        seed: 0xA004,
    },
    DatasetSpec {
        code: "sf",
        paper_name: "web-Stanford",
        family: GraphFamily::Web,
        paper_vertices: 282_000,
        paper_edges: 13_000_000,
        paper_avg_degree: 46,
        seed: 0xA005,
    },
    DatasetSpec {
        code: "bk",
        paper_name: "web-baidu-baike",
        family: GraphFamily::Web,
        paper_vertices: 416_000,
        paper_edges: 3_300_000,
        paper_avg_degree: 8,
        seed: 0xA006,
    },
    DatasetSpec {
        code: "tw",
        paper_name: "twitter-social",
        family: GraphFamily::Social,
        paper_vertices: 465_000,
        paper_edges: 835_000,
        paper_avg_degree: 2,
        seed: 0xA007,
    },
    DatasetSpec {
        code: "bs",
        paper_name: "web-BerkStan",
        family: GraphFamily::Web,
        paper_vertices: 685_000,
        paper_edges: 7_600_000,
        paper_avg_degree: 11,
        seed: 0xA008,
    },
    DatasetSpec {
        code: "gg",
        paper_name: "web-Google",
        family: GraphFamily::Web,
        paper_vertices: 876_000,
        paper_edges: 5_100_000,
        paper_avg_degree: 6,
        seed: 0xA009,
    },
    DatasetSpec {
        code: "hm",
        paper_name: "bn-human-Jung2015",
        family: GraphFamily::DenseUniform,
        paper_vertices: 976_000,
        paper_edges: 146_000_000,
        paper_avg_degree: 150,
        seed: 0xA00A,
    },
    DatasetSpec {
        code: "wt",
        paper_name: "wikiTalk",
        family: GraphFamily::Social,
        paper_vertices: 2_400_000,
        paper_edges: 5_000_000,
        paper_avg_degree: 2,
        seed: 0xA00B,
    },
    DatasetSpec {
        code: "lj",
        paper_name: "soc-LiveJournal1",
        family: GraphFamily::Social,
        paper_vertices: 4_800_000,
        paper_edges: 68_000_000,
        paper_avg_degree: 14,
        seed: 0xA00C,
    },
    DatasetSpec {
        code: "dl",
        paper_name: "dbpedia-link",
        family: GraphFamily::Web,
        paper_vertices: 18_000_000,
        paper_edges: 137_000_000,
        paper_avg_degree: 7,
        seed: 0xA00D,
    },
    DatasetSpec {
        code: "fr",
        paper_name: "soc-friendster",
        family: GraphFamily::Social,
        paper_vertices: 66_000_000,
        paper_edges: 1_800_000_000,
        paper_avg_degree: 28,
        seed: 0xA00E,
    },
    DatasetSpec {
        code: "hg",
        paper_name: "web-cc12-hostgraph",
        family: GraphFamily::Web,
        paper_vertices: 89_000_000,
        paper_edges: 2_000_000_000,
        paper_avg_degree: 23,
        seed: 0xA00F,
    },
];

/// Looks a dataset up by its two-letter code.
pub fn dataset_by_code(code: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.code == code)
}

/// The subset of datasets the paper highlights most often (used by the
/// quicker experiment presets).
pub fn headline_datasets() -> Vec<&'static DatasetSpec> {
    ["ps", "ye", "wn", "bs", "lj"]
        .iter()
        .filter_map(|c| dataset_by_code(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fifteen_distinct_datasets() {
        assert_eq!(DATASETS.len(), 15);
        let codes: std::collections::HashSet<&str> = DATASETS.iter().map(|d| d.code).collect();
        assert_eq!(codes.len(), 15);
        assert!(dataset_by_code("wn").is_some());
        assert!(dataset_by_code("zz").is_none());
        assert_eq!(headline_datasets().len(), 5);
    }

    #[test]
    fn quick_scale_graphs_are_small_and_deterministic() {
        for spec in &DATASETS {
            let g1 = spec.build(DatasetScale::Quick);
            assert!(g1.vertex_count() >= 300, "{} too small", spec.code);
            assert!(
                g1.edge_count() < 120_000,
                "{} too large for quick scale",
                spec.code
            );
            let g2 = spec.build(DatasetScale::Quick);
            assert_eq!(g1, g2, "{} not deterministic", spec.code);
        }
    }

    #[test]
    fn density_ordering_roughly_follows_the_paper() {
        // ps (avg 172, capped) must be denser than tw (avg 2).
        let ps = dataset_by_code("ps").unwrap().build(DatasetScale::Quick);
        let tw = dataset_by_code("tw").unwrap().build(DatasetScale::Quick);
        assert!(ps.avg_degree() > 4.0 * tw.avg_degree());
    }

    #[test]
    fn full_scale_is_larger_than_quick_scale() {
        let spec = dataset_by_code("ye").unwrap();
        let quick = spec.build(DatasetScale::Quick);
        let full = spec.build(DatasetScale::Full);
        assert!(full.vertex_count() > quick.vertex_count());
        assert!(full.edge_count() > quick.edge_count());
    }

    #[test]
    fn build_with_stats_reports_consistent_numbers() {
        let spec = dataset_by_code("bk").unwrap();
        let (g, stats) = spec.build_with_stats(DatasetScale::Quick);
        assert_eq!(stats.vertices, g.vertex_count());
        assert_eq!(stats.edges, g.edge_count());
        assert!(stats.avg_degree > 1.0);
    }
}
