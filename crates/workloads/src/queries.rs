//! Query workload generation (§6.1 of the paper).
//!
//! For each hop constraint `k` the paper draws 1000 random query pairs
//! `(s, t)` such that `t` is reachable from `s` within `k` hops (infeasible
//! pairs are assumed to be filtered by a k-hop reachability index).
//! Figure 10(b) additionally needs queries bucketed by their exact shortest
//! distance `Δ(s, t)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spg_core::Query;
use spg_graph::traversal::{k_hop_reachable, shortest_distance};
use spg_graph::{DiGraph, VertexId};

/// Deterministic query workload generator bound to one graph.
#[derive(Debug)]
pub struct QueryGenerator<'g> {
    graph: &'g DiGraph,
    rng: StdRng,
    /// Attempts per requested query before giving up (sparse graphs may not
    /// have enough reachable pairs).
    max_attempts_per_query: usize,
}

impl<'g> QueryGenerator<'g> {
    /// Creates a generator with the given seed.
    pub fn new(graph: &'g DiGraph, seed: u64) -> Self {
        QueryGenerator {
            graph,
            rng: StdRng::seed_from_u64(seed),
            max_attempts_per_query: 400,
        }
    }

    /// Draws one random query `⟨s, t, k⟩` with `s ≠ t` and `t` reachable
    /// from `s` within `k` hops, or `None` if no reachable pair was found
    /// within the attempt budget.
    pub fn reachable_query(&mut self, k: u32) -> Option<Query> {
        let n = self.graph.vertex_count();
        if n < 2 {
            return None;
        }
        for _ in 0..self.max_attempts_per_query {
            let s = self.rng.gen_range(0..n) as VertexId;
            if self.graph.out_degree(s) == 0 {
                continue;
            }
            let t = self.rng.gen_range(0..n) as VertexId;
            if s == t {
                continue;
            }
            if k_hop_reachable(self.graph, s, t, k) {
                return Some(Query::new(s, t, k));
            }
        }
        None
    }

    /// Draws up to `count` random queries `⟨s, t, k⟩` with `s ≠ t` and `t`
    /// reachable from `s` within `k` hops. Fewer queries are returned when
    /// the graph does not contain enough reachable pairs.
    pub fn reachable_queries(&mut self, count: usize, k: u32) -> Vec<Query> {
        (0..count).filter_map(|_| self.reachable_query(k)).collect()
    }

    /// Draws up to `count` queries whose *exact* shortest distance `Δ(s, t)`
    /// equals `distance` (Figure 10(b): 500 queries per distance 1..6).
    pub fn queries_with_distance(&mut self, count: usize, distance: u32, k: u32) -> Vec<Query> {
        let n = self.graph.vertex_count();
        let mut out = Vec::with_capacity(count);
        if n < 2 || distance == 0 || distance > k {
            return out;
        }
        for _ in 0..count {
            let mut found = None;
            for _ in 0..self.max_attempts_per_query {
                let s = self.rng.gen_range(0..n) as VertexId;
                if self.graph.out_degree(s) == 0 {
                    continue;
                }
                let t = self.rng.gen_range(0..n) as VertexId;
                if s == t {
                    continue;
                }
                if shortest_distance(self.graph, s, t) == Some(distance) {
                    found = Some(Query::new(s, t, k));
                    break;
                }
            }
            if let Some(q) = found {
                out.push(q);
            }
        }
        out
    }
}

/// One-shot helper: `count` reachable queries on `graph` for hop constraint
/// `k`, seeded deterministically from `(seed, k)`.
pub fn reachable_queries(graph: &DiGraph, count: usize, k: u32, seed: u64) -> Vec<Query> {
    QueryGenerator::new(graph, seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .reachable_queries(count, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::generators::{gnm_random, path_graph};

    #[test]
    fn generated_queries_are_feasible_and_deterministic() {
        let g = gnm_random(300, 1800, 11);
        let a = reachable_queries(&g, 50, 4, 99);
        let b = reachable_queries(&g, 50, 4, 99);
        assert_eq!(a, b);
        assert!(
            a.len() >= 45,
            "expected most draws to succeed, got {}",
            a.len()
        );
        for q in &a {
            assert_ne!(q.source, q.target);
            assert!(k_hop_reachable(&g, q.source, q.target, q.k));
        }
    }

    #[test]
    fn different_seeds_give_different_workloads() {
        let g = gnm_random(300, 1800, 11);
        let a = reachable_queries(&g, 30, 5, 1);
        let b = reachable_queries(&g, 30, 5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn distance_bucketed_queries_have_the_requested_distance() {
        let g = gnm_random(400, 1600, 17);
        let mut gen = QueryGenerator::new(&g, 7);
        for d in 1..=4u32 {
            let queries = gen.queries_with_distance(10, d, 6);
            for q in &queries {
                assert_eq!(shortest_distance(&g, q.source, q.target), Some(d));
                assert_eq!(q.k, 6);
            }
        }
    }

    #[test]
    fn sparse_graphs_return_fewer_queries_gracefully() {
        let g = path_graph(4);
        let queries = reachable_queries(&g, 20, 2, 3);
        // Only pairs within distance 2 along the path exist; the generator
        // must not loop forever or panic.
        for q in &queries {
            assert!(k_hop_reachable(&g, q.source, q.target, 2));
        }
    }

    #[test]
    fn impossible_distance_bucket_is_empty() {
        let g = path_graph(5);
        let mut gen = QueryGenerator::new(&g, 3);
        assert!(gen.queries_with_distance(5, 0, 4).is_empty());
        assert!(gen.queries_with_distance(5, 9, 4).is_empty());
    }
}
