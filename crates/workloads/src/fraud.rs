//! Fraud-detection case study (§6.9, Figure 13(a)).
//!
//! In a transaction network a simple cycle through a flagged transaction
//! `e(t, s)` within a bounded number of hops and a bounded time window is a
//! strong fraud signal. Extracting *all* accounts and transactions involved
//! in any such cycle is exactly the `SPG_k(s, t)` query on the time-filtered
//! graph: the cycle is `e(t, s)` followed by a simple path `s → … → t` of
//! length ≤ k.
//!
//! The proprietary e-commerce network of the paper is replaced by the
//! synthetic [`TransactionGraph`] generator (planted fraud rings on top of
//! random background transfers); the investigation pipeline itself is
//! identical.

use spg_core::{Eve, EveConfig, Query, SimplePathGraph};
use spg_graph::generators::{TransactionGraph, TransactionGraphConfig};
use spg_graph::{DiGraph, VertexId};

/// Parameters of one fraud investigation.
#[derive(Debug, Clone, Copy)]
pub struct FraudCaseConfig {
    /// Transaction network generator settings.
    pub network: TransactionGraphConfig,
    /// Maximum cycle length (the paper uses `k + 1` hop cycles, i.e. the
    /// path part is at most `k` hops). The paper's case study uses `k = 5`.
    pub k: u32,
    /// Time window `ΔT` in days (the paper uses 7).
    pub window_days: f64,
}

impl Default for FraudCaseConfig {
    fn default() -> Self {
        FraudCaseConfig {
            network: TransactionGraphConfig::default(),
            k: 5,
            window_days: 7.0,
        }
    }
}

/// Result of an investigation.
#[derive(Debug)]
pub struct FraudInvestigation {
    /// The time-filtered transaction graph the query ran on.
    pub window_graph: DiGraph,
    /// The flagged transaction `(t, s)`.
    pub hot_edge: (VertexId, VertexId),
    /// The simple path graph: every account/transaction on a suspicious
    /// cycle through the flagged transaction.
    pub suspicious: SimplePathGraph,
    /// Ground-truth planted ring edges for precision/recall accounting.
    pub planted_edges: Vec<(VertexId, VertexId)>,
}

impl FraudInvestigation {
    /// Fraction of planted ring edges recovered by the investigation
    /// (recall against the synthetic ground truth).
    pub fn recall(&self) -> f64 {
        if self.planted_edges.is_empty() {
            return 1.0;
        }
        let hit = self
            .planted_edges
            .iter()
            .filter(|&&(u, v)| self.suspicious.contains_edge(u, v))
            .count();
        hit as f64 / self.planted_edges.len() as f64
    }

    /// Number of suspicious accounts (vertices) implicated.
    pub fn suspicious_accounts(&self) -> usize {
        self.suspicious.vertex_count()
    }

    /// Number of suspicious transactions (edges) implicated.
    pub fn suspicious_transactions(&self) -> usize {
        self.suspicious.edge_count()
    }
}

/// Generates the synthetic transaction network and runs the investigation.
pub fn investigate(cfg: FraudCaseConfig) -> FraudInvestigation {
    let network = TransactionGraph::generate(cfg.network);
    investigate_network(&network, cfg.k, cfg.window_days)
}

/// Runs the investigation on an existing transaction network.
pub fn investigate_network(
    network: &TransactionGraph,
    k: u32,
    window_days: f64,
) -> FraudInvestigation {
    let window_graph = network.window_graph(window_days);
    // The flagged transaction goes t -> s; cycles through it correspond to
    // simple paths s -> ... -> t of length <= k.
    let (t, s) = network.hot_edge();
    let eve = Eve::new(&window_graph, EveConfig::default());
    let suspicious = eve
        .query(Query::new(s, t, k))
        .expect("hot edge endpoints are valid vertices"); // spg-analyze: allow(no-panic) — hot edges are sampled from the graph's own vertex range
    FraudInvestigation {
        hot_edge: (t, s),
        suspicious,
        planted_edges: network.planted_edges().edges().to_vec(),
        window_graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_rings_are_fully_recovered() {
        let cfg = FraudCaseConfig {
            network: TransactionGraphConfig {
                accounts: 500,
                background_transactions: 3_000,
                fraud_rings: 3,
                ring_length: 5,
                ..Default::default()
            },
            k: 5,
            window_days: 7.0,
        };
        let inv = investigate(cfg);
        assert!(
            inv.recall() >= 0.99,
            "expected all planted ring edges to be recovered, recall = {}",
            inv.recall()
        );
        assert!(inv.suspicious_transactions() >= inv.planted_edges.len());
        assert!(inv.suspicious_accounts() > 2);
    }

    #[test]
    fn widening_the_window_can_only_add_suspicious_edges() {
        let cfg = FraudCaseConfig::default();
        let network = TransactionGraph::generate(cfg.network);
        let narrow = investigate_network(&network, cfg.k, 2.0);
        let wide = investigate_network(&network, cfg.k, 30.0);
        assert!(wide.suspicious_transactions() >= narrow.suspicious_transactions());
    }

    #[test]
    fn hot_edge_is_reported() {
        let inv = investigate(FraudCaseConfig::default());
        let (t, s) = inv.hot_edge;
        assert!(inv.window_graph.has_edge(t, s));
    }
}
