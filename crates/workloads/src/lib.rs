//! # spg-workloads — datasets, query workloads and the fraud case study
//!
//! Everything the experiments need besides the algorithms themselves:
//!
//! * [`datasets`] — the 15 simulated datasets standing in for Table 2 of the
//!   paper, built deterministically at two scales;
//! * [`queries`] — random k-hop-reachable query generation (1000 queries per
//!   graph and `k` in the paper) and distance-bucketed queries for
//!   Figure 10(b);
//! * [`batch`] — batch-shaped query sets (mixed hop constraints, hub-skewed
//!   endpoints, hit/miss mixes, invalid-slot injection) for the parallel
//!   batch executor;
//! * [`fraud`] — the transaction-network fraud investigation of the §6.9 case
//!   study, run end-to-end through EVE;
//! * [`arrival`] — open- and closed-loop arrival schedules for the online
//!   serving latency harness (`serve_bench`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod batch;
pub mod datasets;
pub mod fraud;
pub mod queries;

pub use arrival::{closed_loop, open_loop_poisson, open_loop_uniform};
pub use batch::{
    hit_miss_queries, inject_invalid, mixed_k_queries, repeat_heavy_queries,
    shared_endpoint_queries, skewed_queries,
};
pub use datasets::{
    dataset_by_code, headline_datasets, DatasetScale, DatasetSpec, GraphFamily, DATASETS,
};
pub use fraud::{investigate, investigate_network, FraudCaseConfig, FraudInvestigation};
pub use queries::{reachable_queries, QueryGenerator};
