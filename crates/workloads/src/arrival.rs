//! Request arrival schedules for the online serving harness.
//!
//! A latency benchmark is only as honest as its arrival process. Two
//! standard shapes are provided:
//!
//! * **Closed loop** ([`closed_loop`]) — each simulated client issues its
//!   next request the moment the previous response lands. Offered load
//!   adapts to service speed, so a closed loop measures *capacity*, hides
//!   queueing delay, and cannot exhibit coordinated omission by design.
//! * **Open loop** ([`open_loop_poisson`]) — arrivals follow a Poisson
//!   process at a fixed offered rate, independent of how the server is
//!   doing. This is the shape that exposes tail latency under load: a slow
//!   response does *not* delay later arrivals, so queueing shows up in the
//!   measured percentiles instead of silently thinning the workload.
//!
//! Schedules are plain sorted `Vec<Duration>` offsets from the run start,
//! so the bench driver can compute each request's intended send time up
//! front and report latency against the *schedule* (send-time correction):
//! a request that found the driver busy is charged its queueing delay, the
//! standard guard against coordinated omission.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arrival offsets for `count` requests issued back-to-back by `clients`
/// closed-loop workers. All offsets are zero — a closed-loop client has no
/// schedule, it is paced by responses — but the per-client partition is
/// returned so drivers can split a query list evenly: client `i` of `n`
/// takes requests `i`, `i + n`, `i + 2n`, …
///
/// Returned as (client index per request), length `count`.
pub fn closed_loop(count: usize, clients: usize) -> Vec<usize> {
    let clients = clients.max(1);
    (0..count).map(|i| i % clients).collect()
}

/// A Poisson (memoryless) arrival schedule: `count` offsets from run start
/// with exponentially distributed inter-arrival gaps at `rate_per_sec`
/// offered requests/second. Deterministic in `seed`.
///
/// # Panics
///
/// Panics when `rate_per_sec` is not finite and positive.
pub fn open_loop_poisson(count: usize, rate_per_sec: f64, seed: u64) -> Vec<Duration> {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "offered rate must be a positive, finite requests/second"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    let mut schedule = Vec::with_capacity(count);
    for _ in 0..count {
        // Inverse-CDF sample of Exp(rate): -ln(U) / rate, U in (0, 1].
        let u: f64 = 1.0 - rng.gen::<f64>(); // map [0,1) to (0,1]
        at += -u.ln() / rate_per_sec;
        schedule.push(Duration::from_secs_f64(at));
    }
    schedule
}

/// A uniform open-loop schedule: `count` arrivals exactly `1/rate_per_sec`
/// apart. The deterministic sibling of [`open_loop_poisson`] — no burst
/// variance, useful for calibrating the driver itself.
///
/// # Panics
///
/// Panics when `rate_per_sec` is not finite and positive.
pub fn open_loop_uniform(count: usize, rate_per_sec: f64) -> Vec<Duration> {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "offered rate must be a positive, finite requests/second"
    );
    let gap = 1.0 / rate_per_sec;
    (0..count)
        .map(|i| Duration::from_secs_f64(gap * (i + 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_partitions_requests_round_robin() {
        assert_eq!(closed_loop(7, 3), vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(closed_loop(3, 0), vec![0, 0, 0], "clients clamped to 1");
        assert!(closed_loop(0, 4).is_empty());
    }

    #[test]
    fn poisson_schedule_is_sorted_deterministic_and_near_rate() {
        let a = open_loop_poisson(2000, 500.0, 42);
        let b = open_loop_poisson(2000, 500.0, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets are sorted");
        // 2000 arrivals at 500/s span ~4s; the law of large numbers puts the
        // empirical rate well within ±15% at this sample size.
        let span = a.last().unwrap().as_secs_f64();
        let rate = 2000.0 / span;
        assert!(
            (425.0..=575.0).contains(&rate),
            "empirical rate {rate:.1}/s should be near the offered 500/s"
        );

        let c = open_loop_poisson(2000, 500.0, 43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn uniform_schedule_is_exact() {
        let s = open_loop_uniform(4, 100.0);
        assert_eq!(s[0], Duration::from_millis(10));
        assert_eq!(s[3], Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn zero_rate_panics() {
        open_loop_poisson(1, 0.0, 0);
    }
}
