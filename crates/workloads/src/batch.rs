//! Batch query-set generators for the parallel executor.
//!
//! "Batch Hop-Constrained s-t Simple Path Query Processing in Large Graphs"
//! (Yuan et al.) argues that production workloads arrive as *batches* whose
//! structure matters: hop constraints are mixed, endpoints are skewed towards
//! hub accounts, and a large share of queries miss (no path within `k`).
//! The uniform [`crate::reachable_queries`] workload exercises none of that,
//! so this module adds three deterministic batch shapes — plus an
//! invalid-query injector for testing the executor's per-slot error policy:
//!
//! * [`mixed_k_queries`] — reachable queries cycling through a list of hop
//!   constraints, the shape the thread-scaling benchmarks drain;
//! * [`skewed_queries`] — endpoints drawn from a small hot set of high
//!   out-degree hubs with a configurable probability, stressing workspace
//!   reuse under repeated large search spaces;
//! * [`hit_miss_queries`] — a controlled ratio of feasible ("hit") and
//!   infeasible-but-valid ("miss") queries, the cheap-query regime where
//!   batch overhead dominates;
//! * [`repeat_heavy_queries`] — exact `(s, t, k)` repeats drawn from a small
//!   hot pool, the workload the `spg_core` result cache is built for;
//! * [`shared_endpoint_queries`] — many queries fanning out from a few
//!   sources into a few targets (the fraud-ring shape), the workload the
//!   executor's cohort-shared MS-BFS Phase 1 deduplicates;
//! * [`inject_invalid`] — replaces a deterministic subset of a batch with
//!   malformed queries (`s == t`, endpoint out of range, `k == 0`) so error
//!   slots land throughout a parallel run.
//!
//! All generators are deterministic in `(graph, arguments, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spg_core::Query;
use spg_graph::hash::FxHashSet;
use spg_graph::traversal::k_hop_reachable;
use spg_graph::{DiGraph, VertexId};

use crate::queries::QueryGenerator;

/// Attempts per requested query before a draw is abandoned (matches
/// [`QueryGenerator`]'s budget).
const MAX_ATTEMPTS: usize = 400;

/// Draws up to `count` reachable queries whose hop constraints cycle through
/// `ks` in order (query `i` uses `ks[i % ks.len()]`). Draws that find no
/// reachable pair for their `k` are skipped, so sparse graphs may return
/// fewer queries.
///
/// # Panics
/// Panics if `ks` is empty or contains a zero hop constraint.
pub fn mixed_k_queries(graph: &DiGraph, count: usize, ks: &[u32], seed: u64) -> Vec<Query> {
    assert!(!ks.is_empty(), "mixed_k_queries needs at least one k");
    assert!(ks.iter().all(|&k| k > 0), "hop constraints must be ≥ 1");
    let mut gen = QueryGenerator::new(graph, seed);
    (0..count)
        .filter_map(|i| gen.reachable_query(ks[i % ks.len()]))
        .collect()
}

/// The `hot_set_size` vertices of highest out-degree (ties broken by vertex
/// id, ascending), used as the skew target.
fn hot_vertices(graph: &DiGraph, hot_set_size: usize) -> Vec<VertexId> {
    let mut by_degree: Vec<VertexId> = graph.vertices().collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    by_degree.truncate(hot_set_size.max(1));
    by_degree
}

/// Draws up to `count` reachable queries with *skewed* endpoints: each
/// endpoint is taken from the `hot_set_size` highest-out-degree vertices
/// with probability `hot_fraction`, and uniformly otherwise. This mimics the
/// hub concentration of transaction / social workloads, where a few accounts
/// appear in most investigations.
///
/// # Panics
/// Panics if `hot_fraction` is outside `[0, 1]` or `k == 0`.
pub fn skewed_queries(
    graph: &DiGraph,
    count: usize,
    k: u32,
    hot_set_size: usize,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Query> {
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot_fraction must be a probability"
    );
    assert!(k > 0, "hop constraint must be ≥ 1");
    let n = graph.vertex_count();
    if n < 2 {
        return Vec::new();
    }
    let hot = hot_vertices(graph, hot_set_size);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        for _ in 0..MAX_ATTEMPTS {
            let pick = |rng: &mut StdRng| -> VertexId {
                if rng.gen_bool(hot_fraction) {
                    hot[rng.gen_range(0..hot.len())]
                } else {
                    rng.gen_range(0..n) as VertexId
                }
            };
            let s = pick(&mut rng);
            let t = pick(&mut rng);
            if s == t || graph.out_degree(s) == 0 {
                continue;
            }
            if k_hop_reachable(graph, s, t, k) {
                out.push(Query::new(s, t, k));
                break;
            }
        }
    }
    out
}

/// Draws up to `count` *valid* queries of which roughly `hit_fraction` are
/// feasible (`t` reachable from `s` within `k`) and the rest are guaranteed
/// misses (`s ≠ t` but not k-hop-reachable — the query is well-formed and
/// the answer is empty). Hits and misses are interleaved deterministically
/// by an error-diffusion accumulator so any prefix of the batch keeps the
/// ratio. Graphs without enough pairs of one kind return fewer queries.
///
/// # Panics
/// Panics if `hit_fraction` is outside `[0, 1]` or `k == 0`.
pub fn hit_miss_queries(
    graph: &DiGraph,
    count: usize,
    k: u32,
    hit_fraction: f64,
    seed: u64,
) -> Vec<Query> {
    assert!(
        (0.0..=1.0).contains(&hit_fraction),
        "hit_fraction must be a probability"
    );
    assert!(k > 0, "hop constraint must be ≥ 1");
    let n = graph.vertex_count();
    if n < 2 {
        return Vec::new();
    }
    let mut gen = QueryGenerator::new(graph, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_BA7C);
    let mut out = Vec::with_capacity(count);
    let mut debt = 0.0f64;
    for _ in 0..count {
        debt += hit_fraction;
        let want_hit = debt >= 1.0;
        if want_hit {
            debt -= 1.0;
            if let Some(q) = gen.reachable_query(k) {
                out.push(q);
            }
        } else {
            for _ in 0..MAX_ATTEMPTS {
                let s = rng.gen_range(0..n) as VertexId;
                let t = rng.gen_range(0..n) as VertexId;
                if s == t {
                    continue;
                }
                if !k_hop_reachable(graph, s, t, k) {
                    out.push(Query::new(s, t, k));
                    break;
                }
            }
        }
    }
    out
}

/// Draws `count` queries dominated by *exact repeats* of a small unique pool
/// — the workload shape the result cache exists for. A pool of up to
/// `unique` distinct reachable queries (hop constraints cycling through
/// `ks`) is drawn first; each emitted query then comes from the hottest
/// eighth of that pool with probability `hot_fraction` and uniformly from
/// the whole pool otherwise. Unlike [`skewed_queries`] (which skews
/// *endpoints* but rarely repeats a full `(s, t, k)` triple), every emitted
/// query here is an exact member of the pool, so a batch of `count ≫ unique`
/// queries gives a result cache an intra-batch hit rate of about
/// `1 − unique / count`.
///
/// Deterministic in `(graph, arguments, seed)`. Sparse graphs may yield a
/// smaller pool (or none — then the result is empty).
///
/// # Panics
/// Panics if `unique == 0`, `hot_fraction` is outside `[0, 1]`, or `ks` is
/// empty / contains a zero hop constraint (see [`mixed_k_queries`]).
pub fn repeat_heavy_queries(
    graph: &DiGraph,
    count: usize,
    ks: &[u32],
    unique: usize,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Query> {
    assert!(unique > 0, "repeat_heavy_queries needs a non-empty pool");
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot_fraction must be a probability"
    );
    let mut pool = mixed_k_queries(graph, unique, ks, seed);
    // First-occurrence dedup preserving draw order (the hot eighth is the
    // earliest-drawn entries). `Vec::dedup` would only drop *adjacent*
    // repeats, which the cycling hop constraints never produce.
    let mut seen: FxHashSet<Query> = FxHashSet::default();
    pool.retain(|q| seen.insert(*q));
    if pool.is_empty() {
        return Vec::new();
    }
    let hot_len = (pool.len() / 8).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CACE);
    (0..count)
        .map(|_| {
            if rng.gen_bool(hot_fraction) {
                pool[rng.gen_range(0..hot_len)]
            } else {
                pool[rng.gen_range(0..pool.len())]
            }
        })
        .collect()
}

/// Draws up to `count` reachable queries fanning out from a pool of
/// `sources` vertices into a pool of `targets` vertices — the fraud-ring
/// investigation shape (a few suspect accounts queried against a few mule
/// accounts, at several hop budgets) that the batch executor's cohort-shared
/// Phase 1 deduplicates: the number of distinct `(s, t)` endpoint pairs is
/// at most `sources × targets` no matter how large the batch is.
///
/// The source pool holds the `sources` highest-*out*-degree vertices and the
/// target pool the `targets` highest-*in*-degree vertices (ties broken by
/// vertex id), hop constraints cycle through `ks`, and each emitted query is
/// checked `k`-hop reachable; draws that find no reachable pair within the
/// attempt budget are skipped, so sparse graphs may return fewer queries.
/// Deterministic in `(graph, arguments, seed)`.
///
/// # Panics
/// Panics if `sources` or `targets` is zero, or if `ks` is empty / contains
/// a zero hop constraint.
pub fn shared_endpoint_queries(
    graph: &DiGraph,
    count: usize,
    ks: &[u32],
    sources: usize,
    targets: usize,
    seed: u64,
) -> Vec<Query> {
    assert!(
        sources > 0 && targets > 0,
        "shared_endpoint_queries needs non-empty endpoint pools"
    );
    assert!(
        !ks.is_empty(),
        "shared_endpoint_queries needs at least one k"
    );
    assert!(ks.iter().all(|&k| k > 0), "hop constraints must be ≥ 1");
    if graph.vertex_count() < 2 {
        return Vec::new();
    }
    let source_pool = hot_vertices(graph, sources);
    let target_pool = {
        let mut by_in_degree: Vec<VertexId> = graph.vertices().collect();
        by_in_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.in_degree(v)), v));
        by_in_degree.truncate(targets.max(1));
        by_in_degree
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA4D_81A6);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let k = ks[i % ks.len()];
        for _ in 0..MAX_ATTEMPTS {
            let s = source_pool[rng.gen_range(0..source_pool.len())];
            let t = target_pool[rng.gen_range(0..target_pool.len())];
            if s == t {
                continue;
            }
            if k_hop_reachable(graph, s, t, k) {
                out.push(Query::new(s, t, k));
                break;
            }
        }
    }
    out
}

/// Replaces every `every`-th slot of `batch` (1-based: indices `every − 1`,
/// `2·every − 1`, …) with an invalid query, cycling through the three
/// rejection shapes `s == t`, target out of range and `k == 0`. Returns the
/// number of slots replaced. Use this to test that a batch executor reports
/// per-slot errors without disturbing its neighbours.
///
/// # Panics
/// Panics if `every == 0`.
pub fn inject_invalid(batch: &mut [Query], graph: &DiGraph, every: usize) -> usize {
    assert!(every > 0, "inject_invalid needs a positive stride");
    let n = graph.vertex_count() as VertexId;
    let mut injected = 0usize;
    for (i, slot) in batch.iter_mut().enumerate() {
        if (i + 1) % every != 0 {
            continue;
        }
        *slot = match injected % 3 {
            0 => Query::new(0, 0, 3),
            1 => Query::new(0, n + 7, 3),
            _ => Query::new(0, 1.min(n.saturating_sub(1)), 0),
        };
        injected += 1;
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::generators::gnm_random;

    fn graph() -> DiGraph {
        gnm_random(300, 1800, 11)
    }

    #[test]
    fn mixed_k_cycles_hop_constraints_deterministically() {
        let g = graph();
        let ks = [2u32, 4, 6];
        let a = mixed_k_queries(&g, 30, &ks, 7);
        let b = mixed_k_queries(&g, 30, &ks, 7);
        assert_eq!(a, b);
        assert!(a.len() >= 25, "most draws should succeed, got {}", a.len());
        for q in &a {
            assert!(ks.contains(&q.k));
            assert!(k_hop_reachable(&g, q.source, q.target, q.k));
        }
        // All three constraints appear.
        for k in ks {
            assert!(a.iter().any(|q| q.k == k), "k={k} missing");
        }
    }

    #[test]
    #[should_panic(expected = "at least one k")]
    fn mixed_k_rejects_empty_constraint_list() {
        mixed_k_queries(&graph(), 5, &[], 1);
    }

    #[test]
    fn skewed_queries_concentrate_on_the_hot_set() {
        let g = graph();
        let hot = hot_vertices(&g, 8);
        let qs = skewed_queries(&g, 60, 4, 8, 0.9, 13);
        assert!(qs.len() >= 50);
        let hot_endpoints = qs
            .iter()
            .flat_map(|q| [q.source, q.target])
            .filter(|v| hot.contains(v))
            .count();
        // With 90% hot probability, well over half of the 2·|qs| endpoints
        // must be hubs (uniform drawing would hit the 8-vertex hot set ~3%
        // of the time).
        assert!(
            hot_endpoints > qs.len(),
            "only {hot_endpoints} hot endpoints in {} queries",
            qs.len()
        );
        for q in &qs {
            assert_ne!(q.source, q.target);
            assert!(k_hop_reachable(&g, q.source, q.target, q.k));
        }
        // Determinism and zero-skew degenerate case.
        assert_eq!(qs, skewed_queries(&g, 60, 4, 8, 0.9, 13));
        let uniform = skewed_queries(&g, 20, 4, 8, 0.0, 13);
        assert!(!uniform.is_empty());
    }

    #[test]
    fn hit_miss_ratio_is_respected() {
        let g = graph();
        let k = 3u32;
        let qs = hit_miss_queries(&g, 40, k, 0.5, 99);
        assert!(qs.len() >= 30);
        let hits = qs
            .iter()
            .filter(|q| k_hop_reachable(&g, q.source, q.target, k))
            .count();
        let misses = qs.len() - hits;
        assert!(hits > 0 && misses > 0);
        // Error diffusion keeps the ratio within one query of the target.
        assert!(
            (hits as i64 - misses as i64).unsigned_abs() as usize <= 1 + (40 - qs.len()),
            "hits {hits} vs misses {misses}"
        );
        // Every miss is still a *valid* query on this graph.
        for q in &qs {
            assert!(q.validate(&g).is_ok());
        }
        assert_eq!(qs, hit_miss_queries(&g, 40, k, 0.5, 99));
        // All-hit and all-miss extremes.
        assert!(hit_miss_queries(&g, 10, k, 1.0, 5)
            .iter()
            .all(|q| k_hop_reachable(&g, q.source, q.target, k)));
        assert!(hit_miss_queries(&g, 10, k, 0.0, 5)
            .iter()
            .all(|q| !k_hop_reachable(&g, q.source, q.target, k)));
    }

    #[test]
    fn repeat_heavy_batches_repeat_a_small_pool() {
        let g = graph();
        let qs = repeat_heavy_queries(&g, 200, &[4, 6], 16, 0.6, 21);
        assert_eq!(qs.len(), 200);
        // Determinism.
        assert_eq!(qs, repeat_heavy_queries(&g, 200, &[4, 6], 16, 0.6, 21));
        // Every query is an exact member of a ≤16-strong pool, all valid.
        let mut distinct: Vec<Query> = qs.clone();
        distinct.sort_unstable_by_key(|q| (q.source, q.target, q.k));
        distinct.dedup();
        assert!(distinct.len() <= 16, "{} distinct", distinct.len());
        assert!(distinct.len() >= 2);
        for q in &distinct {
            assert!(q.validate(&g).is_ok());
            assert!(k_hop_reachable(&g, q.source, q.target, q.k));
        }
        // The hot eighth of the pool dominates: the single most frequent
        // query must appear far above the uniform share.
        let top = distinct
            .iter()
            .map(|d| qs.iter().filter(|q| *q == d).count())
            .max()
            .unwrap();
        assert!(
            top > qs.len() / 8,
            "hottest query appears only {top}/{} times",
            qs.len()
        );
        // Degenerate shapes.
        assert!(repeat_heavy_queries(&g, 0, &[4], 4, 0.5, 1).is_empty());
        let uniform = repeat_heavy_queries(&g, 50, &[4], 8, 0.0, 2);
        assert_eq!(uniform.len(), 50);
    }

    #[test]
    #[should_panic(expected = "non-empty pool")]
    fn repeat_heavy_rejects_zero_pool() {
        repeat_heavy_queries(&graph(), 10, &[4], 0, 0.5, 1);
    }

    #[test]
    fn shared_endpoint_batches_repeat_few_pairs() {
        let g = graph();
        let qs = shared_endpoint_queries(&g, 160, &[3, 5], 4, 6, 31);
        assert!(
            qs.len() >= 120,
            "most draws should succeed, got {}",
            qs.len()
        );
        assert_eq!(qs, shared_endpoint_queries(&g, 160, &[3, 5], 4, 6, 31));
        // The distinct endpoint-pair count is bounded by the pool product —
        // exactly the dedup the cohort engine exploits.
        let mut pairs: Vec<(u32, u32)> = qs.iter().map(|q| (q.source, q.target)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert!(pairs.len() <= 4 * 6, "{} distinct pairs", pairs.len());
        assert!(pairs.len() >= 2);
        let mut sources: Vec<u32> = qs.iter().map(|q| q.source).collect();
        sources.sort_unstable();
        sources.dedup();
        assert!(sources.len() <= 4);
        for q in &qs {
            assert_ne!(q.source, q.target);
            assert!([3, 5].contains(&q.k));
            assert!(k_hop_reachable(&g, q.source, q.target, q.k));
        }
        // Degenerate hosts return nothing rather than panicking.
        assert!(shared_endpoint_queries(&DiGraph::empty(1), 5, &[3], 2, 2, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty endpoint pools")]
    fn shared_endpoint_rejects_empty_pools() {
        shared_endpoint_queries(&graph(), 5, &[3], 0, 2, 1);
    }

    #[test]
    fn inject_invalid_replaces_every_nth_slot() {
        let g = graph();
        let mut batch = mixed_k_queries(&g, 20, &[4], 3);
        let len = batch.len();
        let injected = inject_invalid(&mut batch, &g, 4);
        assert_eq!(injected, len / 4);
        let invalid = batch.iter().filter(|q| q.validate(&g).is_err()).count();
        assert_eq!(invalid, injected);
        // The non-injected slots are untouched and still valid.
        for (i, q) in batch.iter().enumerate() {
            if (i + 1) % 4 != 0 {
                assert!(q.validate(&g).is_ok(), "slot {i} was disturbed");
            }
        }
        // All three rejection shapes occur once the batch is long enough.
        let mut big = mixed_k_queries(&g, 30, &[4], 3);
        inject_invalid(&mut big, &g, 2);
        let errors: Vec<_> = big.iter().filter_map(|q| q.validate(&g).err()).collect();
        assert!(errors.len() >= 3);
    }
}
