//! Version-stamped graph handles for result-cache invalidation.
//!
//! A [`DiGraph`] is immutable, so "mutation" in this workspace means building
//! a new graph and swapping it in. Anything that memoises per-graph answers
//! (notably `spg_core`'s result cache) must be able to tell those swaps
//! apart: serving an answer computed on the pre-swap graph would be a
//! correctness bug, not a staleness nuisance. [`VersionedGraph`] makes the
//! distinction structural — every handle carries a [`GraphVersion`] drawn
//! from one process-wide monotone counter, and every replacement draws a
//! fresh stamp:
//!
//! * two *different* graph snapshots can never share a version, even across
//!   independent `VersionedGraph` values (the counter is global, not
//!   per-handle), so a cache keyed by `(version, query)` can serve entries
//!   for many graphs at once without cross-talk;
//! * a version is never reused, even if a replacement happens to rebuild a
//!   bit-identical graph — invalidation errs on the side of recomputing.
//!
//! The handle dereferences to [`DiGraph`], so read-side code (queries,
//! traversal, statistics) works on a `&VersionedGraph` unchanged.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::{DiGraph, VertexId};

/// Monotone, process-wide unique stamp identifying one graph snapshot.
pub type GraphVersion = u64;

/// Source of version stamps. Starts at 1 so 0 can serve as a "no version"
/// sentinel in downstream code that wants one.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> GraphVersion {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed) // spg-analyze: allow(hot-loop) — once per graph build, nowhere near a query loop
}

/// A [`DiGraph`] plus the [`GraphVersion`] of its current snapshot (see the
/// module docs for the invalidation contract).
///
/// ```
/// use spg_graph::VersionedGraph;
///
/// let mut vg = VersionedGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let v0 = vg.version();
/// assert_eq!(vg.edge_count(), 2); // derefs to DiGraph
///
/// let v1 = vg.update(|g| {
///     let mut edges: Vec<_> = g.edges().collect();
///     edges.push((0, 2));
///     spg_graph::DiGraph::from_edges(g.vertex_count(), edges)
/// });
/// assert!(v1 > v0, "every mutation bumps the version");
/// assert_eq!(vg.edge_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct VersionedGraph {
    graph: DiGraph,
    version: GraphVersion,
}

impl VersionedGraph {
    /// Wraps `graph` in a handle stamped with a fresh version.
    pub fn new(graph: DiGraph) -> Self {
        VersionedGraph {
            graph,
            version: fresh_version(),
        }
    }

    /// Builds a stamped graph directly from an edge iterator
    /// (see [`DiGraph::from_edges`]).
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        VersionedGraph::new(DiGraph::from_edges(n, edges))
    }

    /// The current snapshot's version stamp.
    #[inline]
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// The current graph snapshot. Equivalent to the `Deref` impl; useful
    /// when an explicit `&DiGraph` is clearer than a coercion.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Replaces the snapshot with `graph`, returning the fresh version stamp.
    /// Requires `&mut self`, so no `&VersionedGraph` borrow (e.g. a live
    /// cached-query handle) can outlive the swap.
    pub fn replace(&mut self, graph: DiGraph) -> GraphVersion {
        self.graph = graph;
        self.version = fresh_version();
        self.version
    }

    /// Rebuilds the snapshot through `f` (e.g. add/remove edges by
    /// constructing a new [`DiGraph`]) and stamps the result, returning the
    /// fresh version.
    pub fn update<F>(&mut self, f: F) -> GraphVersion
    where
        F: FnOnce(&DiGraph) -> DiGraph,
    {
        let next = f(&self.graph);
        self.replace(next)
    }

    /// Unwraps the handle into its graph, discarding the version.
    pub fn into_graph(self) -> DiGraph {
        self.graph
    }
}

impl Deref for VersionedGraph {
    type Target = DiGraph;

    #[inline]
    fn deref(&self) -> &DiGraph {
        &self.graph
    }
}

impl From<DiGraph> for VersionedGraph {
    fn from(graph: DiGraph) -> Self {
        VersionedGraph::new(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_unique_across_handles() {
        let a = VersionedGraph::from_edges(2, [(0, 1)]);
        let b = VersionedGraph::from_edges(2, [(0, 1)]);
        assert_ne!(
            a.version(),
            b.version(),
            "identical contents still get distinct stamps"
        );
    }

    #[test]
    fn replace_and_update_bump_monotonically() {
        let mut vg = VersionedGraph::from_edges(3, [(0, 1), (1, 2)]);
        let v0 = vg.version();
        let v1 = vg.replace(DiGraph::from_edges(3, [(0, 1)]));
        assert!(v1 > v0);
        assert_eq!(vg.version(), v1);
        assert_eq!(vg.edge_count(), 1);
        // Rebuilding a bit-identical graph still invalidates.
        let v2 = vg.update(|g| g.clone());
        assert!(v2 > v1);
    }

    #[test]
    fn deref_and_accessors_expose_the_snapshot() {
        let vg = VersionedGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(vg.vertex_count(), 4);
        assert!(vg.has_edge(1, 2));
        assert_eq!(vg.graph().edge_count(), 3);
        let g = vg.clone().into_graph();
        assert_eq!(&g, vg.graph());
        let from: VersionedGraph = g.into();
        assert_eq!(from.edge_count(), 3);
    }

    #[test]
    fn clone_preserves_the_version_of_the_same_snapshot() {
        let vg = VersionedGraph::from_edges(2, [(0, 1)]);
        let cl = vg.clone();
        // A clone is the *same* snapshot, so sharing the stamp is correct;
        // any mutation of either handle re-stamps from the global counter.
        assert_eq!(vg.version(), cl.version());
        let mut cl = cl;
        let v = cl.replace(DiGraph::empty(2));
        assert_ne!(v, vg.version());
    }
}
