//! Version-stamped graph handles for result-cache invalidation.
//!
//! A [`DiGraph`] is immutable, so "mutation" in this workspace historically
//! meant building a new graph and swapping it in. Anything that memoises
//! per-graph answers (notably `spg_core`'s result cache) must be able to
//! tell those swaps apart: serving an answer computed on the pre-swap graph
//! would be a correctness bug, not a staleness nuisance. [`VersionedGraph`]
//! makes the distinction structural — every handle carries a
//! [`GraphVersion`] drawn from one process-wide monotone counter, and every
//! replacement draws a fresh stamp:
//!
//! * two *different* graph snapshots can never share a version, even across
//!   independent `VersionedGraph` values (the counter is global, not
//!   per-handle), so a cache keyed by `(version, query)` can serve entries
//!   for many graphs at once without cross-talk;
//! * a version is never reused, even if a replacement happens to rebuild a
//!   bit-identical graph — invalidation errs on the side of recomputing.
//!
//! Two mutation paths coexist:
//!
//! * [`VersionedGraph::replace`] / [`VersionedGraph::update`] — wholesale
//!   snapshot swaps. These re-stamp the version and record the old stamp in
//!   the **retired list**, which cache layers drain to purge the now
//!   permanently-unreachable entries eagerly instead of waiting for LRU
//!   pressure.
//! * [`VersionedGraph::apply_delta`] — streaming edge deltas applied as a
//!   CSR overlay ([`DiGraph::apply_delta`]). The version is deliberately
//!   **unchanged**: cache entries whose answers survive the delta stay
//!   reachable, and the caller pairs the delta with a *scoped* purge of the
//!   entries it actually affected (see `spg_core`'s dynamic-update module).
//!   Once the overlay outgrows [`VersionedGraph::compact_threshold`], it is
//!   folded into a fresh CSR automatically — a pure representation change
//!   that keeps version and cache entries intact.
//!
//! The handle dereferences to [`DiGraph`], so read-side code (queries,
//! traversal, statistics) works on a `&VersionedGraph` unchanged.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::{DiGraph, VertexId};
use crate::delta::{DeltaError, DeltaVersion, EdgeDelta};

/// Monotone, process-wide unique stamp identifying one graph snapshot.
pub type GraphVersion = u64;

/// Source of version stamps. Starts at 1 so 0 can serve as a "no version"
/// sentinel in downstream code that wants one.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// Retired stamps kept per handle; older ones are dropped FIFO (they are a
/// purge hint, not a correctness requirement — version-keyed lookups can
/// never hit a retired version anyway).
const MAX_RETIRED: usize = 64;

fn fresh_version() -> GraphVersion {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed) // spg-analyze: allow(hot-loop) — once per graph build, nowhere near a query loop
}

/// A [`DiGraph`] plus the [`GraphVersion`] of its current snapshot (see the
/// module docs for the invalidation contract).
///
/// ```
/// use spg_graph::{EdgeDelta, VersionedGraph};
///
/// let mut vg = VersionedGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let v0 = vg.version();
/// assert_eq!(vg.edge_count(), 2); // derefs to DiGraph
///
/// // Streaming path: the version survives a delta batch.
/// let dv = vg.apply_delta(&[EdgeDelta::add(0, 2)]).unwrap();
/// assert_eq!(dv.version, v0);
/// assert_eq!(vg.edge_count(), 3);
///
/// // Wholesale swap: fresh stamp, old one lands on the retired list.
/// let v1 = vg.update(|g| {
///     let edges: Vec<_> = g.edges().collect();
///     spg_graph::DiGraph::from_edges(g.vertex_count(), edges)
/// });
/// assert!(v1 > v0, "every snapshot swap bumps the version");
/// assert_eq!(vg.retired(), &[v0]);
/// ```
#[derive(Debug, Clone)]
pub struct VersionedGraph {
    graph: DiGraph,
    version: GraphVersion,
    /// Delta batches applied to the current snapshot.
    delta_seq: u64,
    /// Versions retired by `replace`/`update`, newest last (bounded FIFO).
    retired: Vec<GraphVersion>,
    /// Overlay row count beyond which `apply_delta` folds the overlay.
    compact_threshold: usize,
    /// Overlay folds performed (automatic and explicit).
    compactions: u64,
}

impl VersionedGraph {
    /// Wraps `graph` in a handle stamped with a fresh version.
    pub fn new(graph: DiGraph) -> Self {
        let compact_threshold = Self::default_compact_threshold(&graph);
        VersionedGraph {
            graph,
            version: fresh_version(),
            delta_seq: 0,
            retired: Vec::new(),
            compact_threshold,
            compactions: 0,
        }
    }

    /// Builds a stamped graph directly from an edge iterator
    /// (see [`DiGraph::from_edges`]).
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        VersionedGraph::new(DiGraph::from_edges(n, edges))
    }

    /// Default overlay-fold threshold: an overlay touching more than an
    /// eighth of the vertices (but at least 64 rows) has lost its locality
    /// advantage over a rebuild.
    fn default_compact_threshold(graph: &DiGraph) -> usize {
        (graph.vertex_count() / 8).max(64)
    }

    /// The current snapshot's version stamp.
    #[inline]
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// The current graph snapshot. Equivalent to the `Deref` impl; useful
    /// when an explicit `&DiGraph` is clearer than a coercion.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Applies a batch of edge deltas to the current snapshot as a CSR
    /// overlay ([`DiGraph::apply_delta`]); validation is atomic — on `Err`
    /// nothing changed. The version stamp is **unchanged** (cache entries
    /// unaffected by the batch stay reachable); the returned
    /// [`DeltaVersion`] pairs it with the per-snapshot batch sequence
    /// number. Folds the overlay into a fresh CSR when it outgrows
    /// [`VersionedGraph::compact_threshold`].
    pub fn apply_delta(&mut self, deltas: &[EdgeDelta]) -> Result<DeltaVersion, DeltaError> {
        let applied = self.graph.apply_delta(deltas)?;
        self.delta_seq += 1;
        if self.graph.overlay_rows() > self.compact_threshold {
            self.graph.compact();
            self.compactions += 1;
        }
        Ok(DeltaVersion {
            version: self.version,
            seq: self.delta_seq,
            applied,
        })
    }

    /// Explicitly folds any pending overlay into a fresh CSR (a pure
    /// representation change: same graph, same version, cache entries stay
    /// valid). Returns `true` when an overlay was folded.
    pub fn compact(&mut self) -> bool {
        let folded = self.graph.compact();
        if folded {
            self.compactions += 1;
        }
        folded
    }

    /// Overlay row count beyond which [`VersionedGraph::apply_delta`] folds
    /// automatically.
    #[inline]
    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold
    }

    /// Overrides the automatic fold threshold (clamped to ≥ 1).
    pub fn set_compact_threshold(&mut self, rows: usize) {
        self.compact_threshold = rows.max(1);
    }

    /// Number of overlay folds performed so far (automatic and explicit).
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Delta batches applied to the current snapshot.
    #[inline]
    pub fn delta_seq(&self) -> u64 {
        self.delta_seq
    }

    /// Versions retired by snapshot swaps, oldest first. Cache layers purge
    /// these eagerly (`spg_core`'s `SpgCache::purge_versions`); the list is
    /// bounded, so it is a purge *hint* — a version falling off the end just
    /// means its entries wait for LRU pressure as before.
    #[inline]
    pub fn retired(&self) -> &[GraphVersion] {
        &self.retired
    }

    fn retire_current(&mut self) {
        if self.retired.len() == MAX_RETIRED {
            self.retired.remove(0);
        }
        self.retired.push(self.version);
    }

    /// Replaces the snapshot with `graph`, returning the fresh version stamp
    /// and retiring the old one. Requires `&mut self`, so no
    /// `&VersionedGraph` borrow (e.g. a live cached-query handle) can
    /// outlive the swap.
    pub fn replace(&mut self, graph: DiGraph) -> GraphVersion {
        self.retire_current();
        self.compact_threshold = Self::default_compact_threshold(&graph);
        self.graph = graph;
        self.version = fresh_version();
        self.delta_seq = 0;
        self.version
    }

    /// Rebuilds the snapshot through `f` (e.g. add/remove edges by
    /// constructing a new [`DiGraph`]) and stamps the result, returning the
    /// fresh version.
    pub fn update<F>(&mut self, f: F) -> GraphVersion
    where
        F: FnOnce(&DiGraph) -> DiGraph,
    {
        let next = f(&self.graph);
        self.replace(next)
    }

    /// Unwraps the handle into its graph, discarding the version.
    pub fn into_graph(self) -> DiGraph {
        self.graph
    }
}

impl Deref for VersionedGraph {
    type Target = DiGraph;

    #[inline]
    fn deref(&self) -> &DiGraph {
        &self.graph
    }
}

impl From<DiGraph> for VersionedGraph {
    fn from(graph: DiGraph) -> Self {
        VersionedGraph::new(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_unique_across_handles() {
        let a = VersionedGraph::from_edges(2, [(0, 1)]);
        let b = VersionedGraph::from_edges(2, [(0, 1)]);
        assert_ne!(
            a.version(),
            b.version(),
            "identical contents still get distinct stamps"
        );
    }

    #[test]
    fn replace_and_update_bump_monotonically_and_retire() {
        let mut vg = VersionedGraph::from_edges(3, [(0, 1), (1, 2)]);
        let v0 = vg.version();
        let v1 = vg.replace(DiGraph::from_edges(3, [(0, 1)]));
        assert!(v1 > v0);
        assert_eq!(vg.version(), v1);
        assert_eq!(vg.edge_count(), 1);
        assert_eq!(vg.retired(), &[v0]);
        // Rebuilding a bit-identical graph still invalidates.
        let v2 = vg.update(|g| g.clone());
        assert!(v2 > v1);
        assert_eq!(vg.retired(), &[v0, v1]);
    }

    #[test]
    fn retired_list_is_bounded() {
        let mut vg = VersionedGraph::from_edges(2, [(0, 1)]);
        let first_retired = vg.version();
        for _ in 0..MAX_RETIRED + 5 {
            vg.update(|g| g.clone());
        }
        assert_eq!(vg.retired().len(), MAX_RETIRED);
        assert!(!vg.retired().contains(&first_retired), "oldest dropped");
    }

    #[test]
    fn deltas_keep_the_version_and_count_batches() {
        let mut vg = VersionedGraph::from_edges(4, [(0, 1), (1, 2)]);
        let v0 = vg.version();
        let d1 = vg.apply_delta(&[EdgeDelta::add(2, 3)]).unwrap();
        let d2 = vg.apply_delta(&[EdgeDelta::remove(0, 1)]).unwrap();
        assert_eq!(d1.version, v0);
        assert_eq!(d2.version, v0);
        assert_eq!((d1.seq, d2.seq), (1, 2));
        assert_eq!(vg.version(), v0, "deltas never re-stamp");
        assert_eq!(vg.delta_seq(), 2);
        assert!(vg.retired().is_empty());
        assert!(vg.has_edge(2, 3));
        assert!(!vg.has_edge(0, 1));
        // A rejected batch changes nothing.
        assert!(vg.apply_delta(&[EdgeDelta::add(0, 9)]).is_err());
        assert_eq!(vg.delta_seq(), 2);
        // Replace resets the per-snapshot sequence.
        vg.replace(DiGraph::from_edges(4, [(0, 1)]));
        assert_eq!(vg.delta_seq(), 0);
    }

    #[test]
    fn overlay_folds_past_the_threshold() {
        let mut vg = VersionedGraph::from_edges(6, [(0, 1), (1, 2), (2, 3)]);
        vg.set_compact_threshold(2);
        assert_eq!(vg.compact_threshold(), 2);
        vg.apply_delta(&[EdgeDelta::add(3, 4)]).unwrap();
        assert!(vg.is_overlaid(), "two patched rows stay under threshold 2");
        let v = vg.version();
        vg.apply_delta(&[EdgeDelta::add(4, 5)]).unwrap();
        assert!(!vg.is_overlaid(), "threshold crossing folds the overlay");
        assert_eq!(vg.compactions(), 1);
        assert_eq!(vg.version(), v, "a fold never re-stamps");
        assert!(vg.has_edge(3, 4) && vg.has_edge(4, 5));
        // Explicit compaction on a clean graph is a no-op.
        assert!(!vg.compact());
        assert_eq!(vg.compactions(), 1);
        vg.apply_delta(&[EdgeDelta::remove(0, 1)]).unwrap();
        assert!(vg.compact());
        assert_eq!(vg.compactions(), 2);
    }

    #[test]
    fn deref_and_accessors_expose_the_snapshot() {
        let vg = VersionedGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(vg.vertex_count(), 4);
        assert!(vg.has_edge(1, 2));
        assert_eq!(vg.graph().edge_count(), 3);
        let g = vg.clone().into_graph();
        assert_eq!(&g, vg.graph());
        let from: VersionedGraph = g.into();
        assert_eq!(from.edge_count(), 3);
    }

    #[test]
    fn clone_preserves_the_version_of_the_same_snapshot() {
        let vg = VersionedGraph::from_edges(2, [(0, 1)]);
        let cl = vg.clone();
        // A clone is the *same* snapshot, so sharing the stamp is correct;
        // any mutation of either handle re-stamps from the global counter.
        assert_eq!(vg.version(), cl.version());
        let mut cl = cl;
        let v = cl.replace(DiGraph::empty(2));
        assert_ne!(v, vg.version());
    }
}
