//! Mutable construction of [`DiGraph`] instances.
//!
//! The builder accumulates edges, then sorts and deduplicates them once at
//! [`GraphBuilder::build`] time, producing sorted CSR adjacency in
//! `O(|E| log |E|)`. Self-loops are dropped by default because a self-loop can
//! never appear on a simple path; the behaviour can be changed with
//! [`GraphBuilder::keep_self_loops`] for callers that need raw multigraph
//! statistics.

use crate::csr::{DiGraph, VertexId};
use crate::hash::{set_with_capacity, FxHashSet};

/// Incremental builder for [`DiGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    /// Distinct edges added so far, materialised lazily on the first
    /// [`GraphBuilder::contains_edge`] call and kept in lock-step with
    /// `edges` from then on. Membership checks are O(1) — repeated
    /// insert-with-check used to be quadratic via an O(E) scan — while
    /// bulk loads that never ask pay neither the per-edge hash insert nor
    /// the duplicated edge storage.
    edge_set: Option<FxHashSet<(VertexId, VertexId)>>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            edge_set: None,
            keep_self_loops: false,
        }
    }

    /// Creates a builder with an edge-capacity hint.
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(edges),
            edge_set: None,
            keep_self_loops: false,
        }
    }

    /// Number of vertices this builder was created with.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before deduplication).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Keep self-loops instead of silently dropping them (default: drop).
    pub fn keep_self_loops(&mut self, keep: bool) -> &mut Self {
        self.keep_self_loops = keep;
        self
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is not a valid vertex id for this builder.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for a graph with {} vertices",
            self.n
        );
        self.edges.push((u, v));
        if let Some(set) = &mut self.edge_set {
            set.insert((u, v));
        }
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Returns `true` if the (raw, pre-dedup) edge list already contains
    /// `(u, v)`. Amortised O(1): the first call materialises a hash set from
    /// the edges added so far (one O(E) pass), and [`GraphBuilder::add_edge`]
    /// keeps it current afterwards — so insert-if-absent loops are linear in
    /// the number of edges, while bulk loads that never check pay nothing.
    pub fn contains_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let edges = &self.edges;
        self.edge_set
            .get_or_insert_with(|| {
                let mut set = set_with_capacity(edges.len());
                set.extend(edges.iter().copied());
                set
            })
            .contains(&(u, v))
    }

    /// Finalises the builder into an immutable CSR [`DiGraph`].
    ///
    /// Parallel edges are collapsed; self-loops are dropped unless
    /// [`GraphBuilder::keep_self_loops`] was enabled.
    pub fn build(&self) -> DiGraph {
        let n = self.n;
        let mut edges: Vec<(VertexId, VertexId)> = if self.keep_self_loops {
            self.edges.clone()
        } else {
            self.edges
                .iter()
                .copied()
                .filter(|&(u, v)| u != v)
                .collect()
        };
        edges.sort_unstable();
        edges.dedup();

        let m = edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_degree = vec![0u32; n];
        for &(u, v) in &edges {
            out_offsets[u as usize + 1] += 1;
            in_degree[v as usize] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        // Edges are sorted by (u, v), so the targets slice is already grouped
        // by source and sorted within each group.
        let out_targets: Vec<VertexId> = edges.iter().map(|&(_, v)| v).collect();

        let mut in_offsets = vec![0u32; n + 1];
        for v in 0..n {
            in_offsets[v + 1] = in_offsets[v] + in_degree[v];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_sources = vec![0 as VertexId; m];
        // Iterating edges in (u, v) order fills each in-bucket with ascending
        // sources, keeping in-adjacency sorted as well.
        for &(u, v) in &edges {
            let slot = cursor[v as usize] as usize;
            in_sources[slot] = u;
            cursor[v as usize] += 1;
        }

        DiGraph::from_csr_parts(out_offsets, out_targets, in_offsets, in_sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_sorted_adjacency_in_both_directions() {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(3, 1), (0, 5), (0, 2), (2, 1), (5, 1), (0, 4)]);
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[2, 4, 5]);
        assert_eq!(g.in_neighbors(1), &[2, 3, 5]);
    }

    #[test]
    fn dedup_and_self_loop_policy() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (0, 1), (1, 1), (2, 0)]);
        assert_eq!(b.raw_edge_count(), 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);

        let mut b2 = GraphBuilder::new(3);
        b2.keep_self_loops(true);
        b2.extend_edges([(1, 1), (0, 1)]);
        let g2 = b2.build();
        assert_eq!(g2.edge_count(), 2);
        assert!(g2.has_edge(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn contains_edge_reports_raw_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 2);
        assert!(b.contains_edge(1, 2));
        assert!(!b.contains_edge(2, 1));
    }

    /// Perf-shaped regression test: repeated insert-with-check must be linear
    /// in the number of edges. Before the hash-set backing, `contains_edge`
    /// was an O(E) scan over the raw list, making this loop quadratic
    /// (~1.25e9 pair comparisons at this size — tens of seconds in a debug
    /// test build); hashed membership finishes it in milliseconds. The time
    /// bound is deliberately generous to stay robust on slow CI machines
    /// while still failing clearly on a quadratic regression.
    #[test]
    fn repeated_checked_insertion_is_linear() {
        let n = 50_000u32;
        let mut b = GraphBuilder::new(n as usize + 1);
        let start = std::time::Instant::now();
        for i in 0..n {
            if !b.contains_edge(i, i + 1) {
                b.add_edge(i, i + 1);
            }
            // Re-checking the just-inserted edge is the common dedup shape.
            assert!(b.contains_edge(i, i + 1));
            assert!(!b.contains_edge(i + 1, i));
        }
        assert_eq!(b.raw_edge_count(), n as usize);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "checked insertion took {:?}; contains_edge has regressed to a scan",
            start.elapsed()
        );
        let g = b.build();
        assert_eq!(g.edge_count(), n as usize);
    }

    /// The lazily materialised membership set must observe edges added both
    /// before and after the first `contains_edge` call.
    #[test]
    fn lazy_edge_set_stays_in_sync_with_later_inserts() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        assert!(b.contains_edge(0, 1), "pre-materialisation edge visible");
        assert!(!b.contains_edge(1, 2));
        b.add_edge(1, 2);
        assert!(b.contains_edge(1, 2), "post-materialisation edge visible");
        assert!(!b.contains_edge(2, 1));
    }

    #[test]
    fn with_capacity_builds_identical_graph() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let mut a = GraphBuilder::new(4);
        a.extend_edges(edges);
        let mut b = GraphBuilder::with_capacity(4, 4);
        b.extend_edges(edges);
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn empty_builder_builds_isolated_vertices() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 0);
    }
}
