//! Seeded random graph generators.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::csr::{DiGraph, VertexId};
use crate::GraphBuilder;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct directed edges (no self-loops)
/// drawn uniformly at random.
///
/// If `m` exceeds the number of possible edges `n·(n−1)` it is clamped.
pub fn gnm_random(n: usize, m: usize, seed: u64) -> DiGraph {
    assert!(n > 0, "graph must have at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    let m = m.min(max_edges);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut seen = crate::hash::set_with_capacity::<(VertexId, VertexId)>(m * 2);
    while seen.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Erdős–Rényi `G(n, p)`: every ordered pair becomes an edge independently
/// with probability `p`. Only suitable for small `n` (quadratic scan).
pub fn gnp_random(n: usize, p: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in 0..n as VertexId {
            if u != v && rng.gen_bool(p) {
                builder.add_edge(u, v);
            }
        }
    }
    builder.build()
}

/// Directed Barabási–Albert style preferential attachment.
///
/// Vertices arrive one at a time; each new vertex emits `out_per_vertex`
/// edges whose heads are chosen proportionally to (1 + current in-degree),
/// producing the heavy-tailed in-degree distribution typical of web graphs.
/// A matching fraction of "back" edges (head → new vertex) is added with
/// probability `back_edge_prob` to create cycles, since hop-constrained
/// simple path workloads are only interesting on cyclic graphs.
pub fn preferential_attachment(
    n: usize,
    out_per_vertex: usize,
    back_edge_prob: f64,
    seed: u64,
) -> DiGraph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * out_per_vertex);
    // Repeated-target list implements proportional sampling: every time a
    // vertex gains an in-edge it is pushed again, so drawing uniformly from
    // the list is preferential attachment.
    let mut targets: Vec<VertexId> = vec![0];
    for u in 1..n as VertexId {
        let emit = out_per_vertex.min(u as usize);
        for _ in 0..emit {
            let pick = targets[rng.gen_range(0..targets.len())];
            if pick != u {
                builder.add_edge(u, pick);
                targets.push(pick);
                if rng.gen_bool(back_edge_prob) {
                    builder.add_edge(pick, u);
                    targets.push(u);
                }
            }
        }
        targets.push(u);
    }
    builder.build()
}

/// Directed configuration model with (truncated) power-law out-degrees.
///
/// Each vertex draws an out-degree from a Pareto-like distribution with
/// exponent `gamma` and mean close to `avg_degree`; heads are matched to a
/// random permutation of endpoints, which keeps the in-degree distribution
/// close to uniform (as in citation-style social graphs).
pub fn power_law_configuration(n: usize, avg_degree: f64, gamma: f64, seed: u64) -> DiGraph {
    assert!(n >= 2);
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Sample degrees d = x_min * U^{-1/(gamma-1)}, truncated at n/4, then
    // rescale so the mean matches avg_degree.
    let raw: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-9..1.0);
            u.powf(-1.0 / (gamma - 1.0))
        })
        .collect();
    let mean_raw: f64 = raw.iter().sum::<f64>() / n as f64;
    let cap = (n / 4).max(1) as f64;
    let degrees: Vec<usize> = raw
        .iter()
        .map(|&x| ((x / mean_raw * avg_degree).round().min(cap)).max(0.0) as usize)
        .collect();

    let mut heads: Vec<VertexId> = Vec::new();
    let total: usize = degrees.iter().sum();
    heads.reserve(total);
    for v in 0..n as VertexId {
        heads.push(v);
    }
    // Pad / extend the head pool so every stub can be matched.
    while heads.len() < total {
        heads.push(rng.gen_range(0..n) as VertexId);
    }
    heads.shuffle(&mut rng);

    let mut builder = GraphBuilder::with_capacity(n, total);
    let mut cursor = 0usize;
    for (u, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            let head = heads[cursor % heads.len()];
            cursor += 1;
            if head != u as VertexId {
                builder.add_edge(u as VertexId, head);
            }
        }
    }
    builder.build()
}

/// Planted-partition ("community") graph.
///
/// Vertices are split into `communities` equal blocks. Ordered pairs inside
/// the same block become edges with probability `p_in`, pairs across blocks
/// with probability `p_out`. Dense blocks produce the large strongly cohesive
/// communities with many overlapping s-t paths that motivate simple path
/// *graphs* over path enumeration (§1.1).
pub fn community_graph(n: usize, communities: usize, p_in: f64, p_out: f64, seed: u64) -> DiGraph {
    assert!(communities >= 1 && communities <= n.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    let block = n.div_ceil(communities);
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let same = u / block == v / block;
            let p = if same { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                builder.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::DegreeStats;

    #[test]
    fn gnm_has_exact_edge_count_and_is_deterministic() {
        let g1 = gnm_random(100, 500, 7);
        let g2 = gnm_random(100, 500, 7);
        let g3 = gnm_random(100, 500, 8);
        assert_eq!(g1.edge_count(), 500);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn gnm_clamps_to_maximum_possible_edges() {
        let g = gnm_random(4, 100, 1);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn gnp_density_tracks_probability() {
        let g = gnp_random(60, 0.2, 11);
        let possible = 60.0 * 59.0;
        let density = g.edge_count() as f64 / possible;
        assert!((density - 0.2).abs() < 0.05, "density {density}");
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let g = preferential_attachment(2000, 4, 0.3, 13);
        let stats = DegreeStats::of(&g);
        assert!(stats.edges > 2000);
        // A heavy tail: the busiest vertex should collect far more than the
        // average number of in-edges.
        assert!(stats.max_in_degree as f64 > 8.0 * stats.avg_degree);
    }

    #[test]
    fn power_law_configuration_hits_requested_density() {
        let g = power_law_configuration(2000, 8.0, 2.5, 17);
        let avg = g.avg_degree();
        assert!(avg > 4.0 && avg < 12.0, "avg degree {avg}");
        let stats = DegreeStats::of(&g);
        assert!(stats.max_out_degree > 20);
    }

    #[test]
    fn community_graph_is_denser_inside_blocks() {
        let g = community_graph(120, 4, 0.3, 0.01, 23);
        let block = 30;
        let mut inside = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if (u as usize) / block == (v as usize) / block {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > across, "inside {inside} across {across}");
    }

    #[test]
    fn generators_produce_no_self_loops() {
        for g in [
            gnm_random(50, 200, 3),
            gnp_random(50, 0.1, 3),
            preferential_attachment(200, 3, 0.2, 3),
            power_law_configuration(200, 5.0, 2.2, 3),
            community_graph(60, 3, 0.2, 0.02, 3),
        ] {
            for (u, v) in g.edges() {
                assert_ne!(u, v);
            }
        }
    }
}
