//! Structured (non-random) graph families used by tests and micro-benchmarks.

use crate::csr::{DiGraph, VertexId};
use crate::GraphBuilder;

/// Directed path `0 → 1 → … → n−1`.
pub fn path_graph(n: usize) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId);
    }
    b.build()
}

/// Directed cycle `0 → 1 → … → n−1 → 0`.
pub fn cycle_graph(n: usize) -> DiGraph {
    assert!(n >= 2, "a directed cycle needs at least two vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId);
    }
    b.build()
}

/// Complete directed graph: every ordered pair `(u, v)` with `u ≠ v`.
pub fn complete_graph(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(n.saturating_sub(1)));
    for u in 0..n as VertexId {
        for v in 0..n as VertexId {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// `rows × cols` grid with edges pointing right and down (a DAG). Vertex
/// `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> DiGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Layered DAG: `layers` layers of `width` vertices each; every vertex of
/// layer `i` is connected to every vertex of layer `i+1`. The number of
/// source-to-sink paths is `width^(layers-1)`, which makes this family the
/// canonical stress test for the exponential path blow-up the paper's
/// Figure 2(b) illustrates, while `|E(SPG_k)|` stays linear.
pub fn layered_dag(layers: usize, width: usize) -> DiGraph {
    assert!(layers >= 1 && width >= 1);
    let n = layers * width;
    let mut b = GraphBuilder::with_capacity(n, (layers - 1) * width * width);
    let id = |layer: usize, i: usize| (layer * width + i) as VertexId;
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for j in 0..width {
                b.add_edge(id(layer, i), id(layer + 1, j));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{k_hop_reachable, shortest_distance};

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(shortest_distance(&g, 0, 4), Some(4));
        assert_eq!(shortest_distance(&g, 4, 0), None);
    }

    #[test]
    fn cycle_graph_shape() {
        let g = cycle_graph(4);
        assert_eq!(g.edge_count(), 4);
        assert!(k_hop_reachable(&g, 2, 1, 3));
        assert!(!k_hop_reachable(&g, 2, 1, 2));
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_graph(5);
        assert_eq!(g.edge_count(), 20);
        for u in g.vertices() {
            assert_eq!(g.out_degree(u), 4);
            assert_eq!(g.in_degree(u), 4);
        }
    }

    #[test]
    fn grid_graph_shape() {
        let g = grid_graph(3, 4);
        assert_eq!(g.vertex_count(), 12);
        // edges: right = 3 * 3, down = 2 * 4
        assert_eq!(g.edge_count(), 9 + 8);
        assert_eq!(shortest_distance(&g, 0, 11), Some(5));
    }

    #[test]
    fn layered_dag_shape() {
        let g = layered_dag(4, 3);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 9);
        // source layer 0 vertex 0 reaches the last layer in exactly 3 hops.
        assert_eq!(shortest_distance(&g, 0, 9), Some(3));
        assert!(!k_hop_reachable(&g, 0, 9, 2));
    }

    #[test]
    fn degenerate_sizes_are_handled() {
        assert_eq!(path_graph(1).edge_count(), 0);
        assert_eq!(layered_dag(1, 5).edge_count(), 0);
        assert_eq!(complete_graph(1).edge_count(), 0);
    }
}
