//! Deterministic random and structured graph generators.
//!
//! The paper evaluates on 15 real networks (Table 2) ranging from thousands
//! to billions of edges, downloaded from NetworkRepository, SNAP and Konect.
//! Those downloads are not available in this environment, so the workloads
//! crate simulates each dataset with a generator from this module whose
//! density regime and degree skew match the original (see DESIGN.md §2.3).
//! All generators are seeded and fully deterministic, which keeps tests,
//! experiments and benchmarks reproducible.
//!
//! * [`gnm_random`] / [`gnp_random`] — Erdős–Rényi style graphs (homogeneous
//!   degrees; stands in for the economic/biological matrices such as `ps`).
//! * [`preferential_attachment`] — directed Barabási–Albert style growth
//!   (heavy-tailed in-degrees; stands in for web graphs such as `uk`, `sf`).
//! * [`power_law_configuration`] — directed configuration model with
//!   power-law out-degrees (stands in for social networks such as `lj`, `fr`).
//! * [`community_graph`] — planted-partition graph with dense communities and
//!   sparse inter-community edges (the "strongly cohesive communities" the
//!   paper's introduction motivates).
//! * [`structured`] — paths, cycles, complete graphs, grids and layered DAGs
//!   used heavily by unit and property tests.
//! * [`transaction`] — timestamped transaction multigraph with planted short
//!   cycles for the fraud-detection case study (Figure 13(a)).

mod random;
mod structured;
mod transaction;

pub use random::{
    community_graph, gnm_random, gnp_random, power_law_configuration, preferential_attachment,
};
pub use structured::{complete_graph, cycle_graph, grid_graph, layered_dag, path_graph};
pub use transaction::{TransactionEdge, TransactionGraph, TransactionGraphConfig};
