//! Timestamped transaction graphs for the fraud-detection case study.
//!
//! Section 6.9 / Figure 13(a) of the paper analyses a real e-commerce
//! transaction network: for a flagged transaction (edge) `e(t, s)` at time
//! `T0`, fraud analysts extract all accounts and transactions that lie on a
//! `(k+1)`-hop-constrained simple *cycle* through `e(t, s)` whose timestamps
//! fall within the last `ΔT` days — which is exactly `SPG_k(s, t)` on the
//! time-filtered graph. That proprietary dataset is unavailable, so
//! [`TransactionGraph`] generates a synthetic stand-in: a background of
//! random transfers plus a configurable number of *planted* short cycles
//! (fraud rings) around a designated hot edge, all with timestamps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{DiGraph, VertexId};
use crate::subgraph::EdgeSubgraph;
use crate::GraphBuilder;

/// One timestamped transaction `from → to` at `timestamp` (days since epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransactionEdge {
    /// Paying account.
    pub from: VertexId,
    /// Receiving account.
    pub to: VertexId,
    /// Timestamp in fractional days since an arbitrary epoch.
    pub timestamp: f64,
}

/// Configuration for [`TransactionGraph::generate`].
#[derive(Debug, Clone, Copy)]
pub struct TransactionGraphConfig {
    /// Number of accounts.
    pub accounts: usize,
    /// Number of random background transactions.
    pub background_transactions: usize,
    /// Number of planted fraud rings (short cycles through the hot edge).
    pub fraud_rings: usize,
    /// Length (in edges) of each planted ring, including the hot edge.
    pub ring_length: usize,
    /// Time horizon in days: background timestamps are uniform in
    /// `[0, horizon_days]`.
    pub horizon_days: f64,
    /// Planted-ring timestamps are within `[t0 - fraud_window_days, t0]`.
    pub fraud_window_days: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransactionGraphConfig {
    fn default() -> Self {
        TransactionGraphConfig {
            accounts: 2_000,
            background_transactions: 20_000,
            fraud_rings: 4,
            ring_length: 5,
            horizon_days: 90.0,
            fraud_window_days: 7.0,
            seed: 42,
        }
    }
}

/// A synthetic timestamped transaction network with planted fraud rings.
#[derive(Debug, Clone)]
pub struct TransactionGraph {
    transactions: Vec<TransactionEdge>,
    accounts: usize,
    /// The flagged "hot" transaction `t → s` that triggers the investigation.
    hot_edge: (VertexId, VertexId),
    /// Time of the flagged transaction (`T0` in the paper).
    t0: f64,
    /// Edges of the planted rings (excluding the hot edge), for ground truth.
    planted: EdgeSubgraph,
}

impl TransactionGraph {
    /// Generates a transaction graph according to `cfg`.
    ///
    /// The hot edge is `(1, 0)` (account 1 pays account 0) at time
    /// `cfg.horizon_days`; every planted ring is a simple cycle
    /// `0 → r₁ → … → r_{L-1} → 1` so that, together with the hot edge
    /// `1 → 0`, it forms a simple cycle of length `cfg.ring_length`.
    pub fn generate(cfg: TransactionGraphConfig) -> TransactionGraph {
        assert!(cfg.accounts >= cfg.ring_length + 2, "not enough accounts");
        assert!(cfg.ring_length >= 2, "a ring needs at least two edges");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let t0 = cfg.horizon_days;
        let mut transactions: Vec<TransactionEdge> = Vec::new();

        // Background noise.
        for _ in 0..cfg.background_transactions {
            let from = rng.gen_range(0..cfg.accounts) as VertexId;
            let to = rng.gen_range(0..cfg.accounts) as VertexId;
            if from == to {
                continue;
            }
            transactions.push(TransactionEdge {
                from,
                to,
                timestamp: rng.gen_range(0.0..cfg.horizon_days),
            });
        }

        // The flagged transaction t -> s, i.e. account 1 -> account 0.
        let hot_edge = (1 as VertexId, 0 as VertexId);
        transactions.push(TransactionEdge {
            from: hot_edge.0,
            to: hot_edge.1,
            timestamp: t0,
        });

        // Planted rings: 0 -> r1 -> ... -> r_{L-1} -> 1, recent timestamps.
        let mut planted_edges: Vec<(VertexId, VertexId)> = Vec::new();
        let intermediates_per_ring = cfg.ring_length - 1;
        let mut next_account = 2usize;
        for _ in 0..cfg.fraud_rings {
            let mut ring: Vec<VertexId> = vec![0];
            for _ in 0..intermediates_per_ring.saturating_sub(1) {
                ring.push(next_account as VertexId);
                next_account = (next_account + 1) % cfg.accounts;
                if next_account < 2 {
                    next_account = 2;
                }
            }
            ring.push(1);
            for w in ring.windows(2) {
                let (u, v) = (w[0], w[1]);
                if u == v {
                    continue;
                }
                planted_edges.push((u, v));
                transactions.push(TransactionEdge {
                    from: u,
                    to: v,
                    timestamp: t0 - rng.gen_range(0.0..cfg.fraud_window_days),
                });
            }
        }

        TransactionGraph {
            transactions,
            accounts: cfg.accounts,
            hot_edge,
            t0,
            planted: EdgeSubgraph::from_edges(planted_edges),
        }
    }

    /// All transactions, including background noise and planted rings.
    pub fn transactions(&self) -> &[TransactionEdge] {
        &self.transactions
    }

    /// Number of accounts (vertices).
    pub fn accounts(&self) -> usize {
        self.accounts
    }

    /// The flagged transaction `(t, s)`: its tail is the query target and its
    /// head is the query source when looking for cycles through it.
    pub fn hot_edge(&self) -> (VertexId, VertexId) {
        self.hot_edge
    }

    /// Timestamp of the flagged transaction.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Ground-truth planted ring edges (excluding the hot edge itself).
    pub fn planted_edges(&self) -> &EdgeSubgraph {
        &self.planted
    }

    /// Builds the static directed graph containing only transactions with
    /// timestamps in `[t0 − window_days, t0]`, which is the search graph the
    /// case study runs EVE on.
    pub fn window_graph(&self, window_days: f64) -> DiGraph {
        let lo = self.t0 - window_days;
        let mut b = GraphBuilder::new(self.accounts);
        for tx in &self.transactions {
            if tx.timestamp >= lo && tx.timestamp <= self.t0 {
                b.add_edge(tx.from, tx.to);
            }
        }
        b.build()
    }

    /// Builds the static graph over *all* transactions regardless of time.
    pub fn full_graph(&self) -> DiGraph {
        let mut b = GraphBuilder::new(self.accounts);
        for tx in &self.transactions {
            b.add_edge(tx.from, tx.to);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::k_hop_reachable;

    #[test]
    fn generation_is_deterministic() {
        let a = TransactionGraph::generate(TransactionGraphConfig::default());
        let b = TransactionGraph::generate(TransactionGraphConfig::default());
        assert_eq!(a.transactions().len(), b.transactions().len());
        assert_eq!(a.hot_edge(), b.hot_edge());
        assert_eq!(a.planted_edges(), b.planted_edges());
    }

    #[test]
    fn planted_rings_fall_inside_the_fraud_window() {
        let cfg = TransactionGraphConfig {
            fraud_rings: 3,
            ring_length: 4,
            ..Default::default()
        };
        let tg = TransactionGraph::generate(cfg);
        let windowed = tg.window_graph(cfg.fraud_window_days);
        // Every planted edge must survive the time filter.
        for &(u, v) in tg.planted_edges().edges() {
            assert!(windowed.has_edge(u, v), "planted edge ({u},{v}) missing");
        }
        // And the ring closes: from s=0 we can reach t=1 within ring_length-1 hops.
        assert!(k_hop_reachable(
            &windowed,
            0,
            1,
            (cfg.ring_length - 1) as u32
        ));
    }

    #[test]
    fn window_filter_reduces_edge_count() {
        let tg = TransactionGraph::generate(TransactionGraphConfig::default());
        let full = tg.full_graph();
        let windowed = tg.window_graph(7.0);
        assert!(windowed.edge_count() < full.edge_count());
        assert!(windowed.edge_count() > 0);
    }

    #[test]
    fn hot_edge_present_in_window_graph() {
        let tg = TransactionGraph::generate(TransactionGraphConfig::default());
        let (t, s) = tg.hot_edge();
        let g = tg.window_graph(7.0);
        assert!(g.has_edge(t, s));
    }
}
