//! Plain-text edge list input / output.
//!
//! The datasets the paper uses (NetworkRepository, SNAP, Konect) ship as
//! whitespace-separated edge lists, one `u v` pair per line, possibly with
//! `#` or `%` comment lines. This module reads and writes that format so the
//! workloads crate can persist generated datasets and users can load their
//! own graphs.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::csr::{DiGraph, VertexId};
use crate::GraphBuilder;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line could not be parsed as two vertex ids.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// A vertex id token is numeric but does not fit in [`VertexId`], or is
    /// the reserved `u32::MAX` sentinel (used internally as
    /// `spg_graph::INF_DIST`; admitting it would also make the inferred
    /// vertex count `max_id + 1` overflow the CSR offset range).
    VertexIdOverflow {
        /// 1-based line number in the input.
        line: usize,
        /// The offending id token.
        token: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error while reading edge list: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "cannot parse edge list line {line}: {content:?}")
            }
            EdgeListError::VertexIdOverflow { line, token } => {
                write!(
                    f,
                    "vertex id {token:?} on edge list line {line} does not fit in a \
                     vertex id (must be < {})",
                    VertexId::MAX
                )
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } | EdgeListError::VertexIdOverflow { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses one vertex-id token, distinguishing "not a number" (line-numbered
/// [`EdgeListError::Parse`]) from "a number that overflows [`VertexId`]"
/// ([`EdgeListError::VertexIdOverflow`]).
fn parse_vertex_token(
    token: Option<&str>,
    line: usize,
    content: &str,
) -> Result<VertexId, EdgeListError> {
    let parse_err = || EdgeListError::Parse {
        line,
        content: content.to_string(),
    };
    let token = token.ok_or_else(parse_err)?;
    match token.parse::<VertexId>() {
        // `u32::MAX` parses but is reserved (see `VertexIdOverflow` docs).
        Ok(VertexId::MAX) => Err(EdgeListError::VertexIdOverflow {
            line,
            token: token.to_string(),
        }),
        Ok(id) => Ok(id),
        Err(e) if matches!(e.kind(), std::num::IntErrorKind::PosOverflow) => {
            Err(EdgeListError::VertexIdOverflow {
                line,
                token: token.to_string(),
            })
        }
        Err(_) => Err(parse_err()),
    }
}

/// Parses an edge list from any buffered reader.
///
/// Lines starting with `#` or `%` and blank / whitespace-only lines are
/// ignored; trailing tokens after the two ids (e.g. edge weights) are
/// tolerated. Vertex ids must fit in [`VertexId`] and be `< u32::MAX`
/// (ids that overflow are rejected with a line-numbered
/// [`EdgeListError::VertexIdOverflow`]). The resulting graph has
/// `max_id + 1` vertices; an input with no edge rows (empty, whitespace-only
/// or comments-only) yields an empty zero-vertex graph rather than inferring
/// a vertex count from an uninitialised maximum.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DiGraph, EdgeListError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_vertex_token(parts.next(), idx + 1, trimmed)?;
        let v = parse_vertex_token(parts.next(), idx + 1, trimmed)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend_edges(edges);
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph, EdgeListError> {
    let file = File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Writes a graph as an edge list (`u v` per line) to any writer.
pub fn write_edge_list<W: Write>(g: &DiGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# directed edge list: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph as an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    let file = File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_simple_edge_list_with_comments() {
        let text = "# comment\n% another comment\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        match err {
            EdgeListError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert!(content.contains("not an edge"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing here\n")).unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn whitespace_only_input_gives_empty_graph() {
        // No edge row may ever be inferred from padding: the vertex count
        // must be 0, not `max_id + 1` of an uninitialised maximum.
        for text in ["", "   \n\t\n  \t  \n", "\n\n", "# c\n   \n% c\n"] {
            let g = read_edge_list(Cursor::new(text)).unwrap();
            assert_eq!(g.vertex_count(), 0, "input {text:?}");
            assert_eq!(g.edge_count(), 0, "input {text:?}");
        }
    }

    #[test]
    fn oversized_vertex_ids_are_rejected_with_line_numbers() {
        // 2^32 does not fit in u32 at all.
        let err = read_edge_list(Cursor::new("0 1\n4294967296 1\n")).unwrap_err();
        match err {
            EdgeListError::VertexIdOverflow { line, token } => {
                assert_eq!(line, 2);
                assert_eq!(token, "4294967296");
            }
            other => panic!("expected overflow error, got {other}"),
        }
        // u32::MAX parses but is the reserved INF_DIST sentinel; admitting it
        // would also drive a 2^32-vertex allocation from `max_id + 1`.
        let err = read_edge_list(Cursor::new("7 4294967295\n")).unwrap_err();
        match &err {
            EdgeListError::VertexIdOverflow { line, token } => {
                assert_eq!(*line, 1);
                assert_eq!(token, "4294967295");
            }
            other => panic!("expected overflow error, got {other}"),
        }
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn negative_and_single_token_rows_are_parse_errors() {
        for (text, expect_line) in [("0 1\n-3 1\n", 2), ("5\n", 1), ("0 1\n# ok\n2\n", 3)] {
            let err = read_edge_list(Cursor::new(text)).unwrap_err();
            match err {
                EdgeListError::Parse { line, .. } => assert_eq!(line, expect_line, "{text:?}"),
                other => panic!("expected parse error for {text:?}, got {other}"),
            }
        }
    }

    #[test]
    fn trailing_tokens_are_tolerated() {
        // SNAP/Konect dumps often carry weights or timestamps per row.
        let g = read_edge_list(Cursor::new("0 1 0.75\n1 2 1699999999 x\n")).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn round_trip_through_memory_buffer() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut buf: Vec<u8> = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn round_trip_through_temp_file() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut path = std::env::temp_dir();
        path.push(format!("spg_graph_io_test_{}.txt", std::process::id()));
        write_edge_list_file(&g, &path).unwrap();
        let parsed = read_edge_list_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed, g);
    }

    #[test]
    fn error_display_is_informative() {
        let io_err: EdgeListError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io_err.to_string().contains("I/O error"));
        let parse_err = EdgeListError::Parse {
            line: 7,
            content: "x y".into(),
        };
        assert!(parse_err.to_string().contains("line 7"));
    }
}
