//! Deterministic, fast hashing for vertex-keyed maps and sets.
//!
//! The hot data structures in this workspace are keyed by `u32` vertex ids or
//! `(u32, u32)` edge pairs. The standard library's SipHash is
//! collision-resistant but needlessly slow for that workload (see the Rust
//! Performance Book's *Hashing* chapter). This module implements the same
//! multiply-and-rotate scheme popularised by `rustc-hash` (FxHash) so the
//! workspace does not need an extra dependency. The hasher is fully
//! deterministic, which also keeps benchmark runs and tests reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style hasher: one multiplication and one rotate per word.
///
/// Not HashDoS resistant — do not use it for untrusted external keys. All
/// keys in this workspace are internally generated vertex/edge identifiers.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Creates an empty [`FxHashMap`] with at least `capacity` slots reserved.
pub fn map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// Creates an empty [`FxHashSet`] with at least `capacity` slots reserved.
pub fn set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((7u32, 9u32)), hash_one((7u32, 9u32)));
    }

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        let hashes: FxHashSet<u64> = (0u32..10_000).map(hash_one).collect();
        // Perfect distinctness is not required, but the hasher must not be
        // degenerate for small integers.
        assert!(hashes.len() > 9_990);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u32, u32> = map_with_capacity(16);
        for i in 0..100u32 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&21), Some(&42));

        let mut set: FxHashSet<(u32, u32)> = set_with_capacity(16);
        for i in 0..100u32 {
            set.insert((i, i + 1));
        }
        assert!(set.contains(&(3, 4)));
        assert!(!set.contains(&(4, 3)));
    }

    #[test]
    fn byte_stream_hashing_matches_chunked_input() {
        // `write` must consume arbitrary byte slices without panicking and
        // produce stable results.
        let mut a = FxHasher::default();
        a.write(b"hop-constrained simple path graph");
        let mut b = FxHasher::default();
        b.write(b"hop-constrained simple path graph");
        assert_eq!(a.finish(), b.finish());
    }
}
