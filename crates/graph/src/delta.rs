//! Edge-delta batches for streaming graph updates.
//!
//! A fraud graph mutates constantly, but a full CSR rebuild per mutation
//! (plus the version re-stamp that makes *every* cached answer unreachable)
//! prices streaming workloads out. This module defines the delta vocabulary:
//! an [`EdgeDelta`] batch is validated as a unit and applied to a
//! [`crate::DiGraph`] as a **patch overlay** — only the touched adjacency
//! rows are copied and edited, queries see base + overlay merged at
//! traversal time, and [`crate::VersionedGraph::compact`] (or the automatic
//! row-count threshold) folds the overlay back into a fresh CSR.
//!
//! Deltas never change the vertex universe: both endpoints must already be
//! valid vertex ids. Adding an edge that exists and removing an edge that
//! does not are idempotent no-ops, mirroring the deduplicating/self-loop-
//! dropping semantics of [`crate::DiGraph::from_edges`] so an overlay-patched
//! graph is always edge-for-edge identical to a from-scratch rebuild.

use crate::csr::{DiGraph, VertexId};
use crate::versioned::GraphVersion;

/// What a single [`EdgeDelta`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Insert the directed edge (idempotent if already present).
    Add,
    /// Delete the directed edge (idempotent if absent).
    Remove,
}

/// One directed-edge mutation of a delta batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeDelta {
    /// Add or remove.
    pub op: DeltaOp,
    /// Edge source endpoint.
    pub source: VertexId,
    /// Edge target endpoint.
    pub target: VertexId,
}

impl EdgeDelta {
    /// An edge insertion.
    pub fn add(source: VertexId, target: VertexId) -> Self {
        EdgeDelta {
            op: DeltaOp::Add,
            source,
            target,
        }
    }

    /// An edge removal.
    pub fn remove(source: VertexId, target: VertexId) -> Self {
        EdgeDelta {
            op: DeltaOp::Remove,
            source,
            target,
        }
    }
}

/// Reasons a delta batch is rejected. Validation happens before any
/// mutation, so a rejected batch leaves the graph untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// A delta endpoint does not exist in the graph (deltas cannot grow the
    /// vertex universe; use [`crate::VersionedGraph::replace`] for that).
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// A delta names a self-loop; self-loops can never lie on a simple path
    /// and [`crate::DiGraph::from_edges`] drops them, so admitting one would
    /// break overlay/rebuild equivalence.
    SelfLoop(VertexId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::VertexOutOfRange { vertex, vertices } => write!(
                f,
                "delta vertex {vertex} out of range (graph has {vertices} vertices)"
            ),
            DeltaError::SelfLoop(v) => {
                write!(f, "delta self-loop on vertex {v} is not allowed")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Receipt of one applied delta batch: the graph *version* is unchanged
/// (survivor cache entries keyed by it stay reachable — that is the whole
/// point of scoped invalidation), while `seq` counts applied batches within
/// the snapshot's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaVersion {
    /// The (unchanged) version stamp of the mutated snapshot.
    pub version: GraphVersion,
    /// Number of delta batches applied to this snapshot so far.
    pub seq: u64,
    /// Deltas of this batch that changed the graph (no-ops — adding a
    /// present edge, removing an absent one — are excluded).
    pub applied: usize,
}

/// Validates a batch against `g` without mutating anything.
pub(crate) fn validate_deltas(g: &DiGraph, deltas: &[EdgeDelta]) -> Result<(), DeltaError> {
    let n = g.vertex_count();
    for d in deltas {
        for v in [d.source, d.target] {
            if (v as usize) >= n {
                return Err(DeltaError::VertexOutOfRange {
                    vertex: v,
                    vertices: n,
                });
            }
        }
        if d.source == d.target {
            return Err(DeltaError::SelfLoop(d.source));
        }
    }
    Ok(())
}

/// Depth-bounded multi-source BFS over `g`: distances from the nearest seed
/// (0 at each seed), `u32::MAX` beyond `depth` or unreachable. Forward walks
/// out-edges; pass [`crate::Direction::Backward`] to measure distance *to*
/// the seeds instead. This powers the addition-side scoped-invalidation test
/// in `spg-core`: the hop budget `k` bounds how far an added edge can be
/// felt, so the scan never leaves the neighbourhood the deltas touched.
pub fn multi_source_distances(
    g: &DiGraph,
    seeds: &[VertexId],
    dir: crate::Direction,
    depth: u32,
) -> Vec<u32> {
    let n = g.vertex_count();
    let mut dist = vec![u32::MAX; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if (s as usize) < n && dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            frontier.push(s);
        }
    }
    let mut next: Vec<VertexId> = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() && level < depth {
        level += 1;
        for &u in &frontier {
            for &v in g.neighbors(u, dir) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    #[test]
    fn validation_rejects_bad_batches_atomically() {
        let g = DiGraph::from_edges(3, [(0, 1)]);
        assert!(validate_deltas(&g, &[EdgeDelta::add(0, 2)]).is_ok());
        assert_eq!(
            validate_deltas(&g, &[EdgeDelta::add(0, 2), EdgeDelta::remove(0, 9)]),
            Err(DeltaError::VertexOutOfRange {
                vertex: 9,
                vertices: 3
            })
        );
        assert_eq!(
            validate_deltas(&g, &[EdgeDelta::add(1, 1)]),
            Err(DeltaError::SelfLoop(1))
        );
    }

    #[test]
    fn delta_error_display() {
        let e = DeltaError::VertexOutOfRange {
            vertex: 7,
            vertices: 3,
        };
        assert!(e.to_string().contains("out of range"));
        assert!(DeltaError::SelfLoop(2).to_string().contains("self-loop"));
    }

    #[test]
    fn multi_source_bfs_bounded_both_directions() {
        // 0 -> 1 -> 2 -> 3 -> 4
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let fwd = multi_source_distances(&g, &[1], Direction::Forward, 2);
        assert_eq!(fwd, vec![u32::MAX, 0, 1, 2, u32::MAX]);
        let bwd = multi_source_distances(&g, &[3], Direction::Backward, 10);
        assert_eq!(bwd, vec![3, 2, 1, 0, u32::MAX]);
        // Two seeds take the pointwise minimum.
        let both = multi_source_distances(&g, &[0, 3], Direction::Forward, 10);
        assert_eq!(both, vec![0, 1, 2, 0, 1]);
    }
}
