//! Edge-subgraph extraction.
//!
//! The answers produced in this workspace — the simple path graph `SPG_k`,
//! its upper bound `SPGᵘ_k`, and the k-hop subgraph `G^k_st` — are all *edge
//! subgraphs* of the input graph: same vertex universe, a subset of the
//! edges. [`EdgeSubgraph`] stores such a subgraph as an explicit edge set and
//! can materialise it back into a standalone [`DiGraph`] (with either the
//! original vertex ids preserved or compacted ids) so it can be fed to any
//! algorithm in the workspace, e.g. running PathEnum on `SPG_k(s,t)` instead
//! of on `G` (§6.7 of the paper).

use crate::csr::{DiGraph, VertexId};
use crate::hash::{FxHashMap, FxHashSet};

/// A subgraph of a host graph identified by a set of edges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeSubgraph {
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeSubgraph {
    /// Creates a subgraph from an iterator of edges. Duplicates are removed.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut v: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        EdgeSubgraph { edges: v }
    }

    /// Empty subgraph.
    pub fn new() -> Self {
        EdgeSubgraph::default()
    }

    /// Number of edges in the subgraph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the subgraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sorted slice of the edges.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// `true` if `(u, v)` is in the subgraph (binary search).
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.binary_search(&(u, v)).is_ok()
    }

    /// Set of distinct vertices incident to at least one subgraph edge.
    ///
    /// Allocates a fresh hash set per call; hot callers that only need an
    /// ordered membership structure (e.g. witness construction for scoped
    /// cache invalidation) should prefer [`EdgeSubgraph::sorted_vertices`],
    /// which sorts instead of hashing and supports binary-search probes.
    pub fn vertex_set(&self) -> FxHashSet<VertexId> {
        let mut s: FxHashSet<VertexId> = FxHashSet::default();
        for &(u, v) in &self.edges {
            s.insert(u);
            s.insert(v);
        }
        s
    }

    /// Distinct incident vertices as a sorted, deduplicated vector — the
    /// hash-free [`EdgeSubgraph::vertex_set`] variant. Membership is then an
    /// `O(log n)` `binary_search`, and the sorted form is directly usable as
    /// an invalidation witness.
    pub fn sorted_vertices(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b) in &self.edges {
            v.push(a);
            v.push(b);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of distinct incident vertices.
    pub fn vertex_count(&self) -> usize {
        self.sorted_vertices().len()
    }

    /// `true` if `other` contains every edge of `self`.
    pub fn is_subgraph_of(&self, other: &EdgeSubgraph) -> bool {
        self.edges.iter().all(|&(u, v)| other.contains(u, v))
    }

    /// Edges present in `self` but not in `other`.
    pub fn difference(&self, other: &EdgeSubgraph) -> Vec<(VertexId, VertexId)> {
        self.edges
            .iter()
            .copied()
            .filter(|&(u, v)| !other.contains(u, v))
            .collect()
    }

    /// Materialises the subgraph as a [`DiGraph`] over the *same* vertex id
    /// space as the host graph (`host_vertex_count` vertices). Vertices not
    /// incident to any subgraph edge become isolated.
    pub fn to_graph(&self, host_vertex_count: usize) -> DiGraph {
        DiGraph::from_edges(host_vertex_count, self.edges.iter().copied())
    }

    /// Materialises the subgraph with *compacted* vertex ids `0..m` where `m`
    /// is the number of incident vertices. Returns the graph together with
    /// the mapping `original id -> compact id`.
    pub fn to_compact_graph(&self) -> (DiGraph, FxHashMap<VertexId, VertexId>) {
        let ids = self.sorted_vertices();
        let mapping: FxHashMap<VertexId, VertexId> = ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as VertexId))
            .collect();
        let g = DiGraph::from_edges(
            ids.len(),
            self.edges.iter().map(|&(u, v)| (mapping[&u], mapping[&v])),
        );
        (g, mapping)
    }

    /// Restriction of the host graph to the edges of this subgraph, keeping
    /// only edges whose endpoints both satisfy `keep`.
    pub fn filter_vertices<F>(&self, mut keep: F) -> EdgeSubgraph
    where
        F: FnMut(VertexId) -> bool,
    {
        EdgeSubgraph::from_edges(
            self.edges
                .iter()
                .copied()
                .filter(|&(u, v)| keep(u) && keep(v)),
        )
    }
}

impl FromIterator<(VertexId, VertexId)> for EdgeSubgraph {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        EdgeSubgraph::from_edges(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeSubgraph {
        EdgeSubgraph::from_edges([(0, 1), (1, 2), (2, 3), (1, 2)])
    }

    #[test]
    fn dedup_and_queries() {
        let s = sample();
        assert_eq!(s.edge_count(), 3);
        assert!(s.contains(1, 2));
        assert!(!s.contains(2, 1));
        assert_eq!(s.vertex_count(), 4);
    }

    #[test]
    fn sorted_vertices_agree_with_the_hash_set() {
        let s = EdgeSubgraph::from_edges([(9, 2), (2, 9), (4, 2), (9, 4)]);
        let sorted = s.sorted_vertices();
        assert_eq!(sorted, vec![2, 4, 9]);
        let mut from_set: Vec<_> = s.vertex_set().into_iter().collect();
        from_set.sort_unstable();
        assert_eq!(sorted, from_set);
        assert!(sorted.binary_search(&4).is_ok());
        assert!(sorted.binary_search(&3).is_err());
        assert!(EdgeSubgraph::new().sorted_vertices().is_empty());
    }

    #[test]
    fn to_graph_preserves_ids() {
        let s = sample();
        let g = s.to_graph(10);
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
    }

    #[test]
    fn compact_graph_remaps_consistently() {
        let s = EdgeSubgraph::from_edges([(10, 20), (20, 30)]);
        let (g, map) = s.to_compact_graph();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(map[&10], map[&20]));
        assert!(g.has_edge(map[&20], map[&30]));
    }

    #[test]
    fn subgraph_relations() {
        let small = EdgeSubgraph::from_edges([(0, 1)]);
        let big = sample();
        assert!(small.is_subgraph_of(&big));
        assert!(!big.is_subgraph_of(&small));
        assert_eq!(big.difference(&small), vec![(1, 2), (2, 3)]);
        assert!(small.difference(&big).is_empty());
    }

    #[test]
    fn filter_vertices_drops_incident_edges() {
        let s = sample();
        let filtered = s.filter_vertices(|v| v != 2);
        assert_eq!(filtered.edge_count(), 1);
        assert!(filtered.contains(0, 1));
    }

    #[test]
    fn from_iterator_collect() {
        let s: EdgeSubgraph = [(5u32, 6u32), (6, 7)].into_iter().collect();
        assert_eq!(s.edge_count(), 2);
        assert!(s.vertex_set().contains(&7));
    }

    #[test]
    fn empty_subgraph() {
        let s = EdgeSubgraph::new();
        assert!(s.is_empty());
        assert_eq!(s.vertex_count(), 0);
        let g = s.to_graph(4);
        assert_eq!(g.edge_count(), 0);
    }
}
