//! Degree statistics and basic structural properties.
//!
//! The paper's Table 2 characterises each dataset by `|V|`, `|E|` and the
//! average degree `d_avg`; the verification cost analysis (§5.2) additionally
//! depends on the maximum degree `d_max`. [`DegreeStats`] captures these in
//! one pass so the workload crate and the benchmark harness can report the
//! same columns.

use crate::csr::DiGraph;

/// Summary of the degree distribution of a directed graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices `|V|`.
    pub vertices: usize,
    /// Number of directed edges `|E|`.
    pub edges: usize,
    /// Average degree `|E| / |V|` (the paper's `d_avg`).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// `d_max`: maximum of in- and out-degree over all vertices.
    pub max_degree: usize,
    /// Number of vertices with zero in- and out-degree.
    pub isolated_vertices: usize,
}

impl DegreeStats {
    /// Computes the statistics in a single pass over the vertex set.
    pub fn of(g: &DiGraph) -> DegreeStats {
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut isolated = 0usize;
        for v in g.vertices() {
            let o = g.out_degree(v);
            let i = g.in_degree(v);
            max_out = max_out.max(o);
            max_in = max_in.max(i);
            if o == 0 && i == 0 {
                isolated += 1;
            }
        }
        DegreeStats {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            avg_degree: g.avg_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            max_degree: max_out.max(max_in),
            isolated_vertices: isolated,
        }
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} d_avg={:.2} d_max={} (out {}, in {}) isolated={}",
            self.vertices,
            self.edges,
            self.avg_degree,
            self.max_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.isolated_vertices
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_a_small_graph() {
        // star: 0 -> {1,2,3}, 4 isolated
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (0, 3)]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.isolated_vertices, 1);
        assert!((s.avg_degree - 0.6).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = DiGraph::empty(0);
        let s = DegreeStats::of(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.isolated_vertices, 0);
    }

    #[test]
    fn display_contains_key_fields() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let text = DegreeStats::of(&g).to_string();
        assert!(text.contains("|V|=3"));
        assert!(text.contains("|E|=2"));
    }
}
