//! Cooperative per-query budgets: wall-clock deadlines and work ceilings.
//!
//! EVE's worst-case work is super-linear in the search space, so a serving
//! path needs queries that can be *cancelled mid-flight*. [`QueryBudget`] is
//! the cancellation token the whole stack threads through its phase loops:
//! a wall-clock deadline, a work-unit ceiling, or both, polled **at
//! boundaries only** (BFS levels, propagation levels, labeling rows, DFS
//! step chunks) via [`QueryBudget::charge`]. There are no atomics and no
//! per-edge checks: the token is a plain [`Cell`]-based accumulator owned by
//! one query on one thread, and an unlimited budget reduces every poll to a
//! single predictable branch.
//!
//! Work units are the engine's own deterministic counters (edge scans, rows
//! expanded, DFS steps), so a work-limited query is killed at the *same*
//! boundary on every run — [`BudgetExhausted::Work`] is bit-reproducible.
//! Deadlines are wall-clock and therefore inherently racy; what is
//! deterministic is the *granularity*: a query is never more than one
//! boundary (one BFS level, one row, one DFS chunk) past its deadline when
//! it observes [`BudgetExhausted::Deadline`].

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// Why a budget-limited query was cut off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetExhausted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit ceiling was reached (deterministic).
    Work,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExhausted::Deadline => write!(f, "query deadline exceeded"),
            BudgetExhausted::Work => write!(f, "query work budget exceeded"),
        }
    }
}

/// A per-query cancellation token (see the module docs).
///
/// Cheap to construct per query; deliberately **not** `Sync` (the `Cell`
/// accumulator) — a budget belongs to one query on one thread. Cross-thread
/// executors ship the raw `Option<Instant>` deadline per slot and build the
/// token worker-side.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    deadline: Option<Instant>,
    /// `None` = unlimited.
    work_limit: Option<u64>,
    charged: Cell<u64>,
}

impl QueryBudget {
    /// A budget that never trips — every poll is one branch.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// A budget tripping once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        QueryBudget {
            deadline: Some(deadline),
            ..QueryBudget::default()
        }
    }

    /// A budget tripping `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        QueryBudget::with_deadline(Instant::now() + timeout)
    }

    /// A budget tripping after `limit` work units (deterministic).
    pub fn with_work_limit(limit: u64) -> Self {
        QueryBudget {
            work_limit: Some(limit),
            ..QueryBudget::default()
        }
    }

    /// Adds a wall-clock deadline to this budget (the tighter of the two if
    /// one is already set).
    pub fn and_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self
    }

    /// Adds a work-unit ceiling to this budget (the tighter of the two if
    /// one is already set).
    pub fn and_work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(match self.work_limit {
            Some(l) => l.min(limit),
            None => limit,
        });
        self
    }

    /// `true` when no deadline and no work limit is set.
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.work_limit.is_none()
    }

    /// The wall-clock deadline, if any.
    #[inline]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Work units charged so far.
    #[inline]
    pub fn charged(&self) -> u64 {
        self.charged.get()
    }

    /// The boundary poll: accounts `units` of work done since the last poll
    /// and trips if the accumulated work exceeds the ceiling or the deadline
    /// has passed. On an unlimited budget this is a single branch; the clock
    /// is only read when a deadline is set.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), BudgetExhausted> {
        if self.is_unlimited() {
            return Ok(());
        }
        self.charge_limited(units)
    }

    /// [`QueryBudget::charge`] with no work attached — a pure "should I keep
    /// going?" poll.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExhausted> {
        self.charge(0)
    }

    #[cold]
    fn charge_limited(&self, units: u64) -> Result<(), BudgetExhausted> {
        let total = self.charged.get().saturating_add(units);
        self.charged.set(total);
        if let Some(limit) = self.work_limit {
            if total > limit {
                return Err(BudgetExhausted::Work);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExhausted::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            assert!(b.charge(u64::MAX).is_ok());
        }
        assert_eq!(b.charged(), 0, "unlimited budgets do not even account");
    }

    #[test]
    fn work_limit_trips_deterministically() {
        let b = QueryBudget::with_work_limit(10);
        assert!(!b.is_unlimited());
        assert!(b.charge(4).is_ok());
        assert!(b.charge(6).is_ok(), "exactly at the limit is still fine");
        assert_eq!(b.charge(1), Err(BudgetExhausted::Work));
        assert_eq!(b.charged(), 11);
        // Saturating accumulation cannot wrap back under the limit.
        assert_eq!(b.charge(u64::MAX), Err(BudgetExhausted::Work));
    }

    #[test]
    fn deadline_trips_once_passed() {
        let past = Instant::now() - Duration::from_millis(1);
        let b = QueryBudget::with_deadline(past);
        assert_eq!(b.check(), Err(BudgetExhausted::Deadline));
        let future = Instant::now() + Duration::from_secs(3600);
        let b = QueryBudget::with_deadline(future);
        assert!(b.check().is_ok());
        assert_eq!(b.deadline(), Some(future));
    }

    #[test]
    fn combinators_keep_the_tighter_bound() {
        let near = Instant::now() + Duration::from_secs(1);
        let far = near + Duration::from_secs(100);
        let b = QueryBudget::with_deadline(far).and_deadline(near);
        assert_eq!(b.deadline(), Some(near));
        let b = QueryBudget::with_work_limit(100).and_work_limit(5);
        assert_eq!(b.charge(6), Err(BudgetExhausted::Work));
        let b = QueryBudget::unlimited().and_work_limit(3).and_deadline(far);
        assert!(!b.is_unlimited());
        assert!(b.charge(3).is_ok());
        assert_eq!(b.charge(1), Err(BudgetExhausted::Work));
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(
            BudgetExhausted::Deadline.to_string(),
            "query deadline exceeded"
        );
        assert_eq!(
            BudgetExhausted::Work.to_string(),
            "query work budget exceeded"
        );
    }
}
