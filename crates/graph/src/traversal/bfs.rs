//! Hop-bounded breadth-first search with an optional forbidden vertex.
//!
//! The forbidden vertex models the paper's convention that forward searches
//! from `s` never route *through* the target `t` (and backward searches never
//! route through `s`): the forbidden vertex may receive a distance when first
//! reached, but its out-edges are never expanded. This matches the essential
//! vertex definition (Definition 3.1), which only considers paths that do not
//! pass through the opposite endpoint.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;

use crate::csr::{DiGraph, Direction, VertexId};
use crate::hash::{map_with_capacity, FxHashMap};

/// Options controlling a hop-bounded BFS.
#[derive(Debug, Clone, Copy)]
pub struct BfsOptions {
    /// Maximum number of hops to explore (inclusive).
    pub max_depth: u32,
    /// Vertex whose outgoing (or incoming, for backward BFS) edges are never
    /// expanded. It still receives a distance if reached.
    pub forbidden: Option<VertexId>,
}

impl BfsOptions {
    /// BFS up to `max_depth` hops with no forbidden vertex.
    pub fn bounded(max_depth: u32) -> Self {
        BfsOptions {
            max_depth,
            forbidden: None,
        }
    }

    /// BFS up to `max_depth` hops that never expands `forbidden`.
    pub fn bounded_avoiding(max_depth: u32, forbidden: VertexId) -> Self {
        BfsOptions {
            max_depth,
            forbidden: Some(forbidden),
        }
    }
}

/// Generic hop-bounded BFS in the chosen direction.
///
/// Returns a sparse map `vertex -> distance` containing every vertex whose
/// distance from (or to, for [`Direction::Backward`]) `source` is at most
/// `opts.max_depth`, subject to the forbidden-vertex rule.
pub fn bfs_distances(
    g: &DiGraph,
    source: VertexId,
    dir: Direction,
    opts: BfsOptions,
) -> FxHashMap<VertexId, u32> {
    let mut dist: FxHashMap<VertexId, u32> = map_with_capacity(64);
    dist.insert(source, 0);
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du >= opts.max_depth {
            continue;
        }
        if opts.forbidden == Some(u) && u != source {
            continue;
        }
        for &v in g.neighbors(u, dir) {
            if let Entry::Vacant(slot) = dist.entry(v) {
                slot.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Forward BFS: distances `Δ(source, v)` for `v` within `max_depth` hops.
pub fn bfs_distances_from(
    g: &DiGraph,
    source: VertexId,
    opts: BfsOptions,
) -> FxHashMap<VertexId, u32> {
    bfs_distances(g, source, Direction::Forward, opts)
}

/// Backward BFS: distances `Δ(v, target)` for `v` within `max_depth` hops.
pub fn bfs_distances_to(
    g: &DiGraph,
    target: VertexId,
    opts: BfsOptions,
) -> FxHashMap<VertexId, u32> {
    bfs_distances(g, target, Direction::Backward, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DiGraph {
        DiGraph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn forward_distances_on_a_path() {
        let g = path_graph(6);
        let d = bfs_distances_from(&g, 0, BfsOptions::bounded(10));
        for v in 0..6u32 {
            assert_eq!(d[&v], v);
        }
    }

    #[test]
    fn backward_distances_on_a_path() {
        let g = path_graph(6);
        let d = bfs_distances_to(&g, 5, BfsOptions::bounded(10));
        for v in 0..6u32 {
            assert_eq!(d[&v], 5 - v);
        }
    }

    #[test]
    fn depth_bound_is_respected() {
        let g = path_graph(10);
        let d = bfs_distances_from(&g, 0, BfsOptions::bounded(3));
        assert_eq!(d.len(), 4); // vertices 0..=3
        assert!(!d.contains_key(&4));
    }

    #[test]
    fn forbidden_vertex_is_reached_but_not_expanded() {
        // 0 -> 1 -> 2 -> 3, and 0 -> 2 directly? No: make the only route to 3
        // pass through 2, and forbid 2.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances_from(&g, 0, BfsOptions::bounded_avoiding(10, 2));
        assert_eq!(d[&2], 2);
        assert!(
            !d.contains_key(&3),
            "must not route through forbidden vertex"
        );
    }

    #[test]
    fn forbidden_source_still_expands() {
        // Forbidding the source itself must not suppress the whole search.
        let g = path_graph(4);
        let d = bfs_distances_from(&g, 0, BfsOptions::bounded_avoiding(10, 0));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn shortest_distance_ignores_longer_alternatives() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 2? Use diamond: 0->1->3, 0->2->3, plus 0->3.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]);
        let d = bfs_distances_from(&g, 0, BfsOptions::bounded(5));
        assert_eq!(d[&3], 1);
    }

    #[test]
    fn unreachable_vertices_absent_from_map() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let d = bfs_distances_from(&g, 0, BfsOptions::bounded(5));
        assert!(d.contains_key(&1));
        assert!(!d.contains_key(&2));
        assert!(!d.contains_key(&3));
    }
}
